"""repro — a reproduction of the Scale4Edge RISC-V ecosystem.

Subpackages:

* :mod:`repro.isa` — RISC-V ISA model (decoder, encodings, registers, CSRs).
* :mod:`repro.asm` — assembler and program image format.
* :mod:`repro.vp` — virtual prototype (CPU, bus, devices, plugin API).
* :mod:`repro.wcet` — WCET analysis and QTA co-simulation.
* :mod:`repro.coverage` — instruction/register coverage metric.
* :mod:`repro.faultsim` — fault-effect simulation platform.
* :mod:`repro.testgen` — test-suite generators.
* :mod:`repro.bmi` — bit-manipulation ISA extension and kernels.
* :mod:`repro.core` — the ecosystem facade and demonstrators.
* :mod:`repro.telemetry` — metrics registry, structured event log, and
  Chrome-trace export (off by default, free when off).
"""

__version__ = "1.0.0"
