"""riscv-tests-style self-checking unit test generator.

One generated program per ISA module, each a sequence of numbered
``TEST_RR_OP``-style cases: seed operands, execute the instruction under
test, compare against an *independently computed* expectation (a second
implementation of the arithmetic, deliberately separate from
:mod:`repro.isa.semantics`), and exit with the failing test number on
mismatch.  Passing programs exit 0.

The generated programs double as fault-detection payloads: a bit flipped by
the fault-injection campaign makes some comparison fail, turning silent
data corruption into a nonzero exit code.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..asm import Program, assemble
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR

MASK = 0xFFFFFFFF

#: Operand values exercising sign, overflow, and shift corners.
INTERESTING = (
    0, 1, 2, -1, -2, 5, 0x7FFFFFFF, -0x80000000, 0x55555555, -0x55555556,
    0x0000FFFF, -0x10000, 31, 32, 2048, -2048,
)


def _signed(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value >= (1 << 31) else value


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    if a == -(1 << 31) and b == -1:
        return a
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    if a == -(1 << 31) and b == -1:
        return 0
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder


#: Independent reference semantics: name -> f(signed_a, signed_b) -> value.
RR_REFERENCE: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: (a & MASK) << (b & 31),
    "slt": lambda a, b: int(a < b),
    "sltu": lambda a, b: int((a & MASK) < (b & MASK)),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: (a & MASK) >> (b & 31),
    "sra": lambda a, b: a >> (b & 31),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (a * b) >> 32,
    "mulhu": lambda a, b: ((a & MASK) * (b & MASK)) >> 32,
    "mulhsu": lambda a, b: (a * (b & MASK)) >> 32,
    "div": _div,
    "divu": lambda a, b: MASK if (b & MASK) == 0 else (a & MASK) // (b & MASK),
    "rem": _rem,
    "remu": lambda a, b: (a & MASK) if (b & MASK) == 0
    else (a & MASK) % (b & MASK),
}

RI_REFERENCE: Dict[str, Callable[[int, int], int]] = {
    "addi": lambda a, imm: a + imm,
    "slti": lambda a, imm: int(a < imm),
    "sltiu": lambda a, imm: int((a & MASK) < (imm & MASK)),
    "xori": lambda a, imm: a ^ imm,
    "ori": lambda a, imm: a | imm,
    "andi": lambda a, imm: a & imm,
    "slli": lambda a, imm: (a & MASK) << imm,
    "srli": lambda a, imm: (a & MASK) >> imm,
    "srai": lambda a, imm: a >> imm,
}

BRANCH_REFERENCE: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: (a & MASK) < (b & MASK),
    "bgeu": lambda a, b: (a & MASK) >= (b & MASK),
}

#: Compressed arithmetic with (reference, operand style).
C_REFERENCE = {
    "c.add": RR_REFERENCE["add"],
    "c.sub": RR_REFERENCE["sub"],
    "c.xor": RR_REFERENCE["xor"],
    "c.or": RR_REFERENCE["or"],
    "c.and": RR_REFERENCE["and"],
}


class UnitSuiteGenerator:
    """Generates per-module self-checking unit test programs."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR, seed: int = 0,
                 cases_per_insn: int = 3) -> None:
        self.isa = isa
        self.decoder = Decoder(isa)
        self.seed = seed
        self.cases = cases_per_insn

    # -- helpers -------------------------------------------------------------

    def _pick_operands(self, rng: random.Random) -> Tuple[int, int]:
        return rng.choice(INTERESTING), rng.choice(INTERESTING)

    @staticmethod
    def _prologue() -> List[str]:
        return [".text", "_start:"]

    @staticmethod
    def _epilogue() -> List[str]:
        return [
            "    li a0, 0",
            "    li a7, 93",
            "    ecall",
            "fail:",
            "    mv a0, t3      # failing test number",
            "    li a7, 93",
            "    ecall",
        ]

    def _case_header(self, lines: List[str], number: int) -> None:
        lines.append(f"    li t3, {number}")

    def _check(self, lines: List[str], actual: str, expected: int) -> None:
        lines.append(f"    li a5, {_signed(expected)}")
        lines.append(f"    bne {actual}, a5, fail")

    # -- per-module programs ---------------------------------------------------

    def _rr_program(self, names: List[str]) -> str:
        rng = random.Random(self.seed)
        lines = self._prologue()
        number = 0
        for name in names:
            for _ in range(self.cases):
                number += 1
                a, b = self._pick_operands(rng)
                expected = RR_REFERENCE[name](_signed(a), _signed(b))
                self._case_header(lines, number)
                lines.append(f"    li x1, {_signed(a)}")
                lines.append(f"    li x2, {_signed(b)}")
                lines.append(f"    {name} a4, x1, x2")
                self._check(lines, "a4", expected)
            # Same-register case: rd == rs1 == rs2.
            number += 1
            a, _ = self._pick_operands(rng)
            expected = RR_REFERENCE[name](_signed(a), _signed(a))
            self._case_header(lines, number)
            lines.append(f"    li a4, {_signed(a)}")
            lines.append(f"    {name} a4, a4, a4")
            self._check(lines, "a4", expected)
        lines += self._epilogue()
        return "\n".join(lines)

    def _ri_program(self) -> str:
        rng = random.Random(self.seed + 1)
        lines = self._prologue()
        number = 0
        for name in sorted(RI_REFERENCE):
            if name not in self.decoder.spec_by_name:
                continue
            for _ in range(self.cases):
                number += 1
                a, _ = self._pick_operands(rng)
                if name in ("slli", "srli", "srai"):
                    imm = rng.randint(0, 31)
                else:
                    imm = rng.randint(-2048, 2047)
                expected = RI_REFERENCE[name](_signed(a), imm)
                self._case_header(lines, number)
                lines.append(f"    li x1, {_signed(a)}")
                lines.append(f"    {name} a4, x1, {imm}")
                self._check(lines, "a4", expected)
        # lui/auipc.
        number += 1
        self._case_header(lines, number)
        lines.append("    lui a4, 0xABCDE")
        self._check(lines, "a4", 0xABCDE000)
        lines += self._epilogue()
        return "\n".join(lines)

    def _branch_program(self) -> str:
        rng = random.Random(self.seed + 2)
        lines = self._prologue()
        number = 0
        for name in sorted(BRANCH_REFERENCE):
            for _ in range(self.cases):
                number += 1
                a, b = self._pick_operands(rng)
                taken = BRANCH_REFERENCE[name](_signed(a), _signed(b))
                self._case_header(lines, number)
                lines += [
                    f"    li x1, {_signed(a)}",
                    f"    li x2, {_signed(b)}",
                    f"    li a4, 0",
                    f"    {name} x1, x2, taken{number}",
                    f"    j join{number}",
                    f"taken{number}:",
                    "    li a4, 1",
                    f"join{number}:",
                ]
                self._check(lines, "a4", int(taken))
        lines += self._epilogue()
        return "\n".join(lines)

    def _memory_program(self) -> str:
        lines = self._prologue()
        lines.append("    la x4, data")
        cases = [
            ("lw", 0, 0x04030201), ("lw", 4, 0xF8F7F6F5),
            ("lh", 0, 0x0201), ("lh", 4, 0xFFFFF6F5),
            ("lhu", 4, 0xF6F5), ("lb", 0, 0x01), ("lb", 7, -0x08 & MASK),
            ("lbu", 7, 0xF8),
        ]
        number = 0
        for name, offset, expected in cases:
            number += 1
            self._case_header(lines, number)
            lines.append(f"    {name} a4, {offset}(x4)")
            self._check(lines, "a4", expected)
        # Store round-trips at every width.
        for name, load, value in [("sw", "lw", 0x13572468),
                                  ("sh", "lhu", 0xBEEF),
                                  ("sb", "lbu", 0xA5)]:
            number += 1
            self._case_header(lines, number)
            lines += [
                f"    li x1, {value}",
                f"    {name} x1, 16(x4)",
                f"    {load} a4, 16(x4)",
            ]
            self._check(lines, "a4", value)
        lines += self._epilogue()
        lines += [".data", "data:",
                  "    .word 0x04030201, 0xF8F7F6F5",
                  "    .zero 24"]
        return "\n".join(lines)

    def _compressed_program(self) -> str:
        rng = random.Random(self.seed + 3)
        lines = self._prologue()
        number = 0
        for name, reference in sorted(C_REFERENCE.items()):
            for _ in range(self.cases):
                number += 1
                a, b = self._pick_operands(rng)
                expected = reference(_signed(a), _signed(b))
                self._case_header(lines, number)
                lines += [
                    f"    li s0, {_signed(a)}",
                    f"    li s1, {_signed(b)}",
                    f"    {name} s0, s1",
                ]
                self._check(lines, "s0", expected)
        # Immediate forms.
        extra = [
            ("c.addi", "s0", 7, lambda a: a + 7),
            ("c.andi", "s0", -4, lambda a: a & -4),
            ("c.srli", "s0", 3, lambda a: (a & MASK) >> 3),
            ("c.srai", "s0", 3, lambda a: a >> 3),
            ("c.slli", "s0", 3, lambda a: (a & MASK) << 3),
        ]
        for name, reg, imm, reference in extra:
            number += 1
            a, _ = self._pick_operands(rng)
            self._case_header(lines, number)
            lines += [
                f"    li {reg}, {_signed(a)}",
                f"    {name} {reg}, {imm}",
            ]
            self._check(lines, reg, reference(_signed(a)))
        # c.li / c.lui / c.mv.
        number += 1
        self._case_header(lines, number)
        lines += ["    c.li a4, -17"]
        self._check(lines, "a4", -17 & MASK)
        number += 1
        self._case_header(lines, number)
        lines += ["    c.lui a4, 5"]
        self._check(lines, "a4", 5 << 12)
        number += 1
        self._case_header(lines, number)
        lines += ["    li s1, 41", "    c.mv a4, s1", "    c.addi a4, 1"]
        self._check(lines, "a4", 42)
        lines += self._epilogue()
        return "\n".join(lines)

    # -- public API --------------------------------------------------------------

    def generate_sources(self) -> List[Tuple[str, str]]:
        rr_i = [n for n in ("add", "sub", "sll", "slt", "sltu", "xor",
                            "srl", "sra", "or", "and")
                if n in self.decoder.spec_by_name]
        programs = [
            ("unit-rr", self._rr_program(rr_i)),
            ("unit-ri", self._ri_program()),
            ("unit-branch", self._branch_program()),
            ("unit-memory", self._memory_program()),
        ]
        if "M" in self.isa.modules:
            rr_m = sorted(s.name for s in self.decoder.specs
                          if s.module == "M")
            programs.append(("unit-muldiv", self._rr_program(rr_m)))
        if "C" in self.isa.modules:
            programs.append(("unit-compressed", self._compressed_program()))
        return programs

    def generate(self) -> List[Tuple[str, Program]]:
        return [
            (name, assemble(source, isa=self.isa))
            for name, source in self.generate_sources()
        ]
