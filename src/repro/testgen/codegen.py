"""Structured random program generator ("C codegen" substitute).

The Scale4Edge fault-analysis platform drives campaigns with automatically
generated, target-compiled C programs.  Without a cross-compiler, this
module generates the equivalent: random structured programs (an AST of
assignments, arithmetic expressions, bounded loops, conditionals, and
array accesses), *lowers them to RV32 assembly* with a simple register
allocator, and — because the AST has unambiguous semantics — also
*interprets* them in Python, so every generated binary carries an expected
checksum.  A run that terminates with the wrong checksum is silent data
corruption, exactly the signal the fault campaign classifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asm import Program, assemble
from ..isa.decoder import IsaConfig, RV32IMC_ZICSR

MASK = 0xFFFFFFFF

# AST node tuples:
#   ("const", value)
#   ("var", index)
#   ("binop", op, left, right)          op in OPS
#   ("assign", var_index, expr)
#   ("if", cond_expr, then_stmts, else_stmts)
#   ("loop", count, var_index, body_stmts)   fixed-trip-count loop
#   ("array_store", index_expr, value_expr)
#   ("array_load", var_index, index_expr)

OPS = ("add", "sub", "and", "or", "xor", "mul", "sll", "srl")

NUM_VARS = 6          # mapped to s2..s7
ARRAY_WORDS = 64

_VAR_REGS = ("s2", "s3", "s4", "s5", "s6", "s7")
_ARRAY_BASE = "s8"
_ACC = "s9"           # running checksum
#: Dedicated loop-counter registers, one per nesting level, kept separate
#: from the variable registers so body writes to the loop variable cannot
#: derail the trip count (mirroring the interpreter, which re-seeds the
#: variable from the iteration index each pass).
_LOOP_COUNTERS = ("s10", "s11", "ra")
_LOOP_LIMIT = "a6"


@dataclass
class GeneratedProgram:
    """A generated program: source, binary, and golden semantics."""

    name: str
    source: str
    program: Program
    expected_checksum: int

    @property
    def expected_exit_code(self) -> int:
        # Exit codes are reported as written; keep them in 31 bits to avoid
        # any ambiguity with sign conventions of host tooling.
        return self.expected_checksum & 0x7FFFFFFF


class StructuredGenerator:
    """Seeded random generator of structured checksum programs."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR,
                 max_depth: int = 3, statements: int = 12) -> None:
        self.isa = isa
        self.max_depth = max_depth
        self.statements = statements
        # Respect the ISA subset: no mul on configurations without M.
        self.ops = OPS if "M" in isa.modules else \
            tuple(op for op in OPS if op != "mul")

    # -- AST generation -----------------------------------------------------

    def _gen_expr(self, rng: random.Random, depth: int):
        if depth <= 0 or rng.random() < 0.35:
            if rng.random() < 0.5:
                return ("const", rng.randint(-64, 64))
            return ("var", rng.randrange(NUM_VARS))
        op = rng.choice(self.ops)
        return ("binop", op,
                self._gen_expr(rng, depth - 1),
                self._gen_expr(rng, depth - 1))

    def _gen_stmt(self, rng: random.Random, depth: int):
        roll = rng.random()
        if roll < 0.45 or depth <= 0:
            return ("assign", rng.randrange(NUM_VARS),
                    self._gen_expr(rng, self.max_depth))
        if roll < 0.60:
            return ("if", self._gen_expr(rng, 2),
                    [self._gen_stmt(rng, depth - 1)
                     for _ in range(rng.randint(1, 2))],
                    [self._gen_stmt(rng, depth - 1)
                     for _ in range(rng.randint(0, 2))])
        if roll < 0.78:
            return ("loop", rng.randint(2, 8), rng.randrange(NUM_VARS),
                    [self._gen_stmt(rng, depth - 1)
                     for _ in range(rng.randint(1, 3))])
        if roll < 0.9:
            return ("array_store", self._gen_expr(rng, 1),
                    self._gen_expr(rng, 2))
        return ("array_load", rng.randrange(NUM_VARS),
                self._gen_expr(rng, 1))

    def generate_ast(self, seed: int) -> List:
        rng = random.Random(seed)
        return [self._gen_stmt(rng, 2) for _ in range(self.statements)]

    # -- interpretation (golden semantics) ------------------------------------

    @staticmethod
    def _eval(expr, env: Dict) -> int:
        kind = expr[0]
        if kind == "const":
            return expr[1] & MASK
        if kind == "var":
            return env["vars"][expr[1]]
        _, op, left, right = expr
        a = StructuredGenerator._eval(left, env)
        b = StructuredGenerator._eval(right, env)
        if op == "add":
            return (a + b) & MASK
        if op == "sub":
            return (a - b) & MASK
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "mul":
            return (a * b) & MASK
        if op == "sll":
            return (a << (b & 31)) & MASK
        if op == "srl":
            return a >> (b & 31)
        raise ValueError(f"unknown op {op}")

    @classmethod
    def _run_stmt(cls, stmt, env: Dict) -> None:
        kind = stmt[0]
        if kind == "assign":
            _, var, expr = stmt
            env["vars"][var] = cls._eval(expr, env)
            env["acc"] = (env["acc"] + env["vars"][var]) & MASK
        elif kind == "if":
            _, cond, then_stmts, else_stmts = stmt
            branch = then_stmts if cls._eval(cond, env) else else_stmts
            for inner in branch:
                cls._run_stmt(inner, env)
        elif kind == "loop":
            _, count, var, body = stmt
            for i in range(count):
                env["vars"][var] = i
                for inner in body:
                    cls._run_stmt(inner, env)
        elif kind == "array_store":
            _, index_expr, value_expr = stmt
            index = cls._eval(index_expr, env) % ARRAY_WORDS
            env["array"][index] = cls._eval(value_expr, env)
        elif kind == "array_load":
            _, var, index_expr = stmt
            index = cls._eval(index_expr, env) % ARRAY_WORDS
            env["vars"][var] = env["array"][index]
            env["acc"] = (env["acc"] + env["vars"][var]) & MASK
        else:
            raise ValueError(f"unknown statement {kind}")

    def interpret(self, ast: List) -> int:
        env = {"vars": [0] * NUM_VARS, "array": [0] * ARRAY_WORDS, "acc": 0}
        for stmt in ast:
            self._run_stmt(stmt, env)
        return env["acc"]

    # -- lowering to assembly ------------------------------------------------

    def _lower_expr(self, expr, lines: List[str], dst: str,
                    temp_depth: int = 0) -> None:
        kind = expr[0]
        if kind == "const":
            lines.append(f"    li {dst}, {expr[1]}")
            return
        if kind == "var":
            lines.append(f"    mv {dst}, {_VAR_REGS[expr[1]]}")
            return
        _, op, left, right = expr
        temps = ("t0", "t1", "t2", "t4", "t5", "t6", "a2", "a3", "a4", "a5")
        if temp_depth + 1 >= len(temps):
            raise ValueError("expression too deep for the register allocator")
        left_reg = temps[temp_depth]
        right_reg = temps[temp_depth + 1]
        self._lower_expr(left, lines, left_reg, temp_depth + 1)
        self._lower_expr(right, lines, right_reg, temp_depth + 2)
        if op in ("sll", "srl"):
            lines.append(f"    andi {right_reg}, {right_reg}, 31")
        lines.append(f"    {op} {dst}, {left_reg}, {right_reg}")

    def _lower_stmt(self, stmt, lines: List[str], labels: List[int]) -> None:
        kind = stmt[0]
        if kind == "assign":
            _, var, expr = stmt
            self._lower_expr(expr, lines, _VAR_REGS[var])
            lines.append(f"    add {_ACC}, {_ACC}, {_VAR_REGS[var]}")
        elif kind == "if":
            _, cond, then_stmts, else_stmts = stmt
            labels[0] += 1
            label = labels[0]
            self._lower_expr(cond, lines, "t0")
            lines.append(f"    beqz t0, else{label}")
            for inner in then_stmts:
                self._lower_stmt(inner, lines, labels)
            lines.append(f"    j endif{label}")
            lines.append(f"else{label}:")
            for inner in else_stmts:
                self._lower_stmt(inner, lines, labels)
            lines.append(f"endif{label}:")
        elif kind == "loop":
            _, count, var, body = stmt
            labels[0] += 1
            label = labels[0]
            depth = self._loop_depth
            if depth >= len(_LOOP_COUNTERS):
                raise ValueError("loop nesting deeper than supported")
            counter = _LOOP_COUNTERS[depth]
            lines.append(f"    li {counter}, 0")
            lines.append(f"loop{label}:        # @loopbound {count}")
            lines.append(f"    mv {_VAR_REGS[var]}, {counter}")
            self._loop_depth = depth + 1
            for inner in body:
                self._lower_stmt(inner, lines, labels)
            self._loop_depth = depth
            lines.append(f"    addi {counter}, {counter}, 1")
            lines.append(f"    li {_LOOP_LIMIT}, {count}")
            lines.append(f"    blt {counter}, {_LOOP_LIMIT}, loop{label}")
        elif kind == "array_store":
            _, index_expr, value_expr = stmt
            self._lower_expr(index_expr, lines, "a0")
            lines.append(f"    andi a0, a0, {ARRAY_WORDS - 1}")
            lines.append("    slli a0, a0, 2")
            lines.append(f"    add a0, a0, {_ARRAY_BASE}")
            self._lower_expr(value_expr, lines, "a1")
            lines.append("    sw a1, 0(a0)")
        elif kind == "array_load":
            _, var, index_expr = stmt
            self._lower_expr(index_expr, lines, "a0")
            lines.append(f"    andi a0, a0, {ARRAY_WORDS - 1}")
            lines.append("    slli a0, a0, 2")
            lines.append(f"    add a0, a0, {_ARRAY_BASE}")
            lines.append(f"    lw {_VAR_REGS[var]}, 0(a0)")
            lines.append(f"    add {_ACC}, {_ACC}, {_VAR_REGS[var]}")
        else:
            raise ValueError(f"unknown statement {kind}")

    def lower(self, ast: List) -> str:
        self._loop_depth = 0
        lines = [".text", "_start:", f"    la {_ARRAY_BASE}, array",
                 f"    li {_ACC}, 0"]
        for reg in _VAR_REGS:
            lines.append(f"    li {reg}, 0")
        labels = [0]
        for stmt in ast:
            self._lower_stmt(stmt, lines, labels)
        lines += [
            f"    li t0, 0x7FFFFFFF",
            f"    and a0, {_ACC}, t0",
            "    li a7, 93",
            "    ecall",
            ".data",
            f"array: .zero {ARRAY_WORDS * 4}",
        ]
        return "\n".join(lines) + "\n"

    # -- public API --------------------------------------------------------------

    def generate(self, seed: int, name: Optional[str] = None) -> GeneratedProgram:
        ast = self.generate_ast(seed)
        source = self.lower(ast)
        checksum = self.interpret(ast)
        return GeneratedProgram(
            name=name or f"gen-{seed:04d}",
            source=source,
            program=assemble(source, isa=self.isa),
            expected_checksum=checksum,
        )

    def generate_suite(self, count: int, start_seed: int = 0
                       ) -> List[GeneratedProgram]:
        return [self.generate(start_seed + i) for i in range(count)]
