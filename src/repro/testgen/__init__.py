"""Test-program generators: architectural, unit, Torture-style, structured.

Substitutes for the external suites the Scale4Edge coverage analysis
compares (riscv-arch-test, riscv-tests, RISC-V Torture) plus the structured
"generated C" programs its fault campaigns consume — see DESIGN.md for the
substitution rationale.
"""

from .archsuite import ArchSuiteGenerator
from .codegen import GeneratedProgram, StructuredGenerator
from .torture import TortureConfig, TortureGenerator
from .unitsuite import UnitSuiteGenerator

__all__ = [
    "ArchSuiteGenerator",
    "GeneratedProgram",
    "StructuredGenerator",
    "TortureConfig",
    "TortureGenerator",
    "UnitSuiteGenerator",
]
