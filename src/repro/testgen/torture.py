"""Torture-style random test program generator.

Like the RISC-V Torture generator, emits long random-but-safe instruction
sequences: every register is fair game, memory accesses stay inside a
dedicated scratch arena, branches only jump forward, and the program always
terminates with an exit code.  Random programs push *register* coverage to
100 % quickly while leaving rare system instructions untouched — the
coverage trade-off the Scale4Edge coverage analysis reports for Torture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..asm import Program, assemble
from ..isa.decoder import IsaConfig, RV32IMC_ZICSR
from ..isa.registers import gpr_name
from ..isa.registers import FPR_ABI_NAMES

#: Register reserved as the scratch-memory base pointer.  x8 (s0) is chosen
#: because the compressed load/store forms require an x8..x15 base.
BASE_REG = 8

#: Instructions never emitted: they trap, halt, or jump unpredictably.
UNSAFE = frozenset({
    "ecall", "ebreak", "c.ebreak", "wfi", "mret", "jalr", "c.jr", "c.jalr",
    "jal", "c.jal",  # direct calls handled via the label mechanism below
    "c.j",
})

SCRATCH_SIZE = 1024


@dataclass
class TortureConfig:
    """Knobs for the random generator."""

    length: int = 500               # number of random instructions
    seed: int = 0
    branch_probability: float = 0.1
    memory_probability: float = 0.2
    csr_probability: float = 0.02
    fp_probability: float = 0.1


class TortureGenerator:
    """Seeded random program generator for one ISA configuration."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR,
                 config: Optional[TortureConfig] = None) -> None:
        from ..isa.decoder import Decoder

        self.isa = isa
        self.config = config or TortureConfig()
        self.decoder = Decoder(isa)
        self._specs_by_syntax = {}
        for spec in self.decoder.specs:
            if spec.name in UNSAFE:
                continue
            self._specs_by_syntax.setdefault(spec.syntax, []).append(spec)

    # -- operand pickers ---------------------------------------------------

    def _any_reg(self, rng: random.Random) -> str:
        # x0 included: writes are architectural no-ops, reads exercise the
        # zero wiring.  The base register is excluded from destinations.
        choices = [i for i in range(32) if i != BASE_REG]
        return gpr_name(rng.choice(choices))

    def _src_reg(self, rng: random.Random) -> str:
        return gpr_name(rng.choice(range(32)))

    def _prime_reg(self, rng: random.Random, allow_base: bool = False) -> str:
        low = 8 if allow_base else 9
        return gpr_name(rng.choice(range(low, 16)))

    def _fpr(self, rng: random.Random) -> str:
        return FPR_ABI_NAMES[rng.randrange(32)]

    def _prime_fpr(self, rng: random.Random) -> str:
        return FPR_ABI_NAMES[rng.randrange(8, 16)]

    # -- instruction emitters ------------------------------------------------

    def _emit_alu(self, rng: random.Random, lines: List[str]) -> None:
        pools = []
        for syntax in ("R", "I", "SHIFT", "U", "R2", "CR", "CI", "FR",
                       "FMVX", "FMVF"):
            pools.extend(
                (syntax, spec) for spec in self._specs_by_syntax.get(syntax, [])
                if not spec.reads_mem and not spec.writes_mem
                and not spec.is_branch and not spec.is_jump
                and spec.module != "Zicsr"
            )
        if not pools:
            return
        syntax, spec = rng.choice(pools)
        if syntax == "R":
            lines.append(f"{spec.name} {self._any_reg(rng)}, "
                         f"{self._src_reg(rng)}, {self._src_reg(rng)}")
        elif syntax == "FR":
            lines.append(f"{spec.name} {self._fpr(rng)}, {self._fpr(rng)}, "
                         f"{self._fpr(rng)}")
        elif syntax == "FMVX":
            lines.append(f"{spec.name} {self._any_reg(rng)}, {self._fpr(rng)}")
        elif syntax == "FMVF":
            lines.append(f"{spec.name} {self._fpr(rng)}, {self._src_reg(rng)}")
        elif syntax == "I":
            lines.append(f"{spec.name} {self._any_reg(rng)}, "
                         f"{self._src_reg(rng)}, {rng.randint(-2048, 2047)}")
        elif syntax == "SHIFT":
            lines.append(f"{spec.name} {self._any_reg(rng)}, "
                         f"{self._src_reg(rng)}, {rng.randint(0, 31)}")
        elif syntax == "U":
            lines.append(f"{spec.name} {self._any_reg(rng)}, "
                         f"{rng.randint(0, (1 << 20) - 1)}")
        elif syntax == "R2":
            lines.append(f"{spec.name} {self._any_reg(rng)}, "
                         f"{self._src_reg(rng)}")
        elif syntax == "CR":
            if spec.name in ("c.mv", "c.add"):
                dst = gpr_name(rng.choice(
                    [i for i in range(1, 32) if i != BASE_REG]))
                src = gpr_name(rng.randrange(1, 32))
                lines.append(f"{spec.name} {dst}, {src}")
            else:  # c.sub/c.xor/c.or/c.and
                lines.append(f"{spec.name} {self._prime_reg(rng)}, "
                             f"{self._prime_reg(rng, allow_base=True)}")
        elif syntax == "CI":
            self._emit_ci(rng, spec, lines)

    def _emit_ci(self, rng: random.Random, spec, lines: List[str]) -> None:
        name = spec.name
        if name == "c.addi":
            lines.append(f"c.addi {self._any_reg(rng)}, "
                         f"{rng.randint(-32, 31)}")
        elif name == "c.li":
            dst = gpr_name(rng.choice([i for i in range(1, 32)
                                       if i != BASE_REG]))
            lines.append(f"c.li {dst}, {rng.randint(-32, 31)}")
        elif name == "c.lui":
            dst = gpr_name(rng.choice([i for i in range(3, 32)
                                       if i != BASE_REG]))
            value = rng.choice([1, 2, 3, 30, 31])
            lines.append(f"c.lui {dst}, {value}")
        elif name in ("c.srli", "c.srai", "c.andi"):
            operand = rng.randint(1, 31) if name != "c.andi" else \
                rng.randint(-32, 31)
            lines.append(f"{name} {self._prime_reg(rng)}, {operand}")
        elif name == "c.slli":
            dst = gpr_name(rng.choice([i for i in range(1, 32)
                                       if i != BASE_REG]))
            lines.append(f"c.slli {dst}, {rng.randint(1, 31)}")
        elif name == "c.addi16sp":
            pass  # touching sp would corrupt the (unused) stack; skip
        elif name == "c.addi4spn":
            lines.append(f"c.addi4spn {self._prime_reg(rng)}, "
                         f"{rng.randrange(4, 1024, 4)}")

    def _emit_memory(self, rng: random.Random, lines: List[str]) -> None:
        candidates = [s for s in self.decoder.specs
                      if (s.reads_mem or s.writes_mem)
                      and s.name not in UNSAFE]
        if not candidates:
            return
        spec = rng.choice(candidates)
        base = gpr_name(BASE_REG)
        name = spec.name
        if name in ("lb", "lbu", "sb"):
            offset = rng.randrange(0, SCRATCH_SIZE)
        elif name in ("lh", "lhu", "sh"):
            offset = rng.randrange(0, SCRATCH_SIZE, 2)
        elif name in ("c.lw", "c.sw", "c.flw", "c.fsw"):
            offset = rng.randrange(0, 128, 4)
        elif name in ("c.lwsp", "c.swsp", "c.flwsp", "c.fswsp"):
            return  # sp-relative: skip (sp is not the scratch base)
        else:
            offset = rng.randrange(0, SCRATCH_SIZE, 4)
        if name.startswith("c."):
            reg = self._prime_fpr(rng) if "f" in name.split(".")[1] else \
                self._prime_reg(rng)
            lines.append(f"{name} {reg}, {offset}({base})")
        elif name in ("flw", "fsw"):
            lines.append(f"{name} {self._fpr(rng)}, {offset}({base})")
        elif spec.writes_mem:
            lines.append(f"{name} {self._src_reg(rng)}, {offset}({base})")
        else:
            lines.append(f"{name} {self._any_reg(rng)}, {offset}({base})")

    def _emit_branch(self, rng: random.Random, lines: List[str],
                     label_counter: List[int]) -> None:
        branches = [s for s in self._specs_by_syntax.get("BRANCH", [])]
        branches += [s for s in self._specs_by_syntax.get("CBZ", [])]
        if not branches:
            return
        spec = rng.choice(branches)
        label = f"t{label_counter[0]}"
        label_counter[0] += 1
        if spec.syntax == "CBZ":
            lines.append(f"{spec.name} {self._prime_reg(rng)}, {label}")
        else:
            lines.append(f"{spec.name} {self._src_reg(rng)}, "
                         f"{self._src_reg(rng)}, {label}")
        # A couple of filler instructions the branch may skip.
        for _ in range(rng.randint(1, 3)):
            lines.append(f"addi {self._any_reg(rng)}, "
                         f"{self._src_reg(rng)}, {rng.randint(-16, 16)}")
        lines.append(f"{label}:")

    def _emit_csr(self, rng: random.Random, lines: List[str]) -> None:
        if "Zicsr" not in self.isa.modules:
            return
        op = rng.choice(["csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi",
                         "csrrci"])
        if op.endswith("i"):
            lines.append(f"{op} {self._any_reg(rng)}, mscratch, "
                         f"{rng.randint(0, 31)}")
        else:
            lines.append(f"{op} {self._any_reg(rng)}, mscratch, "
                         f"{self._src_reg(rng)}")

    # -- top level -----------------------------------------------------------

    def generate_source(self, seed: Optional[int] = None) -> str:
        rng = random.Random(self.config.seed if seed is None else seed)
        lines = [
            ".text",
            "_start:",
            f"    la {gpr_name(BASE_REG)}, scratch",
        ]
        # Seed a few registers with interesting values.
        for reg in range(1, 8):
            lines.append(f"    li {gpr_name(reg)}, "
                         f"{rng.choice([0, 1, -1, 0x7FFFFFFF, -2048, 42])}")
        label_counter = [0]
        body: List[str] = []
        config = self.config
        for _ in range(config.length):
            roll = rng.random()
            if roll < config.branch_probability:
                self._emit_branch(rng, body, label_counter)
            elif roll < config.branch_probability + config.memory_probability:
                self._emit_memory(rng, body)
            elif roll < (config.branch_probability + config.memory_probability
                         + config.csr_probability):
                self._emit_csr(rng, body)
            else:
                self._emit_alu(rng, body)
        lines.extend("    " + line if not line.endswith(":") else line
                     for line in body)
        lines += [
            "    li a0, 0",
            "    li a7, 93",
            "    ecall",
            ".data",
            f"scratch: .zero {SCRATCH_SIZE}",
        ]
        return "\n".join(lines) + "\n"

    def generate(self, seed: Optional[int] = None) -> Program:
        return assemble(self.generate_source(seed), isa=self.isa)

    def generate_suite(self, count: int, start_seed: int = 0):
        """A list of (name, Program) pairs with consecutive seeds."""
        return [
            (f"torture-{start_seed + i:03d}", self.generate(start_seed + i))
            for i in range(count)
        ]
