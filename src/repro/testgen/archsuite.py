"""Architectural-test-style directed suite generator.

Modelled on the RISC-V architectural test framework: one directed program
per ISA functional group, systematically exercising *every instruction
type* of the configured ISA — including the privileged/system corner
(ecall/ebreak/mret via an installed trap handler, wfi via an armed timer).
Like the real suite, it works from a small fixed register palette, so its
instruction coverage is near-total while its register coverage is not —
the first row of the suite-comparison table.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..asm import Program, assemble
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR

#: The restricted palette architectural tests work from.
PALETTE = ("a0", "a1", "a2", "a3", "t0", "t1")

_HANDLER = """
# Generic trap handler: skips the trapping instruction and returns.
# mtvec requires a 4-byte-aligned base, hence the .align.
.align 2
handler:
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
"""

_HANDLER_C = _HANDLER.replace("addi t0, t0, 4", "addi t0, t0, 2")


def _prologue(with_handler: str = "") -> List[str]:
    lines = [".text", "_start:"]
    if with_handler:
        lines += ["    la t0, handler", "    csrw mtvec, t0"]
    lines += ["    li a0, 1", "    li a1, 2", "    li a2, -1"]
    return lines


def _epilogue() -> List[str]:
    return ["    li a0, 0", "    li a7, 93", "    ecall"]


class ArchSuiteGenerator:
    """Generates the directed per-group test programs."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR) -> None:
        self.isa = isa
        self.decoder = Decoder(isa)

    # -- group programs ------------------------------------------------------

    def _arith_program(self) -> str:
        lines = _prologue()
        names = [s.name for s in self.decoder.specs
                 if s.module in ("I",) and s.syntax in ("R", "I", "SHIFT", "U")]
        for name in sorted(names):
            spec = self.decoder.spec_by_name[name]
            if spec.syntax == "R":
                lines.append(f"    {name} a3, a0, a1")
                lines.append(f"    {name} t1, a2, a0")
            elif spec.syntax == "I":
                lines.append(f"    {name} a3, a0, 5")
                lines.append(f"    {name} t1, a2, -5")
            elif spec.syntax == "SHIFT":
                lines.append(f"    {name} a3, a0, 3")
                lines.append(f"    {name} t1, a2, 31")
            elif spec.syntax == "U":
                lines.append(f"    {name} a3, 0x12345")
        lines += _epilogue()
        return "\n".join(lines)

    def _branch_program(self) -> str:
        lines = _prologue()
        branch_names = sorted(s.name for s in self.decoder.specs
                              if s.is_branch and s.length == 4)
        for i, name in enumerate(branch_names):
            taken = f"bt{i}"
            lines += [
                f"    {name} a0, a1, {taken}",
                "    nop",
                f"{taken}:",
                f"    {name} a0, a0, bd{i}",
                "    nop",
                f"bd{i}:",
            ]
        # Jumps.
        lines += [
            "    jal t0, j1",
            "    nop",
            "j1:",
            "    la t0, j2",
            "    jalr t1, t0, 0",
            "    nop",
            "j2:",
        ]
        lines += _epilogue()
        return "\n".join(lines)

    def _memory_program(self) -> str:
        lines = _prologue()
        lines.append("    la t0, data")
        mem_names = sorted(s.name for s in self.decoder.specs
                           if (s.reads_mem or s.writes_mem)
                           and s.length == 4 and s.module == "I")
        for name in mem_names:
            spec = self.decoder.spec_by_name[name]
            if spec.writes_mem:
                lines.append(f"    {name} a0, 0({'t0'})")
                lines.append(f"    {name} a1, 8(t0)")
            else:
                lines.append(f"    {name} a3, 0(t0)")
                lines.append(f"    {name} t1, 8(t0)")
        lines += _epilogue()
        lines += [".data", "data: .word 0x80402010, 0xDEADBEEF, 0, 0"]
        return "\n".join(lines)

    _SYSTEM_HANDLER = """
# Exception: skip the trapping instruction.  Interrupt: disarm the timer
# and return without touching mepc (mcause bit 31 distinguishes them).
.align 2
handler:
    csrr t2, mcause
    bltz t2, handler_irq
    csrr t2, mepc
    addi t2, t2, 4
    csrw mepc, t2
    mret
handler_irq:
    li t2, 0x02004004
    li t3, -1
    sw t3, 0(t2)
    mret
"""

    def _system_program(self) -> str:
        lines = _prologue(with_handler=True)
        lines += [
            "    fence",
            "    fence.i",
            "    li a7, 0        # unknown syscall -> trap, handler skips",
            "    ecall",
            "    ebreak",
        ]
        if "Zicsr" in self.isa.modules:
            lines += [
                "    csrrw a3, mscratch, a0",
                "    csrrs a3, mscratch, a1",
                "    csrrc a3, mscratch, a1",
                "    csrrwi a3, mscratch, 7",
                "    csrrsi a3, mscratch, 1",
                "    csrrci a3, mscratch, 1",
                "    csrr t1, mhartid",
                "    rdcycle a3",
                "    rdinstret a3",
            ]
            # wfi with an armed timer: the handler returns after the tick.
            lines += [
                "    li t0, 0x0200BFF8",
                "    lw t1, 0(t0)",
                "    addi t1, t1, 64",
                "    li t0, 0x02004000",
                "    sw t1, 0(t0)",
                "    sw zero, 4(t0)",
                "    li t0, 0x80",
                "    csrw mie, t0",
                "    csrsi mstatus, 8",
                "    wfi",
                "    csrci mstatus, 8",
            ]
        lines += _epilogue()
        lines += [self._SYSTEM_HANDLER]
        return "\n".join(lines)

    def _muldiv_program(self) -> str:
        lines = _prologue()
        for name in sorted(s.name for s in self.decoder.specs
                           if s.module == "M"):
            lines.append(f"    {name} a3, a0, a1")
            lines.append(f"    {name} t1, a2, a0")
            lines.append(f"    {name} a3, a0, zero  # div-by-zero corner")
        lines += _epilogue()
        return "\n".join(lines)

    def _compressed_program(self) -> str:
        lines = _prologue(with_handler=False)
        lines += [
            "    la a0, data",
            "    c.mv s0, a0",          # compressed base pointer
            "    c.li a1, 5",
            "    c.addi a1, -1",
            "    c.lui a3, 4",
            "    c.slli a1, 2",
            "    c.lw a2, 0(s0)",
            "    c.sw a2, 4(s0)",
            "    c.addi4spn a4, 16",
            "    c.srli a2, 1",
            "    c.srai a2, 1",
            "    c.andi a2, 15",
            "    c.mv a5, a1",
            "    c.add a5, a2",
            "    c.sub a5, a2",
            "    c.xor a5, a2",
            "    c.or a5, a2",
            "    c.and a5, a2",
            "    mv t0, sp",            # save sp, then exercise sp-forms
            "    la t1, data",
            "    mv sp, t1",
            "    c.addi16sp sp, 32",
            "    c.addi16sp sp, -32",
            "    c.swsp a2, 8(sp)",
            "    c.lwsp a3, 8(sp)",
        ]
        if "F" in self.isa.modules:
            lines += [
                "    c.fswsp fa0, 16(sp)",
                "    c.flwsp fa1, 16(sp)",
            ]
        lines += [
            "    mv sp, t0",
            "    c.beqz s1, c1",
            "    nop",
            "c1:",
            "    c.bnez a1, c2",
            "    nop",
            "c2:",
            "    c.j c3",
            "    nop",
            "c3:",
            "    c.jal c4",
            "    nop",
            "c4:",
            "    la a2, c5",
            "    c.mv ra, a2",
            "    c.jr ra",
            "    nop",
            "c5:",
            "    la ra, c6",
            "    c.jalr ra",
            "    nop",
            "c6:",
        ]
        lines += _epilogue()
        lines += [".data", "data: .zero 64"]
        return "\n".join(lines)

    def _float_program(self) -> str:
        lines = _prologue()
        lines += [
            "    la t0, data",
            "    flw fa0, 0(t0)",
            "    fsw fa0, 4(t0)",
            "    fmv.x.w a3, fa0",
            "    fmv.w.x fa1, a0",
            "    fsgnj.s fa2, fa0, fa1",
            "    fmv.s fa3, fa2",
        ]
        if "C" in self.isa.modules:
            lines += [
                "    mv s0, t0",
                "    c.flw fa4, 0(s0)",
                "    c.fsw fa4, 8(s0)",
            ]
        lines += _epilogue()
        lines += [".data", "data: .word 0x3F800000, 0, 0, 0"]
        return "\n".join(lines)

    def _ebreak_c_program(self) -> str:
        # c.ebreak needs a handler that advances mepc by 2.
        lines = [".text", "_start:",
                 "    la t0, handler", "    csrw mtvec, t0",
                 "    c.ebreak"]
        lines += _epilogue()
        lines += [_HANDLER_C]
        return "\n".join(lines)

    # -- public API ------------------------------------------------------------

    def generate_sources(self) -> List[Tuple[str, str]]:
        programs = [
            ("arch-arith", self._arith_program()),
            ("arch-branch", self._branch_program()),
            ("arch-memory", self._memory_program()),
        ]
        if "M" in self.isa.modules:
            programs.append(("arch-muldiv", self._muldiv_program()))
        if "Zicsr" in self.isa.modules:
            programs.append(("arch-system", self._system_program()))
        if "C" in self.isa.modules:
            programs.append(("arch-compressed", self._compressed_program()))
            if "Zicsr" in self.isa.modules:
                programs.append(("arch-cebreak", self._ebreak_c_program()))
        if "F" in self.isa.modules:
            programs.append(("arch-float", self._float_program()))
        return programs

    def generate(self) -> List[Tuple[str, Program]]:
        return [
            (name, assemble(source, isa=self.isa))
            for name, source in self.generate_sources()
        ]
