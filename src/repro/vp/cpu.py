"""The RV32 CPU core with a QEMU-style translation-block engine.

Execution proceeds block-wise: straight-line instruction sequences are
decoded once into a :class:`TranslationBlock`, cached by start address, and
replayed on subsequent visits — the structure (translate, cache, execute,
chain) that makes QEMU fast, reproduced here because the Scale4Edge tools
(QTA, coverage, fault analysis) hook exactly this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..isa import csr as csrdef
from ..isa.decoder import Decoder, IllegalInstructionError
from ..isa.fields import WORD_MASK, sign_extend
from ..isa.registers import FPRegisterFile, RegisterFile
from ..isa.spec import Decoded
from .memory import (PACK_HALF, PACK_WORD, UNPACK_HALF, UNPACK_WORD, Ram,
                     SystemBus)
from .plugins import HookTable
from .timing import TimingModel
from .trap import BusError, MachineExit, Trap, UnhandledTrap

#: Maximum instructions per translation block (like QEMU's TB size cap).
MAX_BLOCK_INSNS = 32

# Stop reasons reported by Cpu.run().
STOP_MAX_INSNS = "max_insns"
STOP_WFI = "wfi"
STOP_EXIT = "exit"  # produced by Machine, not Cpu.run itself
STOP_LIVELOCK = "trap_livelock"
STOP_REQUESTED = "stop_requested"


class StopRun(Exception):
    """Raised by a plugin hook to stop :meth:`Cpu.run` at an exact point.

    Unlike the ``max_instructions`` budget (which is checked at block
    boundaries and can overshoot by up to a block), raising this from an
    ``on_insn_exec`` hook halts *before* the current instruction executes,
    with the pc parked on it and all retired-instruction/cycle accounting
    for the partial block already flushed.  The checkpoint engine uses it
    to fast-forward a golden machine to a fault trigger point exactly.
    """

#: Consecutive zero-progress block steps (trap -> trap -> ...) after which
#: the run is declared livelocked.  A healthy trap entry always retires
#: handler instructions on the next step.
LIVELOCK_LIMIT = 64


#: Unconditional pc-relative jumps whose target is a translate-time
#: constant — the only redirecting instructions a block can chain through.
_DIRECT_JUMPS = frozenset({"jal", "c.jal", "c.j"})


class TranslationBlock:
    """A decoded straight-line code region starting at ``start_pc``.

    ``insns`` and ``pcs`` are parallel lists; the block ends at the first
    control-flow or system instruction, at :data:`MAX_BLOCK_INSNS`, or just
    before an undecodable word.

    :meth:`finalize` precomputes the per-instruction execution data the hot
    loop needs (``ops``), the instruction-cache lines the block spans, and
    the statically known successor address (``chain_pc``) used for direct
    block chaining.
    """

    __slots__ = ("start_pc", "insns", "pcs", "size", "exec_count",
                 "ops", "next", "chain_pc", "icache_lines",
                 "compiled", "compiled_version",
                 "trace", "trace_token", "trace_heat", "trace_member")

    def __init__(self, start_pc: int, insns: List[Decoded], pcs: List[int]) -> None:
        self.start_pc = start_pc
        self.insns = insns
        self.pcs = pcs
        self.size = sum(d.spec.length for d in insns)
        self.exec_count = 0
        #: Fused ``(decoded, execute, pc, fallthrough, base_cost,
        #: taken_cost)`` tuples — everything the execute loop needs without
        #: calling back into the timing model, chasing ``decoded.spec``
        #: attributes, or recomputing ``pc + length``.
        self.ops: List[tuple] = []
        #: Chained successor block (same-cache only), or ``None``.
        self.next: Optional["TranslationBlock"] = None
        #: Statically known successor pc: the fallthrough address for blocks
        #: that end without control flow, the jump target for blocks ending
        #: in a direct jump, ``None`` for branches/system/indirect ends.
        self.chain_pc: Optional[int] = None
        #: Cache-line numbers the block spans (empty without an icache).
        self.icache_lines: tuple = ()
        #: Specialized compiled step function (the JIT tier), or ``None``
        #: while the block is still interpreted.
        self.compiled: Optional[Callable] = None
        #: The :class:`~repro.vp.jit.backend.CompiledBackend` specialization
        #: token ``compiled`` was generated for; a mismatch forces a
        #: recompile (hook table changed, register file swapped, ...).
        self.compiled_version: Optional[tuple] = None
        #: Compiled multi-block trace headed at this block (the superblock
        #: tier above ``compiled``), or ``None``.  Lives on the head block
        #: only; a TB flush discards blocks wholesale so stale traces can
        #: never outlive their members.
        self.trace: Optional[Callable] = None
        #: Specialization token ``trace`` was generated for (see
        #: ``compiled_version``).
        self.trace_token: Optional[tuple] = None
        #: Hot-chain-edge counter: executions of this block while already
        #: compiled and chain-headed.  Crossing the trace threshold
        #: triggers a trace-formation attempt.
        self.trace_heat = 0
        #: True when this block's ops are embedded in some compiled trace
        #: (profiler tier labelling).
        self.trace_member = False

    def finalize(self, timing, icache=None) -> None:
        """Precompute hot-loop data against ``timing`` (and ``icache``)."""
        penalty = timing.taken_penalty
        ops = []
        for decoded, pc in zip(self.insns, self.pcs):
            base = timing.base_cost(decoded)
            ops.append((decoded, decoded.spec.execute, pc,
                        pc + decoded.spec.length, base, base + penalty))
        self.ops = ops
        if icache is not None:
            line_size = icache.config.line_size
            self.icache_lines = tuple(
                range(self.start_pc // line_size,
                      (self.end_pc - 1) // line_size + 1))
        last = self.insns[-1]
        spec = last.spec
        if spec.is_jump and spec.name in _DIRECT_JUMPS:
            self.chain_pc = (self.pcs[-1] + last.imm) & WORD_MASK
        elif not (spec.is_branch or spec.is_jump or spec.is_system):
            self.chain_pc = self.end_pc

    @property
    def end_pc(self) -> int:
        """First address after the block."""
        return self.start_pc + self.size

    def __len__(self) -> int:
        return len(self.insns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TranslationBlock({self.start_pc:#010x}, {len(self.insns)} "
                f"insns, {self.size} bytes)")


@dataclass
class RunResult:
    """Outcome of a :meth:`Cpu.run` call."""

    stop_reason: str
    instructions: int
    cycles: int
    exit_code: Optional[int] = None
    trap_cause: Optional[int] = None
    trap_pc: Optional[int] = None


class Cpu:
    """A single RV32 hart executing from a :class:`SystemBus`.

    Interesting attributes:

    * ``regs`` / ``fregs`` / ``csrs`` — architectural state,
    * ``pc`` — address of the instruction currently executing,
    * ``next_pc`` — where control goes next (semantics overwrite to jump),
    * ``hooks`` — the plugin hook table,
    * ``timing`` — the cycle cost model (shared with the WCET analysis).

    ``ecall_handler`` (if set) intercepts ``ecall`` before the architectural
    trap is raised; machines use it for semihosting-style services.
    """

    def __init__(
        self,
        decoder: Decoder,
        bus: SystemBus,
        timing: Optional[TimingModel] = None,
        trace_registers: bool = False,
        block_cache_enabled: bool = True,
        icache=None,
        max_blocks: Optional[int] = None,
    ) -> None:
        self.decoder = decoder
        self.bus = bus
        self.timing = timing or TimingModel()
        self.regs = RegisterFile(trace=trace_registers)
        self.fregs = FPRegisterFile(trace=trace_registers)
        self.csrs = csrdef.CsrFile(
            modules=set(decoder.config.modules), trace=trace_registers
        )
        self.pc = 0
        self.next_pc = 0
        self.hooks = HookTable()
        self.ecall_handler: Optional[Callable[["Cpu"], None]] = None
        self.block_cache_enabled = block_cache_enabled
        #: Optional :class:`repro.vp.icache.ICache`: fetch misses charge
        #: extra cycles per executed block.
        self.icache = icache
        #: Cached-block cap: on reaching it the cache is flushed wholesale
        #: (cheap clear-on-full eviction).  ``None`` means unbounded.
        if max_blocks is not None and max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.max_blocks = max_blocks
        self._fetch_align_mask = 1 if decoder.config.has_compressed else 3
        self._tb_cache: Dict[int, TranslationBlock] = {}
        #: Block that just completed with a statically known successor —
        #: the chain source for the next step's block lookup.
        self._chain_from: Optional[TranslationBlock] = None
        self._current: Optional[Decoded] = None
        # Softmmu-style RAM fast-path window: direct references to the
        # first plain Ram region's buffer and dirty set, validated against
        # ``bus.version`` before every use so device swaps (fault
        # wrappers) are picked up instantly.  ``_ram_version = -1`` marks
        # the cache stale; the sentinel base/end make the window check
        # fail for every 32-bit address until refreshed.
        self._ram_version = -1
        self._ram_base = 0x1_0000_0000
        self._ram_end = 0
        self._ram: Optional[Ram] = None
        self._ram_data: Optional[bytearray] = None
        self._ram_dirty = None
        self._ram_shift = 0
        #: Data-access counters: window hits vs bus-dispatch fallbacks
        #: (fetches are not counted — these describe guest loads/stores).
        self.mem_fast_loads = 0
        self.mem_fast_stores = 0
        self.mem_bus_loads = 0
        self.mem_bus_stores = 0
        self._wfi_pending = False
        self._wfi_wait: Callable[[], Optional[int]] = lambda: None
        self._interrupt_poll: Callable[[], int] = lambda: 0
        # Statistics.
        self.tb_hits = 0
        self.tb_misses = 0
        self.tb_flushes = 0
        #: The :class:`~repro.vp.backends.ExecutionBackend` driving
        #: :meth:`run`.  ``None`` lazily becomes the default ``fastpath``
        #: backend (the historical behaviour) on the first run.
        self.backend = None

    # ------------------------------------------------------------------
    # Configuration hooks used by Machine
    # ------------------------------------------------------------------

    def set_interrupt_poll(self, poll: Callable[[], int]) -> None:
        """``poll()`` returns the mip bits asserted by platform devices."""
        self._interrupt_poll = poll

    def set_wfi_wait(self, wait: Callable[[], Optional[int]]) -> None:
        """``wait()`` returns cycles to fast-forward until the next event,
        or ``None`` when no future event can wake the hart."""
        self._wfi_wait = wait

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def reset(self, pc: int = 0) -> None:
        self.regs.reset()
        self.fregs.reset()
        self.csrs = csrdef.CsrFile(
            modules=set(self.decoder.config.modules), trace=self.regs.trace
        )
        self.pc = pc & WORD_MASK
        self.next_pc = self.pc
        self._wfi_pending = False
        self.flush_translation_cache()

    def flush_translation_cache(self) -> None:
        """Invalidate all cached blocks (``fence.i``, code patching)."""
        self._tb_cache.clear()
        self._chain_from = None
        self.tb_flushes += 1
        if self.hooks.tb_flush:
            for hook in self.hooks.tb_flush:
                hook(self)

    def current_word(self) -> int:
        """Raw encoding of the instruction currently executing (for mtval)."""
        return self._current.word if self._current is not None else 0

    # ------------------------------------------------------------------
    # Memory interface used by instruction semantics
    # ------------------------------------------------------------------

    def _refresh_ram_window(self) -> None:
        """Re-derive the RAM fast-path window from the current bus map.

        Only a *plain* :class:`~repro.vp.memory.Ram` is eligible (exact
        type check, not ``isinstance``): anything that wraps or overrides
        ``load``/``store`` — fault wrappers, coverage shims — must keep
        observing every access through the bus-dispatch path.
        """
        self._ram_version = self.bus.version
        for base, size, device in self.bus.regions:
            if type(device) is Ram:
                self._ram = device
                self._ram_base = base
                self._ram_end = base + size
                self._ram_data = device.data
                self._ram_dirty = device._dirty
                self._ram_shift = device._page_shift
                return
        self._ram = None
        self._ram_base = 0x1_0000_0000
        self._ram_end = 0
        self._ram_data = None
        self._ram_dirty = None
        self._ram_shift = 0

    def invalidate_ram_window(self) -> None:
        """Force a window refresh before the next fast-path access.

        ``bus.version`` already covers device swaps; this is the explicit
        hook for events the bus cannot see (snapshot restore rebinding
        machine state, external mutation of the memory map).
        """
        self._ram_version = -1

    def load(self, addr: int, width: int, signed: bool = False) -> int:
        if addr % width:
            raise Trap(csrdef.CAUSE_MISALIGNED_LOAD, addr)
        if self._ram_version != self.bus.version:
            self._refresh_ram_window()
        base = self._ram_base
        if base <= addr and addr + width <= self._ram_end:
            offset = addr - base
            data = self._ram_data
            if width == 4:
                value = UNPACK_WORD(data, offset)[0]
            elif width == 1:
                value = data[offset]
            else:
                value = UNPACK_HALF(data, offset)[0]
            self.mem_fast_loads += 1
        else:
            try:
                value = self.bus.load(addr, width)
            except BusError:
                raise Trap(csrdef.CAUSE_LOAD_ACCESS, addr) from None
            self.mem_bus_loads += 1
        if self.hooks.mem_access:
            for hook in self.hooks.mem_access:
                hook(self, addr, width, value, False)
        if signed:
            value = sign_extend(value, width * 8)
        return value

    def store(self, addr: int, width: int, value: int) -> None:
        if addr % width:
            raise Trap(csrdef.CAUSE_MISALIGNED_STORE, addr)
        if self.hooks.mem_access:
            for hook in self.hooks.mem_access:
                hook(self, addr, width, value, True)
        if self._ram_version != self.bus.version:
            self._refresh_ram_window()
        base = self._ram_base
        if base <= addr and addr + width <= self._ram_end:
            offset = addr - base
            data = self._ram_data
            if width == 4:
                PACK_WORD(data, offset, value & 0xFFFFFFFF)
            elif width == 1:
                data[offset] = value & 0xFF
            else:
                PACK_HALF(data, offset, value & 0xFFFF)
            # Aligned accesses never straddle a page (page size is a power
            # of two >= 4), so one dirty-set add keeps dirty_pages() exact.
            self._ram_dirty.add(offset >> self._ram_shift)
            self.mem_fast_stores += 1
        else:
            try:
                self.bus.store(addr, width, value)
            except BusError:
                raise Trap(csrdef.CAUSE_STORE_ACCESS, addr) from None
            self.mem_bus_stores += 1

    # ------------------------------------------------------------------
    # System interface used by instruction semantics
    # ------------------------------------------------------------------

    def environment_call(self) -> None:
        if self.ecall_handler is not None:
            self.ecall_handler(self)
        else:
            self.trap(csrdef.CAUSE_ECALL_M, 0)

    def trap(self, cause: int, tval: int) -> None:
        raise Trap(cause, tval)

    def wait_for_interrupt(self) -> None:
        self._wfi_pending = True

    # ------------------------------------------------------------------
    # Fetch and translate
    # ------------------------------------------------------------------

    def _fetch_halfword(self, addr: int) -> int:
        try:
            return self.bus.load(addr, 2)
        except BusError:
            raise Trap(csrdef.CAUSE_FETCH_ACCESS, addr) from None

    def _fetch_word(self, addr: int) -> int:
        """Fetch up to 32 bits at ``addr`` (16-bit granular, like RVC fetch)."""
        low = self._fetch_halfword(addr)
        if low & 0x3 != 0x3:
            return low
        return low | (self._fetch_halfword(addr + 2) << 16)

    def _build_block(self, start_pc: int) -> TranslationBlock:
        insns: List[Decoded] = []
        pcs: List[int] = []
        pc = start_pc
        while len(insns) < MAX_BLOCK_INSNS:
            word = self._fetch_word(pc)
            try:
                decoded = self.decoder.decode(word, pc)
            except IllegalInstructionError:
                if not insns:
                    raise Trap(csrdef.CAUSE_ILLEGAL_INSTRUCTION, word) from None
                break  # end block before the undecodable word
            insns.append(decoded)
            pcs.append(pc)
            pc += decoded.spec.length
            spec = decoded.spec
            if spec.is_branch or spec.is_jump or spec.is_system:
                break
        block = TranslationBlock(start_pc, insns, pcs)
        block.finalize(self.timing, self.icache)
        if self.hooks.block_translate:
            for hook in self.hooks.block_translate:
                hook(self, block)
        return block

    def _get_block(self, pc: int) -> TranslationBlock:
        if pc & self._fetch_align_mask:
            raise Trap(csrdef.CAUSE_MISALIGNED_FETCH, pc)
        if not self.block_cache_enabled:
            self.tb_misses += 1
            return self._build_block(pc)
        block = self._tb_cache.get(pc)
        if block is None:
            if (self.max_blocks is not None
                    and len(self._tb_cache) >= self.max_blocks):
                self.flush_translation_cache()
            self.tb_misses += 1
            block = self._build_block(pc)
            self._tb_cache[pc] = block
        else:
            self.tb_hits += 1
        return block

    def _next_block(self) -> TranslationBlock:
        """The block at ``self.pc``, taking the chain link when valid.

        A chained transition (the previous block's statically known
        successor) skips the ``_tb_cache`` dict lookup entirely; it still
        counts as a ``tb_hits`` event so cache statistics stay meaningful.
        """
        pc = self.pc
        prev = self._chain_from
        self._chain_from = None
        if prev is not None:
            nxt = prev.next
            if nxt is not None and nxt.start_pc == pc:
                self.tb_hits += 1
                return nxt
        block = self._get_block(pc)
        if (prev is not None and prev.chain_pc == pc
                and self.block_cache_enabled):
            prev.next = block
        return block

    # ------------------------------------------------------------------
    # Interrupts and traps
    # ------------------------------------------------------------------

    def _pending_interrupt(self) -> Optional[int]:
        mip = self._interrupt_poll()
        self.csrs.raw_write(csrdef.MIP, mip)
        if not mip:  # nothing asserted: skip the mstatus/mie reads
            return None
        if not self.csrs.raw_read(csrdef.MSTATUS) & csrdef.MSTATUS_MIE:
            return None
        enabled = mip & self.csrs.raw_read(csrdef.MIE)
        if not enabled:
            return None
        # Priority order per the privileged spec: external, software, timer.
        if enabled & csrdef.MIE_MEIE:
            return csrdef.CAUSE_MACHINE_EXTERNAL_INT
        if enabled & csrdef.MIE_MSIE:
            return csrdef.CAUSE_MACHINE_SOFTWARE_INT
        return csrdef.CAUSE_MACHINE_TIMER_INT

    def _take_trap(self, cause: int, tval: int) -> None:
        mtvec = self.csrs.raw_read(csrdef.MTVEC)
        if mtvec == 0 and not (cause & csrdef.INTERRUPT_BIT):
            raise UnhandledTrap(cause, tval, self.pc)
        if self.hooks.trap:
            for hook in self.hooks.trap:
                hook(self, cause, self.pc)
        self.csrs.raw_write(csrdef.MEPC, self.pc)
        self.csrs.raw_write(csrdef.MCAUSE, cause)
        self.csrs.raw_write(csrdef.MTVAL, tval)
        status = self.csrs.raw_read(csrdef.MSTATUS)
        mie = bool(status & csrdef.MSTATUS_MIE)
        status &= ~(csrdef.MSTATUS_MIE | csrdef.MSTATUS_MPIE)
        if mie:
            status |= csrdef.MSTATUS_MPIE
        status |= csrdef.MSTATUS_MPP  # we came from (and stay in) M-mode
        self.csrs.raw_write(csrdef.MSTATUS, status)
        base = mtvec & ~0x3
        if (mtvec & 0x3) == 1 and (cause & csrdef.INTERRUPT_BIT):
            self.pc = (base + 4 * (cause & 0x3FF)) & WORD_MASK
        else:
            self.pc = base

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step_block(self) -> int:
        """Run one translation block (or take one interrupt/trap).

        Returns the number of instructions retired.  This is the general
        path (instruction hooks honoured); :meth:`run` switches to
        :meth:`_step_block_fast` while no instruction hooks are attached.
        """
        interrupt = self._pending_interrupt()
        if interrupt is not None:
            self._wfi_pending = False
            self._take_trap(interrupt, 0)
            return 0
        try:
            block = self._next_block()
        except Trap as trap:
            self._take_trap(trap.cause, trap.tval)
            return 0
        block.exec_count += 1
        if self.hooks.block_exec:
            for hook in self.hooks.block_exec:
                hook(self, block)
        insn_hooks = self.hooks.insn_exec
        retired = 0
        cycles = 0
        if self.icache is not None:
            cycles += self.icache.penalty_for_lines(block.icache_lines)
        pending_trap: Optional[Trap] = None
        try:
            for decoded, execute, pc, fallthrough, base_cost, taken_cost \
                    in block.ops:
                self.pc = pc
                self._current = decoded
                self.next_pc = fallthrough
                if insn_hooks:
                    for hook in insn_hooks:
                        hook(self, decoded, pc)
                try:
                    execute(self, decoded)
                except Trap as trap:
                    cycles += base_cost
                    pending_trap = trap
                    break
                except MachineExit:
                    # The exiting instruction consumed its cycles; the
                    # finally block below flushes them before unwinding.
                    cycles += base_cost
                    raise
                retired += 1
                next_pc = self.next_pc
                self.pc = next_pc
                if next_pc != fallthrough:
                    cycles += taken_cost
                    break
                cycles += base_cost
        finally:
            # Flush accounting even when MachineExit/UnhandledTrap unwinds
            # mid-block, so RunResult counters stay exact.
            self.csrs.instret += retired
            self.csrs.cycle += cycles
            self.bus.tick(cycles)
        if pending_trap is not None:
            self._take_trap(pending_trap.cause, pending_trap.tval)
        elif self.block_cache_enabled and block.chain_pc == self.pc:
            self._chain_from = block
        return retired

    def _step_block_fast(self) -> int:
        """:meth:`step_block` specialized for the no-instruction-hook case.

        Identical architectural behaviour; the per-instruction hook test
        and list iteration are gone, which is where an interpreted VP
        spends its inner loop (GVSoC's lesson).  Selected once per
        :meth:`run` and re-selected when the hook table changes.
        """
        interrupt = self._pending_interrupt()
        if interrupt is not None:
            self._wfi_pending = False
            self._take_trap(interrupt, 0)
            return 0
        try:
            block = self._next_block()
        except Trap as trap:
            self._take_trap(trap.cause, trap.tval)
            return 0
        block.exec_count += 1
        if self.hooks.block_exec:
            for hook in self.hooks.block_exec:
                hook(self, block)
        retired = 0
        cycles = 0
        icache = self.icache
        if icache is not None:
            cycles += icache.penalty_for_lines(block.icache_lines)
        pending_trap: Optional[Trap] = None
        try:
            for decoded, execute, pc, fallthrough, base_cost, taken_cost \
                    in block.ops:
                self.pc = pc
                self._current = decoded
                self.next_pc = fallthrough
                try:
                    execute(self, decoded)
                except Trap as trap:
                    cycles += base_cost
                    pending_trap = trap
                    break
                except MachineExit:
                    cycles += base_cost
                    raise
                retired += 1
                next_pc = self.next_pc
                self.pc = next_pc
                if next_pc != fallthrough:
                    cycles += taken_cost
                    break
                cycles += base_cost
        finally:
            csrs = self.csrs
            csrs.instret += retired
            csrs.cycle += cycles
            self.bus.tick(cycles)
        if pending_trap is not None:
            self._take_trap(pending_trap.cause, pending_trap.tval)
        elif self.block_cache_enabled and block.chain_pc == self.pc:
            self._chain_from = block
        return retired

    def _select_step(self):
        """Pick the per-block step variant for the current hook table."""
        return self.step_block if self.hooks.insn_exec else self._step_block_fast

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Execute until WFI-with-no-event or the instruction budget ends.

        The run loop itself lives in the active
        :class:`~repro.vp.backends.ExecutionBackend` (``interp``,
        ``fastpath``, or the JIT's ``compiled`` tier); without an explicit
        backend the historical ``fastpath`` behaviour is used.

        :class:`~repro.vp.trap.MachineExit` and
        :class:`~repro.vp.trap.UnhandledTrap` propagate to the caller
        (:class:`repro.vp.machine.Machine` turns them into results).
        """
        backend = self.backend
        if backend is None:
            from .backends import create_backend

            backend = self.backend = create_backend("fastpath", self)
        return backend.run(max_instructions)
