"""Trap and machine-exit control flow for the virtual prototype."""

from __future__ import annotations

from ..isa import csr as csrdef


class Trap(Exception):
    """A synchronous exception or interrupt being taken.

    Raised by instruction semantics / the bus and caught by the CPU's
    execution loop, which performs the machine-mode trap entry.
    """

    def __init__(self, cause: int, tval: int = 0) -> None:
        super().__init__(f"trap cause={cause:#x} tval={tval:#x}")
        self.cause = cause
        self.tval = tval

    @property
    def is_interrupt(self) -> bool:
        return bool(self.cause & csrdef.INTERRUPT_BIT)


class MachineExit(Exception):
    """The simulated program terminated (exit device write or exit ecall)."""

    def __init__(self, code: int) -> None:
        super().__init__(f"machine exit with code {code}")
        self.code = code


class UnhandledTrap(Exception):
    """A trap occurred with no handler installed (``mtvec`` still 0).

    Bare-metal programs that never set up a trap vector cannot meaningfully
    re-enter at address 0; the CPU stops the run instead and reports the
    original cause, which the fault-injection classifier records as a
    hardware-detected failure.
    """

    def __init__(self, cause: int, tval: int, pc: int) -> None:
        super().__init__(
            f"unhandled trap at pc={pc:#010x}: {cause_name(cause)} "
            f"(tval={tval:#x})"
        )
        self.cause = cause
        self.tval = tval
        self.pc = pc


class BusError(Exception):
    """An access to an unmapped or out-of-range physical address."""

    def __init__(self, addr: int, message: str = "") -> None:
        super().__init__(message or f"bus error at {addr:#010x}")
        self.addr = addr


#: Human-readable names for mcause values, for reports and debugging.
CAUSE_NAMES = {
    csrdef.CAUSE_MISALIGNED_FETCH: "instruction address misaligned",
    csrdef.CAUSE_FETCH_ACCESS: "instruction access fault",
    csrdef.CAUSE_ILLEGAL_INSTRUCTION: "illegal instruction",
    csrdef.CAUSE_BREAKPOINT: "breakpoint",
    csrdef.CAUSE_MISALIGNED_LOAD: "load address misaligned",
    csrdef.CAUSE_LOAD_ACCESS: "load access fault",
    csrdef.CAUSE_MISALIGNED_STORE: "store address misaligned",
    csrdef.CAUSE_STORE_ACCESS: "store access fault",
    csrdef.CAUSE_ECALL_M: "environment call from M-mode",
    csrdef.CAUSE_MACHINE_SOFTWARE_INT: "machine software interrupt",
    csrdef.CAUSE_MACHINE_TIMER_INT: "machine timer interrupt",
    csrdef.CAUSE_MACHINE_EXTERNAL_INT: "machine external interrupt",
}


def cause_name(cause: int) -> str:
    """Name for an mcause value (falls back to hex)."""
    return CAUSE_NAMES.get(cause, f"cause {cause:#x}")
