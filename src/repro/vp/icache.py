"""Instruction-cache model.

A set-associative instruction cache with LRU replacement, charged at
translation-block granularity: before a block executes, every cache line
it spans is looked up, and each miss costs ``miss_penalty`` cycles.

The WCET side (:func:`repro.wcet.ait.run_ait_analysis` with an
``icache`` argument) uses the *miss-always* abstraction — every execution
of a block is assumed to miss all of its lines — which upper-bounds the
simulated behaviour by construction, at the price of pessimism that the
A6 experiment quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ICacheConfig:
    """Geometry and timing of the instruction cache."""

    size: int = 1024          # total bytes
    line_size: int = 16       # bytes per line
    ways: int = 2
    miss_penalty: int = 10    # cycles per line fill

    def __post_init__(self) -> None:
        for name in ("size", "line_size", "ways", "miss_penalty"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")
        if self.size % (self.line_size * self.ways):
            raise ValueError("size must be a multiple of line_size * ways")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.ways)

    def lines_spanned(self, start: int, end: int) -> int:
        """Number of cache lines the byte range [start, end) touches."""
        if end <= start:
            return 0
        first = start // self.line_size
        last = (end - 1) // self.line_size
        return last - first + 1


class ICache:
    """The dynamic cache state: LRU sets of line tags."""

    def __init__(self, config: ICacheConfig) -> None:
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access_line(self, line: int) -> bool:
        """Look up line number ``line``; returns True on hit."""
        index = line % self.config.num_sets
        entries = self._sets[index]
        if line in entries:
            entries.remove(line)
            entries.append(line)  # most-recently-used position
            self.hits += 1
            return True
        self.misses += 1
        entries.append(line)
        if len(entries) > self.config.ways:
            entries.pop(0)  # evict LRU
        return False

    def penalty_for_range(self, start: int, end: int) -> int:
        """Total miss penalty for fetching the byte range [start, end)."""
        if end <= start:
            return 0
        line_size = self.config.line_size
        return self.penalty_for_lines(
            range(start // line_size, (end - 1) // line_size + 1))

    def penalty_for_lines(self, lines) -> int:
        """Miss penalty for a precomputed line-number sequence.

        Translation blocks precompute their spanned lines once
        (:meth:`repro.vp.cpu.TranslationBlock.finalize`), so the per-block
        hot path skips the address arithmetic of :meth:`penalty_for_range`.
        The lookups themselves stay dynamic — the penalty depends on LRU
        state and cannot be cached.
        """
        penalty = 0
        miss_penalty = self.config.miss_penalty
        access_line = self.access_line
        for line in lines:
            if not access_line(line):
                penalty += miss_penalty
        return penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0
