"""Lockstep differential execution of two machines.

Runs the same program on two differently configured machines (e.g. block
cache on vs. off, or two ISA-compatible timing models) and compares the
architectural state after every executed instruction.  Divergence is
reported with the instruction index, pc, and the differing state — the
software analogue of the dual-core lockstep operation of safety MCUs, and
the tool this repo uses to prove that the translation-block cache is
behaviour-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..asm import Program
from .machine import Machine
from .plugins import Plugin
from .trap import MachineExit, UnhandledTrap


class LockstepDivergence(Exception):
    """The two machines disagreed on architectural state.

    Beyond the instruction index / pc / detail string, the report carries
    the *culprit* instruction — the one whose execution produced the
    differing state — as ``disasm`` (via :mod:`repro.isa.disasm`) plus the
    ``reg_delta`` of the first diverging snapshot: ``(reg, primary,
    secondary)`` triples for every GPR the two machines disagree on.
    ``kind`` classifies the mismatch (``registers``, ``control-flow``,
    ``count``, ``exit``) so downstream triage can key on the divergence
    class rather than on value-bearing detail strings.
    """

    def __init__(self, index: int, pc: int, detail: str,
                 kind: str = "state",
                 disasm: Optional[str] = None,
                 reg_delta: Tuple[Tuple[int, int, int], ...] = ()) -> None:
        message = f"divergence at instruction {index}, pc {pc:#010x}: {detail}"
        if disasm:
            message += f" [after: {disasm}]"
        super().__init__(message)
        self.index = index
        self.pc = pc
        self.detail = detail
        self.kind = kind
        self.disasm = disasm
        self.reg_delta = reg_delta


@dataclass
class LockstepResult:
    """Outcome of a lockstep comparison run."""

    instructions: int
    diverged: bool = False
    divergence: Optional[LockstepDivergence] = None
    primary_exit: Optional[int] = None
    secondary_exit: Optional[int] = None


class _StepRecorder(Plugin):
    """Captures (pc, registers, decoded insn) before every instruction."""

    def __init__(self) -> None:
        self.steps: List[Tuple[int, Tuple[int, ...], object]] = []

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.steps.append((pc, cpu.regs.snapshot(), decoded))


def _run_with_recorder(machine: Machine, program: Program,
                       max_instructions: int):
    machine.load(program)
    recorder = _StepRecorder()
    machine.add_plugin(recorder)
    result = machine.run(max_instructions=max_instructions)
    machine.remove_plugin(recorder)
    return recorder.steps, result


def run_lockstep(
    primary: Machine,
    secondary: Machine,
    program: Program,
    max_instructions: int = 1_000_000,
    raise_on_divergence: bool = True,
) -> LockstepResult:
    """Run ``program`` on both machines and compare per-instruction state.

    Machines must share the ISA configuration.  Returns a
    :class:`LockstepResult`; raises :class:`LockstepDivergence` on mismatch
    unless ``raise_on_divergence`` is False.
    """
    if primary.config.isa != secondary.config.isa:
        raise ValueError("lockstep machines must share an ISA configuration")
    primary_steps, primary_result = _run_with_recorder(
        primary, program, max_instructions)
    secondary_steps, secondary_result = _run_with_recorder(
        secondary, program, max_instructions)

    result = LockstepResult(
        instructions=min(len(primary_steps), len(secondary_steps)),
        primary_exit=primary_result.exit_code,
        secondary_exit=secondary_result.exit_code,
    )
    divergence = _compare(primary_steps, secondary_steps,
                          primary_result.exit_code,
                          secondary_result.exit_code)
    if divergence is not None:
        result.diverged = True
        result.divergence = divergence
        if raise_on_divergence:
            raise divergence
    return result


def run_backend_lockstep(
    program: Program,
    backends: Tuple[str, str] = ("interp", "compiled"),
    isa=None,
    max_instructions: int = 1_000_000,
    raise_on_divergence: bool = True,
    jit_threshold: Optional[int] = None,
) -> LockstepResult:
    """Lockstep two execution backends over the same program.

    The workhorse behind the backend parity suite: builds two machines
    differing only in :attr:`MachineConfig.backend` (and optionally the
    JIT tier threshold) and compares per-instruction architectural
    state.  A low ``jit_threshold`` makes even short programs exercise
    the compiled tier.
    """
    from .machine import MachineConfig

    def build(name: str) -> Machine:
        kwargs = {"backend": name}
        if isa is not None:
            kwargs["isa"] = isa
        if jit_threshold is not None and name == "compiled":
            kwargs["jit_threshold"] = jit_threshold
        return Machine(MachineConfig(**kwargs))

    return run_lockstep(build(backends[0]), build(backends[1]), program,
                        max_instructions=max_instructions,
                        raise_on_divergence=raise_on_divergence)


def _step_disasm(steps, index: int) -> Optional[str]:
    """Disassemble the recorded instruction at ``index``, if any.

    The recorder snapshots state *before* each instruction executes, so a
    mismatch first visible at snapshot ``index`` was produced by the
    instruction recorded at ``index - 1`` — callers pass that culprit
    index here.
    """
    from ..isa.disasm import disassemble

    if not 0 <= index < len(steps):
        return None
    pc, _regs, decoded = steps[index]
    if decoded is None:
        return None
    try:
        return disassemble(decoded, pc)
    except Exception:  # noqa: BLE001 — diagnostics must not mask the report
        return None


def _compare(primary_steps, secondary_steps, primary_exit, secondary_exit
             ) -> Optional[LockstepDivergence]:
    for index, ((pc_a, regs_a, _dec_a), (pc_b, regs_b, _dec_b)) in enumerate(
            zip(primary_steps, secondary_steps)):
        if pc_a != pc_b:
            return LockstepDivergence(
                index, pc_a,
                f"control flow differs (secondary at {pc_b:#010x})",
                kind="control-flow",
                disasm=_step_disasm(primary_steps, index - 1))
        if regs_a != regs_b:
            delta = tuple(
                (i, a, b)
                for i, (a, b) in enumerate(zip(regs_a, regs_b)) if a != b
            )
            diffs = [f"x{i}: {a:#x} vs {b:#x}" for i, a, b in delta]
            return LockstepDivergence(
                index, pc_a,
                "registers differ: " + "; ".join(diffs),
                kind="registers",
                disasm=_step_disasm(primary_steps, index - 1),
                reg_delta=delta)
    if len(primary_steps) != len(secondary_steps):
        short = min(len(primary_steps), len(secondary_steps))
        longer_steps = (primary_steps if len(primary_steps) > short
                        else secondary_steps)
        pc = longer_steps[short][0]
        return LockstepDivergence(
            short, pc,
            f"instruction counts differ ({len(primary_steps)} vs "
            f"{len(secondary_steps)})",
            kind="count",
            disasm=_step_disasm(longer_steps, short))
    if primary_exit != secondary_exit:
        return LockstepDivergence(
            len(primary_steps), 0,
            f"exit codes differ ({primary_exit} vs {secondary_exit})",
            kind="exit",
            disasm=_step_disasm(primary_steps, len(primary_steps) - 1))
    return None
