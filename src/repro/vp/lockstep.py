"""Lockstep differential execution of two machines.

Runs the same program on two differently configured machines (e.g. block
cache on vs. off, or two ISA-compatible timing models) and compares the
architectural state after every executed instruction.  Divergence is
reported with the instruction index, pc, and the differing state — the
software analogue of the dual-core lockstep operation of safety MCUs, and
the tool this repo uses to prove that the translation-block cache is
behaviour-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..asm import Program
from .machine import Machine
from .plugins import Plugin
from .trap import MachineExit, UnhandledTrap


class LockstepDivergence(Exception):
    """The two machines disagreed on architectural state."""

    def __init__(self, index: int, pc: int, detail: str) -> None:
        super().__init__(
            f"divergence at instruction {index}, pc {pc:#010x}: {detail}"
        )
        self.index = index
        self.pc = pc
        self.detail = detail


@dataclass
class LockstepResult:
    """Outcome of a lockstep comparison run."""

    instructions: int
    diverged: bool = False
    divergence: Optional[LockstepDivergence] = None
    primary_exit: Optional[int] = None
    secondary_exit: Optional[int] = None


class _StepRecorder(Plugin):
    """Captures (pc, registers) before every instruction."""

    def __init__(self) -> None:
        self.steps: List[Tuple[int, Tuple[int, ...]]] = []

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.steps.append((pc, cpu.regs.snapshot()))


def _run_with_recorder(machine: Machine, program: Program,
                       max_instructions: int):
    machine.load(program)
    recorder = _StepRecorder()
    machine.add_plugin(recorder)
    result = machine.run(max_instructions=max_instructions)
    machine.remove_plugin(recorder)
    return recorder.steps, result


def run_lockstep(
    primary: Machine,
    secondary: Machine,
    program: Program,
    max_instructions: int = 1_000_000,
    raise_on_divergence: bool = True,
) -> LockstepResult:
    """Run ``program`` on both machines and compare per-instruction state.

    Machines must share the ISA configuration.  Returns a
    :class:`LockstepResult`; raises :class:`LockstepDivergence` on mismatch
    unless ``raise_on_divergence`` is False.
    """
    if primary.config.isa != secondary.config.isa:
        raise ValueError("lockstep machines must share an ISA configuration")
    primary_steps, primary_result = _run_with_recorder(
        primary, program, max_instructions)
    secondary_steps, secondary_result = _run_with_recorder(
        secondary, program, max_instructions)

    result = LockstepResult(
        instructions=min(len(primary_steps), len(secondary_steps)),
        primary_exit=primary_result.exit_code,
        secondary_exit=secondary_result.exit_code,
    )
    divergence = _compare(primary_steps, secondary_steps,
                          primary_result.exit_code,
                          secondary_result.exit_code)
    if divergence is not None:
        result.diverged = True
        result.divergence = divergence
        if raise_on_divergence:
            raise divergence
    return result


def run_backend_lockstep(
    program: Program,
    backends: Tuple[str, str] = ("interp", "compiled"),
    isa=None,
    max_instructions: int = 1_000_000,
    raise_on_divergence: bool = True,
    jit_threshold: Optional[int] = None,
) -> LockstepResult:
    """Lockstep two execution backends over the same program.

    The workhorse behind the backend parity suite: builds two machines
    differing only in :attr:`MachineConfig.backend` (and optionally the
    JIT tier threshold) and compares per-instruction architectural
    state.  A low ``jit_threshold`` makes even short programs exercise
    the compiled tier.
    """
    from .machine import MachineConfig

    def build(name: str) -> Machine:
        kwargs = {"backend": name}
        if isa is not None:
            kwargs["isa"] = isa
        if jit_threshold is not None and name == "compiled":
            kwargs["jit_threshold"] = jit_threshold
        return Machine(MachineConfig(**kwargs))

    return run_lockstep(build(backends[0]), build(backends[1]), program,
                        max_instructions=max_instructions,
                        raise_on_divergence=raise_on_divergence)


def _compare(primary_steps, secondary_steps, primary_exit, secondary_exit
             ) -> Optional[LockstepDivergence]:
    for index, ((pc_a, regs_a), (pc_b, regs_b)) in enumerate(
            zip(primary_steps, secondary_steps)):
        if pc_a != pc_b:
            return LockstepDivergence(
                index, pc_a,
                f"control flow differs (secondary at {pc_b:#010x})")
        if regs_a != regs_b:
            diffs = [
                f"x{i}: {a:#x} vs {b:#x}"
                for i, (a, b) in enumerate(zip(regs_a, regs_b)) if a != b
            ]
            return LockstepDivergence(index, pc_a,
                                      "registers differ: " + "; ".join(diffs))
    if len(primary_steps) != len(secondary_steps):
        longer = max(len(primary_steps), len(secondary_steps))
        short = min(len(primary_steps), len(secondary_steps))
        pc = (primary_steps if len(primary_steps) > short
              else secondary_steps)[short][0]
        return LockstepDivergence(
            short, pc,
            f"instruction counts differ ({len(primary_steps)} vs "
            f"{len(secondary_steps)})")
    if primary_exit != secondary_exit:
        return LockstepDivergence(
            len(primary_steps), 0,
            f"exit codes differ ({primary_exit} vs {secondary_exit})")
    return None
