"""Selectable execution backends for :meth:`repro.vp.cpu.Cpu.run`.

An :class:`ExecutionBackend` owns the run loop — budget accounting,
livelock detection, WFI fast-forward, :class:`~repro.vp.cpu.StopRun`
handling — and delegates the per-block step to a tier-specific strategy:

* ``interp``    — always the general :meth:`~repro.vp.cpu.Cpu.step_block`
  (instruction hooks honoured unconditionally),
* ``fastpath``  — the historical default: pick
  :meth:`~repro.vp.cpu.Cpu._step_block_fast` while no instruction hooks
  are attached, re-selecting when the hook table version changes,
* ``compiled``  — the template JIT tier (:mod:`repro.vp.jit`): interpret
  a block until its ``exec_count`` crosses a threshold, then execute a
  specialized compiled function cached on the block.

All three produce bit-identical architectural results; the backend choice
only moves the speed/observability trade-off.  ``create_backend`` is the
single factory the machine layer, CLI, and tests go through.
"""

from __future__ import annotations

from typing import Optional

from ..isa import csr as csrdef
from .cpu import (LIVELOCK_LIMIT, STOP_LIVELOCK, STOP_MAX_INSNS,
                  STOP_REQUESTED, STOP_WFI, Cpu, RunResult, StopRun)

__all__ = ["ExecutionBackend", "InterpBackend", "FastpathBackend",
           "create_backend", "BACKEND_NAMES"]


class ExecutionBackend:
    """Base class: the shared run loop over an abstract per-block step.

    Subclasses implement :meth:`_refresh` (called at run start and
    whenever the hook table version changes mid-run) to pick their step
    strategy, and :meth:`_step` to execute one translation block (or take
    one interrupt/trap), returning the number of instructions retired.
    ``remaining`` is the outstanding instruction budget — the compiled
    tier's fused loops use it to stay within one block of the budget,
    matching the interpreter's block-boundary overshoot contract.
    """

    name = "base"

    def __init__(self, cpu: Cpu) -> None:
        self.cpu = cpu

    def _refresh(self) -> None:
        raise NotImplementedError

    def _step(self, remaining) -> int:
        raise NotImplementedError

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        cpu = self.cpu
        executed = 0
        budget = (max_instructions if max_instructions is not None
                  else float("inf"))
        zero_steps = 0
        hooks = cpu.hooks
        hook_version = hooks.version
        self._refresh()
        start_instret = cpu.csrs.instret
        try:
            while executed < budget:
                if hooks.version != hook_version:  # plugin added/removed
                    hook_version = hooks.version
                    self._refresh()
                retired = self._step(budget - executed)
                executed += retired
                if retired:
                    zero_steps = 0
                else:
                    zero_steps += 1
                    if zero_steps >= LIVELOCK_LIMIT:
                        return RunResult(STOP_LIVELOCK, executed,
                                         cpu.csrs.cycle,
                                         trap_cause=cpu.csrs.raw_read(
                                             csrdef.MCAUSE),
                                         trap_pc=cpu.pc)
                if cpu._wfi_pending:
                    cpu._wfi_pending = False
                    skip = cpu._wfi_wait()
                    if skip is None:
                        return RunResult(STOP_WFI, executed, cpu.csrs.cycle)
                    if skip:
                        cpu.csrs.cycle += skip
                        cpu.bus.tick(skip)
        except StopRun:
            # The hook stopped mid-block; step_block's finally already
            # flushed the partial block's accounting to the CSRs, so the
            # retired count is the instret delta rather than `executed`.
            return RunResult(STOP_REQUESTED,
                             cpu.csrs.instret - start_instret,
                             cpu.csrs.cycle)
        return RunResult(STOP_MAX_INSNS, executed, cpu.csrs.cycle)


class InterpBackend(ExecutionBackend):
    """Always the general interpreter step, hooks checked every block."""

    name = "interp"

    def _refresh(self) -> None:
        self._block_step = self.cpu.step_block

    def _step(self, remaining) -> int:
        return self._block_step()


class FastpathBackend(ExecutionBackend):
    """The historical default: hook-aware step selection per run."""

    name = "fastpath"

    def _refresh(self) -> None:
        self._block_step = self.cpu._select_step()

    def _step(self, remaining) -> int:
        return self._block_step()


def _make_compiled(cpu: Cpu, **options) -> ExecutionBackend:
    from .jit.backend import CompiledBackend

    return CompiledBackend(cpu, **options)


_FACTORIES = {
    "interp": lambda cpu, **options: InterpBackend(cpu),
    "fastpath": lambda cpu, **options: FastpathBackend(cpu),
    "compiled": _make_compiled,
}

#: The accepted ``--backend`` choices, in documentation order.
BACKEND_NAMES = ("interp", "fastpath", "compiled")


def create_backend(name: str, cpu: Cpu, **options) -> ExecutionBackend:
    """Instantiate the named backend for ``cpu``.

    ``options`` are backend-specific (the compiled tier takes
    ``threshold=`` and ``trace_threshold=``); the interpreter backends
    accept and ignore them so one config surface can drive any backend.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}") from None
    return factory(cpu, **options)
