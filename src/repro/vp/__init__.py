"""Virtual prototype: CPU, memory system, peripherals, and plugin API."""

from .cpu import (
    MAX_BLOCK_INSNS,
    Cpu,
    RunResult,
    STOP_EXIT,
    STOP_MAX_INSNS,
    STOP_REQUESTED,
    STOP_WFI,
    StopRun,
    TranslationBlock,
)
from .machine import (
    CLINT_BASE,
    DEFAULT_RAM_SIZE,
    EXIT_BASE,
    GPIO_BASE,
    Machine,
    MachineConfig,
    MachineSnapshot,
    RAM_BASE,
    STOP_UNHANDLED_TRAP,
    UART_BASE,
)
from .backends import BACKEND_NAMES, ExecutionBackend, create_backend
from .icache import ICache, ICacheConfig
from .lockstep import (LockstepDivergence, LockstepResult,
                       run_backend_lockstep, run_lockstep)
from .memory import Device, Ram, SystemBus
from .plugins import HookTable, Plugin
from .timing import TimingModel, classify
from .tracer import ExecutionTracer, RegisterWatch, TraceEntry
from .trap import (
    BusError,
    MachineExit,
    Trap,
    UnhandledTrap,
    cause_name,
)

__all__ = [
    "BACKEND_NAMES",
    "BusError",
    "CLINT_BASE",
    "Cpu",
    "ExecutionBackend",
    "create_backend",
    "run_backend_lockstep",
    "DEFAULT_RAM_SIZE",
    "Device",
    "EXIT_BASE",
    "ExecutionTracer",
    "GPIO_BASE",
    "HookTable",
    "ICache",
    "ICacheConfig",
    "MachineSnapshot",
    "LockstepDivergence",
    "LockstepResult",
    "RegisterWatch",
    "TraceEntry",
    "run_lockstep",
    "MAX_BLOCK_INSNS",
    "Machine",
    "MachineConfig",
    "MachineExit",
    "Plugin",
    "RAM_BASE",
    "Ram",
    "RunResult",
    "STOP_EXIT",
    "STOP_MAX_INSNS",
    "STOP_REQUESTED",
    "STOP_UNHANDLED_TRAP",
    "STOP_WFI",
    "StopRun",
    "SystemBus",
    "TimingModel",
    "Trap",
    "TranslationBlock",
    "UART_BASE",
    "UnhandledTrap",
    "cause_name",
    "classify",
]
