"""Version-independent plugin API for the virtual prototype.

This mirrors the role of QEMU's TCG plugin interface (the API the QEMU
Timing Analyzer is built on): tools observe translation and execution
without touching the emulator core, by overriding any subset of the hook
methods below.  Unimplemented hooks cost nothing — the CPU collects only
the callbacks a plugin actually overrides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..isa.spec import Decoded
    from .cpu import Cpu, TranslationBlock


class Plugin:
    """Base class for VP instrumentation plugins.

    Hooks (override any subset):

    * ``on_attach(machine)`` — plugin registered with a machine.
    * ``on_block_translate(cpu, block)`` — a translation block was built
      (once per block until the cache is flushed).
    * ``on_block_exec(cpu, block)`` — a block is about to execute.
    * ``on_insn_exec(cpu, decoded, pc)`` — an instruction is about to
      execute.
    * ``on_mem_access(cpu, addr, width, value, is_store)`` — a data access
      completed (loads report the loaded value).
    * ``on_trap(cpu, cause, pc)`` — a trap is being taken.
    * ``on_tb_flush(cpu)`` — the translation cache was invalidated
      (``fence.i``, code patching, reset).
    * ``on_exit(code)`` — the machine terminated.
    """

    name = "plugin"

    def on_attach(self, machine) -> None:
        """Called when the plugin is registered."""

    def on_block_translate(self, cpu: "Cpu", block: "TranslationBlock") -> None:
        pass

    def on_block_exec(self, cpu: "Cpu", block: "TranslationBlock") -> None:
        pass

    def on_insn_exec(self, cpu: "Cpu", decoded: "Decoded", pc: int) -> None:
        pass

    def on_mem_access(self, cpu: "Cpu", addr: int, width: int, value: int,
                      is_store: bool) -> None:
        pass

    def on_trap(self, cpu: "Cpu", cause: int, pc: int) -> None:
        pass

    def on_tb_flush(self, cpu: "Cpu") -> None:
        pass

    def on_exit(self, code: int) -> None:
        pass


def _overridden(plugin: Plugin, hook: str) -> bool:
    return getattr(type(plugin), hook) is not getattr(Plugin, hook)


class HookTable:
    """Callback lists compiled from a set of plugins.

    The CPU consults the per-hook lists directly; empty lists make the
    corresponding fast path branch-free in practice.
    """

    def __init__(self) -> None:
        self.plugins: List[Plugin] = []
        self.block_translate = []
        self.block_exec = []
        self.insn_exec = []
        self.mem_access = []
        self.trap = []
        self.tb_flush = []
        self.exit = []
        #: Bumped on every register/unregister so the CPU run loop can
        #: re-select its specialized step variant when hooks change.
        self.version = 0

    def register(self, plugin: Plugin) -> None:
        self.plugins.append(plugin)
        self.version += 1
        if _overridden(plugin, "on_block_translate"):
            self.block_translate.append(plugin.on_block_translate)
        if _overridden(plugin, "on_block_exec"):
            self.block_exec.append(plugin.on_block_exec)
        if _overridden(plugin, "on_insn_exec"):
            self.insn_exec.append(plugin.on_insn_exec)
        if _overridden(plugin, "on_mem_access"):
            self.mem_access.append(plugin.on_mem_access)
        if _overridden(plugin, "on_trap"):
            self.trap.append(plugin.on_trap)
        if _overridden(plugin, "on_tb_flush"):
            self.tb_flush.append(plugin.on_tb_flush)
        if _overridden(plugin, "on_exit"):
            self.exit.append(plugin.on_exit)

    def unregister(self, plugin: Plugin) -> None:
        if plugin not in self.plugins:
            raise ValueError(f"plugin {plugin.name!r} is not registered")
        self.plugins.remove(plugin)
        self.version += 1
        for attr in ("block_translate", "block_exec", "insn_exec",
                     "mem_access", "trap", "tb_flush", "exit"):
            hooks = getattr(self, attr)
            bound = getattr(plugin, {
                "block_translate": "on_block_translate",
                "block_exec": "on_block_exec",
                "insn_exec": "on_insn_exec",
                "mem_access": "on_mem_access",
                "trap": "on_trap",
                "tb_flush": "on_tb_flush",
                "exit": "on_exit",
            }[attr])
            if bound in hooks:
                hooks.remove(bound)
