"""Per-instruction Python source emitters for the template JIT.

Each emitter renders the exact semantics of one
:mod:`repro.isa.semantics` execute function as source text with the
decoded operands folded in as constants.  The table is keyed by the
execute *function object*, so every spec that reuses a base callback
(all of RV32C does) is covered automatically.

Two rendering modes, chosen per block by the compiler:

* **direct** — registers are accessed as ``R[n]`` on the raw backing
  list (only legal when the register file is a plain untraced
  :class:`~repro.isa.registers.RegisterFile`); written values are masked
  to canonical 32-bit form exactly where ``RegisterFile.write`` would
  mask them, and ``x0`` writes are elided at compile time.
* **method** — registers go through the bound ``read``/``write``
  methods, preserving access tracing and fault-wrapper subclasses.

Semantics corner cases (division toward zero, ``INT_MIN / -1``,
``jalr``'s read-before-link ordering, sign extension after the bus
access, ``to_unsigned`` immediates) mirror ``semantics.py`` line for
line — that file is the normative reference; change both together.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...isa import semantics as sem
from ...isa import csr as csrdef

#: Sign-view helper: ``(v ^ SIGN) - SIGN`` maps canonical u32 -> signed.
SIGN = 0x80000000
MASK = 0xFFFFFFFF


def _s(expr: str) -> str:
    """Signed 32-bit view of a canonical unsigned expression."""
    return f"(({expr}) ^ 0x80000000) - 0x80000000"


def _sb(expr: str) -> str:
    """Sign-biased view for *comparisons only*: ``a <s b`` on canonical
    u32 values is ``(a ^ SIGN) < (b ^ SIGN)`` — the bias preserves order
    without materializing negative ints."""
    return f"(({expr}) ^ 0x80000000)"


class Ctx:
    """Per-block codegen context handed to every emitter.

    Carries the register-access mode, per-instruction accounting
    constants (retired count and cycle prefix sums, optionally offset by
    the fused loop's running accumulators), and the trap/exit epilogue
    renderers shared by all memory emitters.
    """

    def __init__(self, block, direct: bool, fused: bool = False,
                 base: int = 0, win=None) -> None:
        self.block = block
        self.direct = direct
        #: In the fused self-loop shape, accounting is offset by the
        #: running ``ret``/``cyc`` locals and prior iterations have
        #: already ticked the bus.
        self.fused = fused
        #: Namespace name offset: instruction ``i`` of this block binds
        #: ``d_{base+i}`` / ``x_{base+i}``.  Non-zero only for trace
        #: members, whose blocks share one function namespace.
        self.base = base
        #: RAM fast-path window ``(base, end, page_shift)`` captured at
        #: compile time, or ``None`` — direct-mode memory emitters guard
        #: on it and fall back to bus dispatch outside it.
        self.win = win
        self.ops = block.ops
        prefix = [0]
        for op in self.ops:
            prefix.append(prefix[-1] + op[4])
        #: prefix[i] == cycles charged before instruction ``i`` executes.
        self.prefix = prefix

    # -- register access ------------------------------------------------

    def r(self, num: int) -> str:
        """Read of GPR ``num`` (x0 reads the raw slot, like the file)."""
        return f"R[{num}]" if self.direct else f"_rd({num})"

    def w(self, num: int, expr: str, canonical: bool = False) -> List[str]:
        """Write ``expr`` to GPR ``num``; ``canonical`` skips the mask."""
        if self.direct:
            if num == 0:
                return []
            if canonical:
                return [f"R[{num}] = {expr}"]
            return [f"R[{num}] = ({expr}) & 0xFFFFFFFF"]
        return [f"_wr({num}, {expr})"]

    # -- accounting constants -------------------------------------------

    def ret_at(self, i: int) -> str:
        """Instructions retired when instruction ``i`` traps."""
        return f"ret + {i}" if self.fused else str(i)

    def cyc_at(self, i: int) -> str:
        """Cycles to flush when instruction ``i`` traps (its base cost
        charged, like the interpreter's trap path)."""
        partial = self.prefix[i] + self.ops[i][4]
        return f"cyc + {partial}" if self.fused else str(partial)

    def tick_at(self, i: int) -> str:
        """Cycles not yet ticked when instruction ``i`` traps."""
        return str(self.prefix[i] + self.ops[i][4])

    def pc_at(self, i: int) -> int:
        return self.ops[i][2]

    def ft_at(self, i: int) -> int:
        return self.ops[i][3]

    def trap_exit(self, i: int, cause, tval: str) -> str:
        """``return _trap_exit(...)`` with instruction ``i``'s constants."""
        return (f"return _trap_exit(cpu, {cause}, {tval}, {self.ret_at(i)}, "
                f"{self.cyc_at(i)}, {self.tick_at(i)}, {self.pc_at(i):#x}, "
                f"{self.ft_at(i):#x}, d_{self.base + i})")

    def exit_flush(self, i: int) -> str:
        """Accounting flush before re-raising ``MachineExit``."""
        return (f"_exit_flush(cpu, {self.ret_at(i)}, {self.cyc_at(i)}, "
                f"{self.tick_at(i)}, {self.pc_at(i):#x}, {self.ft_at(i):#x}, "
                f"d_{self.base + i})")


Emitter = Callable[[Ctx, int], List[str]]


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------

def _rr_emitter(render) -> Emitter:
    def emit(ctx: Ctx, i: int) -> List[str]:
        d = ctx.ops[i][0]
        expr, canonical = render(ctx, d)
        if ctx.direct and d.rd == 0:
            return []  # pure computation into x0: no effect
        return ctx.w(d.rd, expr, canonical)
    return emit


emit_add = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} + {c.r(d.rs2)}", False))
emit_sub = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} - {c.r(d.rs2)}", False))
emit_sll = _rr_emitter(
    lambda c, d: (f"{c.r(d.rs1)} << ({c.r(d.rs2)} & 31)", False))
emit_slt = _rr_emitter(
    lambda c, d: (f"1 if {_sb(c.r(d.rs1))} < {_sb(c.r(d.rs2))} else 0", True))
emit_sltu = _rr_emitter(
    lambda c, d: (f"1 if {c.r(d.rs1)} < {c.r(d.rs2)} else 0", True))
emit_xor = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} ^ {c.r(d.rs2)}", True))
emit_srl = _rr_emitter(
    lambda c, d: (f"{c.r(d.rs1)} >> ({c.r(d.rs2)} & 31)", True))
emit_sra = _rr_emitter(
    lambda c, d: (f"({_s(c.r(d.rs1))}) >> ({c.r(d.rs2)} & 31)", False))
emit_or = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} | {c.r(d.rs2)}", True))
emit_and = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} & {c.r(d.rs2)}", True))

emit_addi = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} + {d.imm}", False))
emit_slti = _rr_emitter(
    lambda c, d: (f"1 if {_sb(c.r(d.rs1))} < "
                  f"{(d.imm & MASK) ^ SIGN:#x} else 0", True))
emit_sltiu = _rr_emitter(
    lambda c, d: (f"1 if {c.r(d.rs1)} < {d.imm & MASK:#x} else 0", True))
emit_xori = _rr_emitter(
    lambda c, d: (f"{c.r(d.rs1)} ^ {d.imm & MASK:#x}", True))
emit_ori = _rr_emitter(
    lambda c, d: (f"{c.r(d.rs1)} | {d.imm & MASK:#x}", True))
emit_andi = _rr_emitter(
    lambda c, d: (f"{c.r(d.rs1)} & {d.imm & MASK:#x}", True))
emit_slli = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} << {d.imm}", False))
emit_srli = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} >> {d.imm}", True))
emit_srai = _rr_emitter(
    lambda c, d: (f"({_s(c.r(d.rs1))}) >> {d.imm}", False))
emit_lui = _rr_emitter(lambda c, d: (f"{d.imm & MASK:#x}", True))


def emit_auipc(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    value = (ctx.pc_at(i) + d.imm) & MASK
    return ctx.w(d.rd, f"{value:#x}", canonical=True)


# -- M extension ------------------------------------------------------------

emit_mul = _rr_emitter(lambda c, d: (f"{c.r(d.rs1)} * {c.r(d.rs2)}", False))
emit_mulh = _rr_emitter(
    lambda c, d: (f"(({_s(c.r(d.rs1))}) * ({_s(c.r(d.rs2))})) >> 32", False))
emit_mulhsu = _rr_emitter(
    lambda c, d: (f"(({_s(c.r(d.rs1))}) * {c.r(d.rs2)}) >> 32", False))
emit_mulhu = _rr_emitter(
    lambda c, d: (f"({c.r(d.rs1)} * {c.r(d.rs2)}) >> 32", False))


def emit_div(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    if ctx.direct and d.rd == 0:
        return []
    lines = [f"_a = {_s(ctx.r(d.rs1))}",
             f"_b = {_s(ctx.r(d.rs2))}",
             "if _b == 0:",
             "    _q = -1",
             "elif _a == -0x80000000 and _b == -1:",
             "    _q = -0x80000000",
             "else:",
             "    _q = abs(_a) // abs(_b)",
             "    if (_a < 0) != (_b < 0):",
             "        _q = -_q"]
    return lines + ctx.w(d.rd, "_q")


def emit_divu(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    if ctx.direct and d.rd == 0:
        return []
    return ctx.w(d.rd,
                 f"0xFFFFFFFF if {ctx.r(d.rs2)} == 0 "
                 f"else {ctx.r(d.rs1)} // {ctx.r(d.rs2)}", canonical=True)


def emit_rem(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    if ctx.direct and d.rd == 0:
        return []
    lines = [f"_a = {_s(ctx.r(d.rs1))}",
             f"_b = {_s(ctx.r(d.rs2))}",
             "if _b == 0:",
             "    _q = _a",
             "elif _a == -0x80000000 and _b == -1:",
             "    _q = 0",
             "else:",
             "    _q = abs(_a) % abs(_b)",
             "    if _a < 0:",
             "        _q = -_q"]
    return lines + ctx.w(d.rd, "_q")


def emit_remu(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    if ctx.direct and d.rd == 0:
        return []
    return ctx.w(d.rd,
                 f"{ctx.r(d.rs1)} if {ctx.r(d.rs2)} == 0 "
                 f"else {ctx.r(d.rs1)} % {ctx.r(d.rs2)}", canonical=True)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------
#
# Direct-mode loads/stores emit a softmmu-style RAM fast path when the
# compiler captured a window: a ``base <= addr <= end - width`` guard
# (alignment already checked) selects a direct struct read/write on the
# captured buffer — with the page-dirty update inlined on stores so
# ``Ram.dirty_pages()`` stays exact — and everything else (MMIO, faults,
# a swapped-out RAM detected via the ``_ramok`` binding) falls back to
# the full bus dispatch with the interpreter's trap semantics.

def _addr_lines(ctx: Ctx, d) -> List[str]:
    """Effective-address computation for the fast-path shape.

    With a window, ``_a`` is left *unmasked*: an overflowing or negative
    ``rs1 + imm`` can never satisfy ``base <= _a < end`` (RAM sits below
    2**32), so the in-window fast path sees only values where the mask
    is a no-op, and the bus fallback re-masks before dispatching.
    ``_a % width`` is mask-invariant too (2**32 is a multiple of every
    access width), so the misalignment check also works unmasked.
    """
    if ctx.win is None:
        return [f"_a = ({ctx.r(d.rs1)} + {d.imm}) & 0xFFFFFFFF"]
    if d.imm:
        return [f"_a = {ctx.r(d.rs1)} + {d.imm}"]
    return [f"_a = {ctx.r(d.rs1)}"]


def _masked_a(ctx: Ctx) -> str:
    """The architectural (masked) address for trap ``tval`` rendering."""
    return "_a" if ctx.win is None else "(_a & 0xFFFFFFFF)"


def _load_emitter(width: int, signed: bool) -> Emitter:
    sign_bit = 1 << (width * 8 - 1)

    def emit(ctx: Ctx, i: int) -> List[str]:
        d = ctx.ops[i][0]
        if not ctx.direct:
            kwargs = ", signed=True" if signed else ""
            addr = f"({ctx.r(d.rs1)} + {d.imm}) & 0xFFFFFFFF"
            return ctx.w(d.rd, f"cpu.load({addr}, {width}{kwargs})")
        lines = _addr_lines(ctx, d)
        if width > 1:
            lines += [f"if _a % {width}:",
                      f"    {ctx.trap_exit(i, csrdef.CAUSE_MISALIGNED_LOAD, _masked_a(ctx))}"]
        slow = ["try:",
                f"    _v = bload(_a, {width})",
                "except BusError:",
                f"    {ctx.trap_exit(i, csrdef.CAUSE_LOAD_ACCESS, '_a')}",
                "except MachineExit:",
                f"    {ctx.exit_flush(i)}",
                "    raise",
                "cpu.mem_bus_loads += 1",
                # The register write below skips its mask (the fast path
                # is canonical by construction), so the bus path masks
                # here — device models may return unmasked values, and
                # the interpreter's regs.write would canonicalize them.
                "_v &= 0xFFFFFFFF"]
        if ctx.win is not None:
            base, end, _shift = ctx.win
            if width == 4:
                read = f"_v = _u4(_mem, _a - {base:#x})[0]"
            elif width == 1:
                read = f"_v = _mem[_a - {base:#x}]"
            else:
                read = f"_v = _u2(_mem, _a - {base:#x})[0]"
            lines += [f"if _ramok and {base:#x} <= _a < {end - width + 1:#x}:",
                      f"    {read}",
                      "    cpu.mem_fast_loads += 1",
                      "else:",
                      "    _a &= 0xFFFFFFFF"]
            lines += ["    " + line for line in slow]
        else:
            lines += slow
        if signed:
            value = f"((_v ^ {sign_bit:#x}) - {sign_bit:#x})"
            canonical = False
        else:
            # Loads from the window and from the bus (devices mask to
            # their width) both produce canonical u32 values already.
            value = "_v"
            canonical = True
        if d.rd:
            lines += ctx.w(d.rd, value, canonical=canonical)
        return lines
    return emit


def _store_emitter(width: int) -> Emitter:
    def emit(ctx: Ctx, i: int) -> List[str]:
        d = ctx.ops[i][0]
        if not ctx.direct:
            addr = f"({ctx.r(d.rs1)} + {d.imm}) & 0xFFFFFFFF"
            return [f"cpu.store({addr}, {width}, {ctx.r(d.rs2)})"]
        lines = _addr_lines(ctx, d)
        if width > 1:
            lines += [f"if _a % {width}:",
                      f"    {ctx.trap_exit(i, csrdef.CAUSE_MISALIGNED_STORE, _masked_a(ctx))}"]
        slow = ["try:",
                f"    bstore(_a, {width}, {ctx.r(d.rs2)})",
                "except BusError:",
                f"    {ctx.trap_exit(i, csrdef.CAUSE_STORE_ACCESS, '_a')}",
                "except MachineExit:",
                f"    {ctx.exit_flush(i)}",
                "    raise",
                "cpu.mem_bus_stores += 1"]
        if ctx.win is not None:
            base, end, shift = ctx.win
            # Register values are canonical u32, so only sub-word widths
            # need a store mask.
            if width == 4:
                write = f"_p4(_mem, _o, {ctx.r(d.rs2)})"
            elif width == 1:
                write = f"_mem[_o] = {ctx.r(d.rs2)} & 0xFF"
            else:
                write = f"_p2(_mem, _o, {ctx.r(d.rs2)} & 0xFFFF)"
            lines += [f"if _ramok and {base:#x} <= _a < {end - width + 1:#x}:",
                      f"    _o = _a - {base:#x}",
                      f"    {write}",
                      f"    _dirty.add(_o >> {shift})",
                      "    cpu.mem_fast_stores += 1",
                      "else:",
                      "    _a &= 0xFFFFFFFF"]
            lines += ["    " + line for line in slow]
        else:
            lines += slow
        return lines
    return emit


emit_lb = _load_emitter(1, True)
emit_lh = _load_emitter(2, True)
emit_lw = _load_emitter(4, False)
emit_lbu = _load_emitter(1, False)
emit_lhu = _load_emitter(2, False)
emit_sb = _store_emitter(1)
emit_sh = _store_emitter(2)
emit_sw = _store_emitter(4)


# ---------------------------------------------------------------------------
# Control flow (method mode only — the direct shape renders block-final
# control flow itself in the compiler's epilogues)
# ---------------------------------------------------------------------------

#: exec function -> rendered comparison, used by both the method-mode
#: branch emitter and the compiler's direct-mode branch epilogue.
BRANCH_CONDS = {
    sem.exec_beq: lambda c, d: f"{c.r(d.rs1)} == {c.r(d.rs2)}",
    sem.exec_bne: lambda c, d: f"{c.r(d.rs1)} != {c.r(d.rs2)}",
    sem.exec_blt: lambda c, d: f"{_sb(c.r(d.rs1))} < {_sb(c.r(d.rs2))}",
    sem.exec_bge: lambda c, d: f"{_sb(c.r(d.rs1))} >= {_sb(c.r(d.rs2))}",
    sem.exec_bltu: lambda c, d: f"{c.r(d.rs1)} < {c.r(d.rs2)}",
    sem.exec_bgeu: lambda c, d: f"{c.r(d.rs1)} >= {c.r(d.rs2)}",
}


def _branch_emitter(execute) -> Emitter:
    cond = BRANCH_CONDS[execute]

    def emit(ctx: Ctx, i: int) -> List[str]:
        d = ctx.ops[i][0]
        target = (ctx.pc_at(i) + d.imm) & MASK
        return [f"if {cond(ctx, d)}:",
                f"    cpu.next_pc = {target:#x}"]
    return emit


def emit_jal(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    target = (ctx.pc_at(i) + d.imm) & MASK
    return (ctx.w(d.rd, f"{ctx.ft_at(i):#x}", canonical=True)
            + [f"cpu.next_pc = {target:#x}"])


def emit_jalr(ctx: Ctx, i: int) -> List[str]:
    d = ctx.ops[i][0]
    # rs1 is read before rd is linked (rd may alias rs1).
    return ([f"_t = ({ctx.r(d.rs1)} + {d.imm}) & 0xFFFFFFFE"]
            + ctx.w(d.rd, f"{ctx.ft_at(i):#x}", canonical=True)
            + ["cpu.next_pc = _t"])


# ---------------------------------------------------------------------------
# The dispatch table
# ---------------------------------------------------------------------------

#: execute function -> emitter for straight-line (non-control) bodies.
EMITTERS: Dict[Callable, Emitter] = {
    sem.exec_add: emit_add, sem.exec_sub: emit_sub, sem.exec_sll: emit_sll,
    sem.exec_slt: emit_slt, sem.exec_sltu: emit_sltu, sem.exec_xor: emit_xor,
    sem.exec_srl: emit_srl, sem.exec_sra: emit_sra, sem.exec_or: emit_or,
    sem.exec_and: emit_and, sem.exec_addi: emit_addi, sem.exec_slti: emit_slti,
    sem.exec_sltiu: emit_sltiu, sem.exec_xori: emit_xori,
    sem.exec_ori: emit_ori, sem.exec_andi: emit_andi, sem.exec_slli: emit_slli,
    sem.exec_srli: emit_srli, sem.exec_srai: emit_srai, sem.exec_lui: emit_lui,
    sem.exec_auipc: emit_auipc,
    sem.exec_mul: emit_mul, sem.exec_mulh: emit_mulh,
    sem.exec_mulhsu: emit_mulhsu, sem.exec_mulhu: emit_mulhu,
    sem.exec_div: emit_div, sem.exec_divu: emit_divu, sem.exec_rem: emit_rem,
    sem.exec_remu: emit_remu,
    sem.exec_lb: emit_lb, sem.exec_lh: emit_lh, sem.exec_lw: emit_lw,
    sem.exec_lbu: emit_lbu, sem.exec_lhu: emit_lhu,
    sem.exec_sb: emit_sb, sem.exec_sh: emit_sh, sem.exec_sw: emit_sw,
}

#: Control-flow emitters (method mode renders these inline; direct mode
#: uses them only through the compiler's block-final epilogues).
CONTROL_EMITTERS: Dict[Callable, Emitter] = {
    sem.exec_jal: emit_jal,
    sem.exec_jalr: emit_jalr,
}
CONTROL_EMITTERS.update(
    {execute: _branch_emitter(execute) for execute in BRANCH_CONDS})
