"""Template JIT: compiled translation blocks for the VP's ``compiled`` tier.

At translate time each hot :class:`~repro.vp.cpu.TranslationBlock` is
turned into one specialized straight-line Python function — registers as
list indexing on the raw register array, immediates and PCs folded into
the source as constants, memory accesses inlined to direct bus calls,
hook invocations compiled in only when the hook table is non-empty —
compiled with :func:`compile`/``exec`` and cached on the block.

Layout:

* :mod:`~repro.vp.jit.templates` — per-instruction source emitters keyed
  by the :mod:`repro.isa.semantics` execute functions (compressed
  instructions reuse the base execute callbacks, so RVC is covered for
  free),
* :mod:`~repro.vp.jit.compiler`  — assembles whole-block functions in
  three shapes: a direct-register fast shape, a bookkeeping shape that
  preserves per-instruction hook ordering, and a fused self-loop
  superblock for single-block spin loops,
* :mod:`~repro.vp.jit.backend`   — the ``compiled``
  :class:`~repro.vp.backends.ExecutionBackend` with hot-block tiering.

The determinism contract — identical architectural results to the
interpreter, bit for bit — is documented in ``docs/performance.md`` and
enforced by ``tests/vp/test_backend_parity.py``.
"""

from .backend import DEFAULT_THRESHOLD, CompiledBackend, JitStats

__all__ = ["CompiledBackend", "JitStats", "DEFAULT_THRESHOLD"]
