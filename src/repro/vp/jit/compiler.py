"""Whole-block source assembly for the template JIT.

:class:`BlockCompiler` turns a finalized
:class:`~repro.vp.cpu.TranslationBlock` into one specialized Python
function ``_tb(cpu, remaining) -> retired`` compiled with
:func:`compile`/``exec``.  Three shapes, picked per block:

* **direct**  — no instruction/memory hooks and a plain untraced
  register file: registers are raw-list accesses, per-instruction
  pc/next_pc bookkeeping disappears, retired/cycle accounting is
  constant-folded into each exit path.
* **fused**   — a direct-shape block whose final instruction is a
  conditional branch back to its own start (a single-block spin loop):
  the whole block becomes a native ``while`` loop that re-checks the
  instruction budget and pending interrupts between iterations, exactly
  where the interpreter's run loop would.
* **method**  — instruction or memory hooks attached, or a traced /
  fault-wrapped register file: an unrolled interpreter preserving the
  per-instruction hook ordering, pc/next_pc visibility, and redirect
  checks of :meth:`~repro.vp.cpu.Cpu.step_block` bit for bit.

Every exit path replicates the interpreter's accounting contract: CSR
``instret``/``cycle`` updated and the bus ticked before any trap is
taken or ``MachineExit`` unwinds, pc parked on the faulting instruction,
chain links only planted on statically known successor exits.
"""

from __future__ import annotations

from typing import List, Optional

from ...isa import semantics as sem
from ..devices.clint import Clint
from ..memory import PACK_HALF, PACK_WORD, UNPACK_HALF, UNPACK_WORD
from ..trap import BusError, MachineExit, Trap
from .templates import BRANCH_CONDS, CONTROL_EMITTERS, EMITTERS, MASK, Ctx

__all__ = ["BlockCompiler", "CompileError", "TRACE_MAX_BLOCKS"]

#: Maximum member blocks per compiled trace (keeps generated functions
#: and invalidation blast radius bounded).
TRACE_MAX_BLOCKS = 8

#: Interrupt-check constants folded into fused-loop source.
_MIP, _MSTATUS, _MIE, _MSTATUS_MIE = 0x344, 0x300, 0x304, 0x8


class CompileError(Exception):
    """Internal codegen failure; the backend falls back to interpreting."""


# -- runtime helpers shared by all generated functions ----------------------

def _trap_exit(cpu, cause, tval, retired, cycles, tick_cycles, pc,
               fallthrough, decoded):
    """Flush accounting, park the pc on the trapping instruction, and
    take the trap — the compiled equivalent of the interpreter's
    ``finally`` flush followed by ``_take_trap``.  Returns ``retired``
    so call sites can ``return`` it directly."""
    csrs = cpu.csrs
    csrs.instret += retired
    csrs.cycle += cycles
    cpu.bus.tick(tick_cycles)
    cpu.pc = pc
    cpu.next_pc = fallthrough
    cpu._current = decoded
    cpu._take_trap(cause, tval)
    return retired


def _exit_flush(cpu, retired, cycles, tick_cycles, pc, fallthrough, decoded):
    """Accounting flush on the ``MachineExit`` unwind path."""
    csrs = cpu.csrs
    csrs.instret += retired
    csrs.cycle += cycles
    cpu.bus.tick(tick_cycles)
    cpu.pc = pc
    cpu.next_pc = fallthrough
    cpu._current = decoded


def _batch_safe(cpu) -> bool:
    """Whether bus ticks may be coalesced across fused-loop iterations.

    CLINT time is a plain cycle sum, so ``tick(n * c)`` equals ``n``
    calls of ``tick(c)``; any other tickable device might observe the
    call granularity, forcing the one-iteration-per-poll slow path.
    """
    for device in cpu.bus._tickable:
        if type(device) is not Clint:
            return False
    return True


def _horizon(cpu, budget_left, insns, taken, timer_live):
    """Iterations a pure fused loop may run between interrupt polls.

    Inside a pure (no memory access, no CSR access, no hooks) self-loop
    every interrupt source except the machine timer is frozen — stores
    can't reach the CLINT or UART and ``mie``/``mstatus`` can't change —
    so skipped polls are only observable where the timer comparand
    crosses.  The horizon stops one poll *at* that crossing: with
    ``wait`` cycles until ``mtime`` reaches ``mtimecmp`` and ``taken``
    cycles per iteration, poll ``j`` (after ``j`` iterations) is the
    first to see the interrupt at ``j == ceil(wait / taken)``, exactly
    where the per-block interpreter takes it.
    """
    n = -(-budget_left // insns)
    if timer_live:
        wait = cpu._wfi_wait()
        if wait is not None:
            if wait <= 0:
                return 1
            limit = -(-wait // taken)
            if limit < n:
                n = limit
    return n if n > 0 else 1


class _Src:
    """Indentation-aware source accumulator."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def add(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def extend(self, indent: int, lines: List[str]) -> None:
        pad = "    " * indent
        for line in lines:
            self.lines.append(pad + line)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class BlockCompiler:
    """Compiles blocks against one snapshot of the hook table and
    register-file shape; the backend rebuilds it whenever either
    changes (keyed by the specialization token)."""

    def __init__(self, cpu, chain_enabled: bool, direct_ok: bool) -> None:
        self.cpu = cpu
        hooks = cpu.hooks
        self.hb = tuple(hooks.block_exec)
        self.hi = tuple(hooks.insn_exec)
        self.hm = tuple(hooks.mem_access)
        #: Direct raw-register shape is only sound when nothing needs to
        #: observe individual accesses or instruction boundaries.
        self.direct = direct_ok and not self.hi and not self.hm
        self.chain_enabled = chain_enabled
        # Capture the CPU's RAM fast-path window so direct-mode memory
        # templates can fold the bounds in as constants.  Generated code
        # re-validates at entry (``_ramok`` binding): the captured buffer
        # must still be the CPU's current window, otherwise every access
        # takes the bus-dispatch fallback — so a fault wrapper swapped in
        # front of RAM mid-campaign is honoured without recompilation.
        if cpu._ram_version != cpu.bus.version:
            cpu._refresh_ram_window()
        self.mem = cpu._ram_data
        self.dirty = cpu._ram_dirty
        if self.mem is not None:
            self.win = (cpu._ram_base, cpu._ram_end, cpu._ram_shift)
        else:
            self.win = None

    # ------------------------------------------------------------------

    def compile(self, block):
        """Return the compiled step function for ``block``."""
        if not block.ops:
            raise CompileError("empty block")
        if self.direct and self._fusable(block):
            src = self._emit_fused(block)
        elif self.direct:
            src = self._emit_direct(block)
        else:
            src = self._emit_method(block)
        namespace = self._namespace(block)
        code = compile(src, f"<jit:{block.start_pc:#x}>", "exec")
        exec(code, namespace)
        fn = namespace["_tb"]
        fn.__jit_source__ = src  # debugging / test introspection
        return fn

    def _base_namespace(self) -> dict:
        return {
            "Trap": Trap, "MachineExit": MachineExit,
            "BusError": BusError, "_trap_exit": _trap_exit,
            "_exit_flush": _exit_flush, "_batch_safe": _batch_safe,
            "_horizon": _horizon, "HB": self.hb, "HI": self.hi,
            "_u4": UNPACK_WORD, "_u2": UNPACK_HALF,
            "_p4": PACK_WORD, "_p2": PACK_HALF,
            "_MEM": self.mem, "_DIRTY": self.dirty,
            "__builtins__": {"abs": abs},
        }

    def _namespace(self, block) -> dict:
        namespace = self._base_namespace()
        namespace["block"] = block
        for i, op in enumerate(block.ops):
            namespace[f"d_{i}"] = op[0]
            namespace[f"x_{i}"] = op[1]
        return namespace

    def _fusable(self, block) -> bool:
        if self.hb:  # block hooks must fire per run-loop visible step
            return False
        ops = block.ops
        execute = ops[-1][1]
        if execute not in BRANCH_CONDS:
            return False
        d = ops[-1][0]
        if (ops[-1][2] + d.imm) & MASK != block.start_pc:
            return False
        return all(op[1] in EMITTERS for op in ops[:-1])

    # -- shared rendering ----------------------------------------------

    @staticmethod
    def _bindings(body_text: str, direct: bool) -> List[str]:
        lines = []
        if direct:
            lines.append("R = cpu.regs._regs")
            if "bload(" in body_text:
                lines.append("bload = cpu.bus.load")
            if "bstore(" in body_text:
                lines.append("bstore = cpu.bus.store")
            if "_ramok" in body_text:
                # The fast path is armed only while the CPU's current
                # window buffer is the one this code was specialized
                # against; a bus mutation (fault wrapper, remap) makes
                # every access take the bus fallback until recompiled.
                lines += ["if cpu._ram_version != cpu.bus.version:",
                          "    cpu._refresh_ram_window()",
                          "_mem = _MEM",
                          "_ramok = cpu._ram_data is _MEM"]
            if "_dirty.add" in body_text:
                lines.append("_dirty = _DIRTY")
        else:
            if "_rd(" in body_text:
                lines.append("_rd = cpu.regs.read")
            if "_wr(" in body_text:
                lines.append("_wr = cpu.regs.write")
        return lines

    def _flush_lines(self, retired, cycles, pc_expr) -> List[str]:
        return [f"_c = cpu.csrs",
                f"_c.instret += {retired}",
                f"_c.cycle += {cycles}",
                f"cpu.bus.tick({cycles})",
                f"cpu.pc = {pc_expr}",
                f"cpu.next_pc = {pc_expr}"]

    def _chain_line(self, block, pc_expr) -> List[str]:
        """Plant the chain link when this exit lands on ``chain_pc``."""
        if not self.chain_enabled or block.chain_pc is None:
            return []
        if pc_expr == f"{block.chain_pc:#x}":
            return ["cpu._chain_from = block"]
        return [f"if {pc_expr} == {block.chain_pc:#x}:",
                "    cpu._chain_from = block"]

    # -- direct shape ---------------------------------------------------

    def _emit_direct_insn(self, src: _Src, ctx: Ctx, i: int,
                          indent: int, block) -> None:
        """One body instruction: a template expansion or the generic
        execute-function fallback with its redirect check."""
        execute = ctx.ops[i][1]
        emitter = EMITTERS.get(execute)
        if emitter is not None:
            src.extend(indent, emitter(ctx, i))
            return
        ft = ctx.ft_at(i)
        src.add(indent, f"cpu.pc = {ctx.pc_at(i):#x}")
        src.add(indent, f"cpu._current = d_{i}")
        src.add(indent, f"cpu.next_pc = {ft:#x}")
        src.add(indent, "try:")
        src.add(indent + 1, f"x_{i}(cpu, d_{i})")
        src.add(indent, "except Trap as _t:")
        src.add(indent + 1, ctx.trap_exit(i, "_t.cause", "_t.tval"))
        src.add(indent, "except MachineExit:")
        src.add(indent + 1, ctx.exit_flush(i))
        src.add(indent + 1, "raise")
        src.add(indent, "_np = cpu.next_pc")
        src.add(indent, f"if _np != {ft:#x}:")
        redirect_cycles = ctx.prefix[i] + ctx.ops[i][5]
        # cpu.next_pc already holds _np; only pc needs the redirect.
        src.extend(indent + 1,
                   self._flush_lines(i + 1, redirect_cycles, "_np")[:-1])
        src.extend(indent + 1, self._chain_line(block, "_np"))
        src.add(indent + 1, f"return {i + 1}")

    def _emit_direct(self, block) -> str:
        ctx = Ctx(block, direct=True, win=self.win)
        ops = block.ops
        n = len(ops)
        last_d, last_exec = ops[-1][0], ops[-1][1]
        last_pc, last_ft, last_base, last_taken = \
            ops[-1][2], ops[-1][3], ops[-1][4], ops[-1][5]
        control_final = (last_exec in BRANCH_CONDS
                         or last_exec is sem.exec_jal
                         or last_exec is sem.exec_jalr)
        body = _Src()
        body_end = n - 1 if control_final else n
        for i in range(body_end):
            self._emit_direct_insn(body, ctx, i, 1, block)

        base_total = ctx.prefix[n - 1] + last_base
        taken_total = ctx.prefix[n - 1] + last_taken
        if last_exec in BRANCH_CONDS:
            target = (last_pc + last_d.imm) & MASK
            taken_cycles = taken_total if target != last_ft else base_total
            body.add(1, f"if {BRANCH_CONDS[last_exec](ctx, last_d)}:")
            body.extend(2, self._flush_lines(n, taken_cycles, f"{target:#x}"))
            body.add(2, f"return {n}")
            body.extend(1, self._flush_lines(n, base_total, f"{last_ft:#x}"))
            body.add(1, f"return {n}")
        elif last_exec is sem.exec_jal:
            target = (last_pc + last_d.imm) & MASK
            cycles = taken_total if target != last_ft else base_total
            body.extend(1, ctx.w(last_d.rd, f"{last_ft:#x}", canonical=True))
            body.extend(1, self._flush_lines(n, cycles, f"{target:#x}"))
            body.extend(1, self._chain_line(block, f"{target:#x}"))
            body.add(1, f"return {n}")
        elif last_exec is sem.exec_jalr:
            body.add(1, f"_t = ({ctx.r(last_d.rs1)} + {last_d.imm})"
                        " & 0xFFFFFFFE")
            body.extend(1, ctx.w(last_d.rd, f"{last_ft:#x}", canonical=True))
            body.add(1, "_c = cpu.csrs")
            body.add(1, f"_c.instret += {n}")
            body.add(1, f"if _t != {last_ft:#x}:")
            body.add(2, f"_c.cycle += {taken_total}")
            body.add(2, f"cpu.bus.tick({taken_total})")
            body.add(1, "else:")
            body.add(2, f"_c.cycle += {base_total}")
            body.add(2, f"cpu.bus.tick({base_total})")
            body.add(1, "cpu.pc = _t")
            body.add(1, "cpu.next_pc = _t")
            body.add(1, f"return {n}")
        else:
            # Plain or fallback final: the body already handled any
            # redirect; the straight exit lands on the fallthrough.
            end = f"{block.end_pc:#x}"
            body.extend(1, self._flush_lines(n, ctx.prefix[n], end))
            body.extend(1, self._chain_line(block, end))
            body.add(1, f"return {n}")

        body_text = "\n".join(body.lines)
        src = _Src()
        src.add(0, "def _tb(cpu, remaining):")
        src.add(1, "block.exec_count += 1")
        if self.hb:
            src.add(1, "for _h in HB:")
            src.add(2, "_h(cpu, block)")
        src.extend(1, self._bindings(body_text, direct=True))
        src.lines.append(body_text)
        return src.text()

    # -- fused self-loop shape ------------------------------------------

    def _emit_fused(self, block) -> str:
        ctx = Ctx(block, direct=True, fused=True, win=self.win)
        ops = block.ops
        n = len(ops)
        last_d = ops[-1][0]
        last_ft, last_base, last_taken = ops[-1][3], ops[-1][4], ops[-1][5]
        taken_total = ctx.prefix[n - 1] + last_taken
        base_total = ctx.prefix[n - 1] + last_base

        body = _Src()
        for i in range(n - 1):
            body.extend(0, EMITTERS[ops[i][1]](ctx, i))
        cond = BRANCH_CONDS[ops[-1][1]](ctx, last_d)
        body_text = "\n".join(body.lines)
        pure = "bload(" not in body_text and "bstore(" not in body_text
        if pure:
            return self._emit_fused_batched(
                block, body.lines, cond, n, taken_total, base_total, last_ft)
        return self._emit_fused_polling(
            block, body.lines, cond, n, taken_total, base_total, last_ft)

    def _fused_prologue(self, body_text: str) -> _Src:
        src = _Src()
        src.add(0, "def _tb(cpu, remaining):")
        src.extend(1, self._bindings(body_text, direct=True))
        src.add(1, "_c = cpu.csrs")
        src.add(1, "_tick = cpu.bus.tick")
        src.add(1, "_poll = cpu._interrupt_poll")
        src.add(1, "_rr = _c.raw_read")
        src.add(1, "_rw = _c.raw_write")
        src.add(1, "ret = 0")
        src.add(1, "cyc = 0")
        return src

    def _fused_polling_exit(self, src: _Src, indent: int, pc: int) -> None:
        src.add(indent, "_c.instret += ret")
        src.add(indent, "_c.cycle += cyc")
        src.add(indent, f"cpu.pc = {pc:#x}")
        src.add(indent, f"cpu.next_pc = {pc:#x}")
        src.add(indent, "return ret")

    def _emit_fused_polling(self, block, body_lines, cond, n,
                            taken_total, base_total, last_ft) -> str:
        """One iteration per interrupt poll — blocks touching memory
        (loads may read device time, stores may arm interrupts)."""
        start = block.start_pc
        src = self._fused_prologue("\n".join(body_lines))
        src.add(1, "while True:")
        src.extend(2, body_lines)
        src.add(2, f"if {cond}:")
        src.add(3, f"ret += {n}")
        src.add(3, f"cyc += {taken_total}")
        src.add(3, "block.exec_count += 1")
        src.add(3, f"_tick({taken_total})")
        # Budget first (the interpreter's run loop would stop without
        # another interrupt poll), then the interrupt check the next
        # step would otherwise perform.
        src.add(3, "if ret >= remaining:")
        self._fused_polling_exit(src, 4, start)
        src.add(3, "_mip = _poll()")
        src.add(3, f"_rw({_MIP:#x}, _mip)")
        src.add(3, f"if _mip and (_rr({_MSTATUS:#x}) & {_MSTATUS_MIE:#x}) "
                    f"and (_mip & _rr({_MIE:#x})):")
        self._fused_polling_exit(src, 4, start)
        src.add(3, "continue")
        src.add(2, f"ret += {n}")
        src.add(2, f"cyc += {base_total}")
        src.add(2, "block.exec_count += 1")
        src.add(2, f"_tick({base_total})")
        self._fused_polling_exit(src, 2, last_ft)
        return src.text()

    def _emit_fused_batched(self, block, body_lines, cond, n,
                            taken_total, base_total, last_ft) -> str:
        """Pure-ALU self-loop: batch iterations up to the timer horizon.

        With no memory or CSR access in the body, nothing inside the
        loop can arm, mask, or observe an interrupt source — only the
        machine timer can newly fire, at an iteration :func:`_horizon`
        computes exactly.  Polls (and the ``mip`` shadow writes they
        perform) between those points are unobservable and elided; the
        shadow is refreshed at the next poll, so it may lag by one batch
        across a run boundary (architectural ``mip`` reads always
        re-poll the devices).
        """
        start = block.start_pc
        src = self._fused_prologue("\n".join(body_lines))
        src.add(1, f"_timer = (_rr({_MSTATUS:#x}) & {_MSTATUS_MIE:#x}) "
                   f"and (_rr({_MIE:#x}) & 0x80)")
        src.add(1, "_safe = _batch_safe(cpu)")
        src.add(1, "while True:")
        src.add(2, f"_n = _horizon(cpu, remaining - ret, {n}, "
                   f"{taken_total}, _timer) if _safe else 1")
        src.add(2, "_it = 0")
        src.add(2, "while _it < _n:")
        src.add(3, "_it += 1")
        src.extend(3, body_lines)
        src.add(3, f"if {cond}:")
        src.add(4, "continue")
        # Branch fell through: account _it - 1 taken iterations plus
        # this not-taken one, exactly like the interpreter's exit.
        src.add(3, f"ret += _it * {n}")
        src.add(3, f"cyc += (_it - 1) * {taken_total} + {base_total}")
        src.add(3, "block.exec_count += _it")
        src.add(3, f"_tick((_it - 1) * {taken_total} + {base_total})")
        self._fused_polling_exit(src, 3, last_ft)
        src.add(2, f"ret += _n * {n}")
        src.add(2, f"cyc += _n * {taken_total}")
        src.add(2, "block.exec_count += _n")
        src.add(2, f"_tick(_n * {taken_total})")
        src.add(2, "if ret >= remaining:")
        self._fused_polling_exit(src, 3, start)
        src.add(2, "_mip = _poll()")
        src.add(2, f"_rw({_MIP:#x}, _mip)")
        src.add(2, f"if _mip and (_rr({_MSTATUS:#x}) & {_MSTATUS_MIE:#x}) "
                   f"and (_mip & _rr({_MIE:#x})):")
        self._fused_polling_exit(src, 3, start)
        return src.text()

    # -- multi-block trace shape ----------------------------------------

    def compile_trace(self, blocks):
        """Compile a chain of blocks into one specialized trace function.

        ``blocks`` is the member list from the backend's hot-chain walk:
        every member but the last ends in a pure fallthrough or a direct
        jal (its link write is emitted at the member boundary); the last
        member either ends in a conditional branch — rendered as a
        native loop when it targets the head (the common hot-loop form)
        or as a pair of exits otherwise — or is itself interior-shaped
        with a ``chain_pc`` leaving the trace.

        The exact-parity contract of the fused shape is kept at **every**
        member boundary: retire/cycle accounting and a bus tick for the
        completed member, then the budget check and the interrupt poll
        (with the raw-``mip`` shadow write) in the order the
        interpreter's run loop performs them, exiting with the pc parked
        on the next member's start so the run loop can take over.
        """
        if not self.direct or self.hb:
            raise CompileError(
                "trace shape requires direct mode without block hooks")
        if len(blocks) < 2 or len(blocks) > TRACE_MAX_BLOCKS:
            raise CompileError(f"unsupported trace length {len(blocks)}")
        src = self._emit_trace(blocks)
        namespace = self._trace_namespace(blocks)
        code = compile(src, f"<jit-trace:{blocks[0].start_pc:#x}>", "exec")
        exec(code, namespace)
        fn = namespace["_tb"]
        fn.__jit_source__ = src
        return fn

    def _trace_namespace(self, blocks) -> dict:
        namespace = self._base_namespace()
        offset = 0
        for m, block in enumerate(blocks):
            namespace[f"b_{m}"] = block
            for i, op in enumerate(block.ops):
                namespace[f"d_{offset + i}"] = op[0]
                namespace[f"x_{offset + i}"] = op[1]
            offset += len(block.ops)
        return namespace

    def _trace_boundary_exit(self, src: _Src, indent: int, pc: int,
                             chain_m: Optional[int]) -> None:
        """Flush accounting (cycles are already ticked), park the pc, and
        return — planting the chain link exactly when the interpreter
        would (the exiting member has this pc as its ``chain_pc``)."""
        src.add(indent, "_c.instret += ret")
        src.add(indent, "_c.cycle += cyc")
        src.add(indent, f"cpu.pc = {pc:#x}")
        src.add(indent, f"cpu.next_pc = {pc:#x}")
        if chain_m is not None and self.chain_enabled:
            src.add(indent, f"cpu._chain_from = b_{chain_m}")
        src.add(indent, "return ret")

    def _emit_trace_body(self, src: _Src, indent: int, ctx: Ctx, m: int,
                         block) -> None:
        """One member's body plus its retire/cycle/tick accounting.

        A trailing direct jal is not a template; its link write and
        taken-cycle cost are rendered here so the member completes
        exactly as the interpreter's redirect exit would.
        """
        ops = block.ops
        n = len(ops)
        src.add(indent, f"b_{m}.exec_count += 1")
        ends_jal = ops[-1][1] is sem.exec_jal
        body_n = n - 1 if ends_jal else n
        for i in range(body_n):
            src.extend(indent, EMITTERS[ops[i][1]](ctx, i))
        if ends_jal:
            d = ops[-1][0]
            src.extend(indent, ctx.w(d.rd, f"{ops[-1][3]:#x}",
                                     canonical=True))
            target = (ops[-1][2] + d.imm) & MASK
            cycles = ctx.prefix[n - 1] + (
                ops[-1][5] if target != ops[-1][3] else ops[-1][4])
        else:
            cycles = ctx.prefix[n]
        src.add(indent, f"ret += {n}")
        src.add(indent, f"cyc += {cycles}")
        src.add(indent, f"_tick({cycles})")

    def _emit_trace_checks(self, src: _Src, indent: int, pc: int,
                           chain_m: Optional[int]) -> None:
        """Budget check then interrupt poll, the run loop's boundary
        order, exiting to ``pc`` (the next member's start)."""
        src.add(indent, "if ret >= remaining:")
        self._trace_boundary_exit(src, indent + 1, pc, chain_m)
        src.add(indent, "_mip = _poll()")
        src.add(indent, f"_rw({_MIP:#x}, _mip)")
        src.add(indent, f"if _mip and (_rr({_MSTATUS:#x}) & "
                        f"{_MSTATUS_MIE:#x}) and (_mip & _rr({_MIE:#x})):")
        self._trace_boundary_exit(src, indent + 1, pc, chain_m)

    def _emit_trace(self, blocks) -> str:
        head = blocks[0]
        ctxs = []
        offset = 0
        for block in blocks:
            ctxs.append(Ctx(block, direct=True, fused=True, base=offset,
                            win=self.win))
            offset += len(block.ops)
        last = blocks[-1]
        last_ops = last.ops
        last_exec = last_ops[-1][1]
        branch_final = last_exec in BRANCH_CONDS
        looped = False
        if branch_final:
            last_d = last_ops[-1][0]
            target = (last_ops[-1][2] + last_d.imm) & MASK
            looped = target == head.start_pc
        indent = 2 if looped else 1

        body = _Src()
        for m, block in enumerate(blocks[:-1]):
            self._emit_trace_body(body, indent, ctxs[m], m, block)
            self._emit_trace_checks(body, indent, block.chain_pc, m)
        m = len(blocks) - 1
        if branch_final:
            ctx = ctxs[m]
            n = len(last_ops)
            body.add(indent, f"b_{m}.exec_count += 1")
            for i in range(n - 1):
                body.extend(indent, EMITTERS[last_ops[i][1]](ctx, i))
            cond = BRANCH_CONDS[last_exec](ctx, last_d)
            last_ft = last_ops[-1][3]
            base_total = ctx.prefix[n - 1] + last_ops[-1][4]
            taken_total = ctx.prefix[n - 1] + last_ops[-1][5]
            taken_cycles = taken_total if target != last_ft else base_total
            body.add(indent, f"if {cond}:")
            body.add(indent + 1, f"ret += {n}")
            body.add(indent + 1, f"cyc += {taken_cycles}")
            body.add(indent + 1, f"_tick({taken_cycles})")
            if looped:
                self._emit_trace_checks(body, indent + 1, head.start_pc,
                                        None)
                body.add(indent + 1, "continue")
            else:
                self._trace_boundary_exit(body, indent + 1, target, None)
            body.add(indent, f"ret += {n}")
            body.add(indent, f"cyc += {base_total}")
            body.add(indent, f"_tick({base_total})")
            self._trace_boundary_exit(body, indent, last_ft, None)
        else:
            # Straight trace: the final member exits to its chain_pc with
            # no boundary checks — the run loop polls before the next
            # step exactly as it would after an interpreted block.
            self._emit_trace_body(body, indent, ctxs[m], m, blocks[m])
            self._trace_boundary_exit(body, indent, blocks[m].chain_pc, m)

        src = self._fused_prologue("\n".join(body.lines))
        if looped:
            src.add(1, "while True:")
        src.lines.extend(body.lines)
        return src.text()

    # -- method (bookkeeping) shape -------------------------------------

    def _emit_method(self, block) -> str:
        ctx = Ctx(block, direct=False)
        ops = block.ops
        n = len(ops)
        body = _Src()
        for i in range(n):
            d, execute, pc, ft, base, taken = ops[i]
            body.add(2, f"cpu.pc = {pc:#x}")
            body.add(2, f"cpu._current = d_{i}")
            body.add(2, f"cpu.next_pc = {ft:#x}")
            if self.hi:
                body.add(2, "for _h in HI:")
                body.add(3, f"_h(cpu, d_{i}, {pc:#x})")
            emitter = EMITTERS.get(execute) or CONTROL_EMITTERS.get(execute)
            body.add(2, "try:")
            if emitter is not None:
                body.extend(3, emitter(ctx, i))
            else:
                body.add(3, f"x_{i}(cpu, d_{i})")
            body.add(2, "except Trap as _t:")
            body.add(3, f"cyc += {base}")
            body.add(3, "_pend = _t")
            body.add(3, "break")
            body.add(2, "except MachineExit:")
            body.add(3, f"cyc += {base}")
            body.add(3, "raise")
            body.add(2, "ret += 1")
            body.add(2, "_np = cpu.next_pc")
            body.add(2, "cpu.pc = _np")
            body.add(2, f"if _np != {ft:#x}:")
            body.add(3, f"cyc += {taken}")
            body.add(3, "break")
            body.add(2, f"cyc += {base}")
        body.add(2, "break")

        body_text = "\n".join(body.lines)
        src = _Src()
        src.add(0, "def _tb(cpu, remaining):")
        src.add(1, "block.exec_count += 1")
        if self.hb:
            src.add(1, "for _h in HB:")
            src.add(2, "_h(cpu, block)")
        src.extend(1, self._bindings(body_text, direct=False))
        src.add(1, "ret = 0")
        src.add(1, "cyc = 0")
        src.add(1, "_pend = None")
        src.add(1, "try:")
        src.add(2, "while True:")
        # body lines are already indented for the while loop; shift one
        # more level for the enclosing try.
        src.lines.extend("    " + line for line in body.lines)
        src.add(1, "finally:")
        src.add(2, "_c = cpu.csrs")
        src.add(2, "_c.instret += ret")
        src.add(2, "_c.cycle += cyc")
        src.add(2, "cpu.bus.tick(cyc)")
        src.add(1, "if _pend is not None:")
        src.add(2, "cpu._take_trap(_pend.cause, _pend.tval)")
        if self.chain_enabled and block.chain_pc is not None:
            src.add(1, f"elif cpu.pc == {block.chain_pc:#x}:")
            src.add(2, "cpu._chain_from = block")
        src.add(1, "return ret")
        return src.text()
