"""The ``compiled`` execution backend: hot-block tiering over the JIT.

Blocks start life interpreted; once a block's ``exec_count`` crosses the
tier threshold it is compiled by :class:`~repro.vp.jit.compiler.BlockCompiler`
and the compiled function is cached on the block together with the
specialization token it was generated for.  The token captures
everything the generated code folded in — the hook-table version, the
register-file shape, and whether block chaining is live — so any change
recompiles instead of executing stale assumptions.

Above the compiled tier sits **trace compilation**: a compiled block
that keeps re-executing with a statically known successor (a hot chain
edge, the same ``chain_pc`` mechanism block chaining uses) becomes the
head of a multi-block trace.  The backend walks the chain through the
TB cache, collects up to :data:`~repro.vp.jit.compiler.TRACE_MAX_BLOCKS`
template-covered members, and asks the compiler for one specialized
function with interior side exits.  Traces live on their head block and
are keyed on the same specialization token; a TB flush (fence.i, SMC,
clear-on-full) discards the member blocks wholesale, so stale trace
code can never run.

Fallback rules (documented in ``docs/performance.md``): an instruction
cache or a disabled translation-block cache turns compilation off
entirely and every block stays interpreted; a codegen failure blacklists
just that block (or trace head).  The tier split is observable through
:class:`JitStats` (``repro profile``'s tier report and the
``emulator_compiled`` bench section read it).
"""

from __future__ import annotations

from typing import List, Optional

from ...isa import semantics as sem
from ...isa.registers import RegisterFile
from ..backends import ExecutionBackend
from ..trap import MachineExit, Trap
from .compiler import (TRACE_MAX_BLOCKS, BlockCompiler, CompileError)
from .templates import BRANCH_CONDS, EMITTERS

__all__ = ["CompiledBackend", "JitStats", "DEFAULT_THRESHOLD",
           "DEFAULT_TRACE_THRESHOLD"]

#: Executions before a block is promoted to the compiled tier.  Small
#: enough that a hot loop compiles almost immediately, large enough that
#: translate-once/run-once code never pays the codegen cost.
DEFAULT_THRESHOLD = 8

#: Compiled-with-hot-chain-edge executions before a block is promoted to
#: a trace head.  Counted from the compiled promotion onward, so a block
#: must prove itself hot twice before the (larger) trace codegen runs.
DEFAULT_TRACE_THRESHOLD = 16


class JitStats:
    """Tier observability counters maintained by :class:`CompiledBackend`."""

    __slots__ = ("blocks_compiled", "compiled_retired", "interp_retired",
                 "compile_failures", "traces_compiled", "trace_retired",
                 "trace_failures")

    def __init__(self) -> None:
        self.blocks_compiled = 0
        #: Instructions retired by compiled functions / the interp tier.
        self.compiled_retired = 0
        self.interp_retired = 0
        self.compile_failures = 0
        #: Multi-block traces built / instructions they retired / chain
        #: walks that found an uncompilable shape.
        self.traces_compiled = 0
        self.trace_retired = 0
        self.trace_failures = 0

    def as_dict(self) -> dict:
        return {"blocks_compiled": self.blocks_compiled,
                "compiled_instructions": self.compiled_retired,
                "interp_instructions": self.interp_retired,
                "compile_failures": self.compile_failures,
                "traces_compiled": self.traces_compiled,
                "trace_instructions": self.trace_retired,
                "trace_failures": self.trace_failures}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JitStats({self.as_dict()})"


def _interior_ok(block) -> bool:
    """Whether ``block`` can sit in a trace with a successor after it:
    every body instruction is template-covered and the block ends in a
    pure fallthrough or a direct jal (whose link write the trace emits
    at the member boundary)."""
    ops = block.ops
    if block.chain_pc is None:
        return False
    if ops[-1][1] is sem.exec_jal:
        return all(op[1] in EMITTERS for op in ops[:-1])
    return all(op[1] in EMITTERS for op in ops)


def _terminal_ok(block) -> bool:
    """Whether ``block`` can terminate a trace with a conditional branch."""
    ops = block.ops
    return (ops[-1][1] in BRANCH_CONDS
            and all(op[1] in EMITTERS for op in ops[:-1]))


class CompiledBackend(ExecutionBackend):
    """Tiered execution: interpret cold blocks, JIT-compile hot ones,
    fuse hot chains into traces."""

    name = "compiled"

    def __init__(self, cpu, threshold: int = DEFAULT_THRESHOLD,
                 trace_threshold: int = DEFAULT_TRACE_THRESHOLD) -> None:
        super().__init__(cpu)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if trace_threshold < 1:
            raise ValueError(
                f"trace_threshold must be >= 1, got {trace_threshold}")
        self.threshold = threshold
        self.trace_threshold = trace_threshold
        self.stats = JitStats()
        self._token: Optional[tuple] = None
        self._compiler: Optional[BlockCompiler] = None
        self._compile_ok = False
        self._trace_ok = False
        self._no_compile: set = set()
        self._no_trace: set = set()

    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Recompute the specialization token (run start / hook change)."""
        cpu = self.cpu
        regs = cpu.regs
        direct_ok = type(regs) is RegisterFile and not regs.trace
        # An icache charges per-fetch penalties the generated code does
        # not model, and a disabled block cache never re-executes the
        # same TranslationBlock object — both force the interp tier.
        self._compile_ok = cpu.icache is None and cpu.block_cache_enabled
        token = (cpu.hooks.version, direct_ok, cpu.block_cache_enabled)
        if token != self._token:
            self._token = token
            self._compiler = BlockCompiler(
                cpu, chain_enabled=cpu.block_cache_enabled,
                direct_ok=direct_ok)
            self._no_compile.clear()
            self._no_trace.clear()
        # Traces are direct-shape only (no hooks of any kind: interior
        # side exits cannot replay per-block hook ordering).
        self._trace_ok = (self._compile_ok and self._compiler.direct
                          and not self._compiler.hb)

    def _step(self, remaining) -> int:
        cpu = self.cpu
        interrupt = cpu._pending_interrupt()
        if interrupt is not None:
            cpu._wfi_pending = False
            cpu._take_trap(interrupt, 0)
            return 0
        try:
            block = cpu._next_block()
        except Trap as trap:
            cpu._take_trap(trap.cause, trap.tval)
            return 0
        fn = block.compiled
        if fn is not None and block.compiled_version == self._token:
            trace = block.trace
            if trace is not None:
                if block.trace_token == self._token:
                    retired = trace(cpu, remaining)
                    self.stats.trace_retired += retired
                    return retired
                block.trace = None  # stale specialization; allow rebuild
            elif (self._trace_ok and block.chain_pc is not None
                    and block.start_pc not in self._no_trace):
                block.trace_heat += 1
                if block.trace_heat >= self.trace_threshold:
                    trace = self._compile_trace(block)
                    if trace is not None:
                        retired = trace(cpu, remaining)
                        self.stats.trace_retired += retired
                        return retired
            retired = fn(cpu, remaining)
            self.stats.compiled_retired += retired
            return retired
        if (self._compile_ok and block.exec_count + 1 >= self.threshold
                and block.start_pc not in self._no_compile):
            fn = self._compile(block)
            if fn is not None:
                retired = fn(cpu, remaining)
                self.stats.compiled_retired += retired
                return retired
        retired = self._interpret(block)
        self.stats.interp_retired += retired
        return retired

    def _compile(self, block):
        try:
            fn = self._compiler.compile(block)
        except (CompileError, SyntaxError, ValueError):
            self.stats.compile_failures += 1
            self._no_compile.add(block.start_pc)
            return None
        block.compiled = fn
        block.compiled_version = self._token
        self.stats.blocks_compiled += 1
        return fn

    # -- trace formation -----------------------------------------------

    def _trace_members(self, head) -> Optional[List]:
        """Walk hot chain edges from ``head`` to collect trace members.

        Returns the member list, or ``None`` for a *soft* miss — a
        successor not yet in the TB cache (the walk retries once it has
        been translated).  Raises :class:`CompileError` for structurally
        untraceable shapes, which blacklists the head.
        """
        if not _interior_ok(head):
            raise CompileError("trace head is not interior-shaped")
        cache = self.cpu._tb_cache
        members = [head]
        seen = {head.start_pc}
        pc = head.chain_pc
        while len(members) < TRACE_MAX_BLOCKS:
            nxt = cache.get(pc)
            if nxt is None:
                return None  # successor not translated yet; retry later
            if nxt.start_pc in seen:
                break  # chain folds back without a branch: stop here
            if _terminal_ok(nxt):
                members.append(nxt)
                return members
            if not _interior_ok(nxt):
                break  # jalr/system/untemplated end: trace stops before it
            members.append(nxt)
            seen.add(nxt.start_pc)
            pc = nxt.chain_pc
        if len(members) < 2:
            raise CompileError("no traceable successor")
        return members

    def _compile_trace(self, head):
        try:
            members = self._trace_members(head)
            if members is None:
                # Not a failure — reset the heat so the edge re-proves
                # itself once the successor block exists.
                head.trace_heat = 0
                return None
            fn = self._compiler.compile_trace(members)
        except (CompileError, SyntaxError, ValueError):
            self.stats.trace_failures += 1
            self._no_trace.add(head.start_pc)
            return None
        head.trace = fn
        head.trace_token = self._token
        for member in members:
            member.trace_member = True
        self.stats.traces_compiled += 1
        return fn

    # ------------------------------------------------------------------

    def _interpret(self, block) -> int:
        """One interpreted block execution — the warm-up tier.

        A verbatim mirror of :meth:`repro.vp.cpu.Cpu.step_block` after
        the interrupt poll and block fetch (which :meth:`_step` already
        performed); kept in lockstep with cpu.py by the backend parity
        suite.
        """
        cpu = self.cpu
        block.exec_count += 1
        hooks = cpu.hooks
        if hooks.block_exec:
            for hook in hooks.block_exec:
                hook(cpu, block)
        insn_hooks = hooks.insn_exec
        retired = 0
        cycles = 0
        if cpu.icache is not None:
            cycles += cpu.icache.penalty_for_lines(block.icache_lines)
        pending_trap: Optional[Trap] = None
        try:
            for decoded, execute, pc, fallthrough, base_cost, taken_cost \
                    in block.ops:
                cpu.pc = pc
                cpu._current = decoded
                cpu.next_pc = fallthrough
                if insn_hooks:
                    for hook in insn_hooks:
                        hook(cpu, decoded, pc)
                try:
                    execute(cpu, decoded)
                except Trap as trap:
                    cycles += base_cost
                    pending_trap = trap
                    break
                except MachineExit:
                    cycles += base_cost
                    raise
                retired += 1
                next_pc = cpu.next_pc
                cpu.pc = next_pc
                if next_pc != fallthrough:
                    cycles += taken_cost
                    break
                cycles += base_cost
        finally:
            csrs = cpu.csrs
            csrs.instret += retired
            csrs.cycle += cycles
            cpu.bus.tick(cycles)
        if pending_trap is not None:
            cpu._take_trap(pending_trap.cause, pending_trap.tval)
        elif cpu.block_cache_enabled and block.chain_pc == cpu.pc:
            cpu._chain_from = block
        return retired
