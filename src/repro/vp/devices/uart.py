"""A minimal memory-mapped UART.

Register map (word-aligned, matching the access-control demonstrator from
the Scale4Edge security analysis scenario):

====== ======== =======================================================
offset name     behaviour
====== ======== =======================================================
0x00   TXDATA   write: transmit low byte; read: 0 (always ready)
0x04   RXDATA   read: next received byte, or 0xFFFFFFFF if queue empty
0x08   STATUS   bit0 = TX ready (always 1), bit1 = RX data available
====== ======== =======================================================

Transmitted bytes accumulate in :attr:`tx_log`; the host feeds input with
:meth:`push_rx`.  The device also keeps a full access trace when
``trace=True`` — the non-invasive IO-access analysis of the MBMV 2019
paper is built on observing exactly these accesses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ..memory import Device
from ..trap import BusError

TXDATA = 0x00
RXDATA = 0x04
STATUS = 0x08
IE = 0x0C  # bit0: RX interrupt enable

STATUS_TX_READY = 0x1
STATUS_RX_AVAIL = 0x2

IE_RX = 0x1

#: Size of the device's MMIO window in bytes.
WINDOW_SIZE = 0x100


class Uart(Device):
    def __init__(self, trace: bool = False) -> None:
        self.tx_log = bytearray()
        self._rx_queue: Deque[int] = deque()
        self.interrupt_enable = 0
        self.trace = trace
        #: (kind, offset, value) tuples, kind in {"load", "store"}.
        self.access_log: List[Tuple[str, int, int]] = []

    def interrupt_pending(self) -> bool:
        """RX interrupt: enabled and data waiting."""
        return bool(self.interrupt_enable & IE_RX) and bool(self._rx_queue)

    def push_rx(self, data: bytes) -> None:
        """Queue host-to-target bytes."""
        self._rx_queue.extend(data)

    @property
    def output(self) -> str:
        """Transmitted bytes decoded as text (errors replaced)."""
        return self.tx_log.decode("utf-8", errors="replace")

    def load(self, offset: int, width: int) -> int:
        if offset == RXDATA:
            value = self._rx_queue.popleft() if self._rx_queue else 0xFFFFFFFF
        elif offset == STATUS:
            value = STATUS_TX_READY | (STATUS_RX_AVAIL if self._rx_queue else 0)
        elif offset == IE:
            value = self.interrupt_enable
        elif offset == TXDATA:
            value = 0
        else:
            raise BusError(offset, f"UART load from unknown register {offset:#x}")
        if self.trace:
            self.access_log.append(("load", offset, value))
        return value

    def store(self, offset: int, width: int, value: int) -> None:
        if offset == TXDATA:
            self.tx_log.append(value & 0xFF)
        elif offset == IE:
            self.interrupt_enable = value & IE_RX
        elif offset in (RXDATA, STATUS):
            pass  # writes to read-only registers are ignored
        else:
            raise BusError(offset, f"UART store to unknown register {offset:#x}")
        if self.trace:
            self.access_log.append(("store", offset, value))
