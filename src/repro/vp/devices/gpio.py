"""A simple GPIO port.

Register map:

====== ======= ====================================================
offset name    behaviour
====== ======= ====================================================
0x00   OUT     read/write: the 32 output pins
0x04   IN      read: the 32 input pins (set by the host testbench)
0x08   SET     write: OUT |= value (atomic set)
0x0C   CLEAR   write: OUT &= ~value (atomic clear)
====== ======= ====================================================

Every change of the output pins is appended to :attr:`out_history`, so
testbenches (and the access-control demonstrator's lock actuator) can
assert on the *sequence* of pin states, not just the final one.
"""

from __future__ import annotations

from typing import List

from ..memory import Device
from ..trap import BusError

OUT = 0x00
IN = 0x04
SET = 0x08
CLEAR = 0x0C

WINDOW_SIZE = 0x100

_U32 = 0xFFFFFFFF


class Gpio(Device):
    def __init__(self) -> None:
        self.out = 0
        self.inputs = 0
        self.out_history: List[int] = []

    def _update_out(self, value: int) -> None:
        value &= _U32
        if value != self.out:
            self.out = value
            self.out_history.append(value)

    def set_inputs(self, value: int) -> None:
        """Host-side: drive the input pins."""
        self.inputs = value & _U32

    def pin(self, index: int) -> bool:
        """Current state of output pin ``index``."""
        return bool(self.out & (1 << index))

    def load(self, offset: int, width: int) -> int:
        if offset == OUT:
            return self.out
        if offset == IN:
            return self.inputs
        if offset in (SET, CLEAR):
            return 0
        raise BusError(offset, f"GPIO load from unknown register {offset:#x}")

    def store(self, offset: int, width: int, value: int) -> None:
        if offset == OUT:
            self._update_out(value)
        elif offset == SET:
            self._update_out(self.out | value)
        elif offset == CLEAR:
            self._update_out(self.out & ~value)
        elif offset == IN:
            pass  # input pins are read-only from the target side
        else:
            raise BusError(offset,
                           f"GPIO store to unknown register {offset:#x}")
