"""Core-local interruptor: machine timer (mtime/mtimecmp) and software IRQ.

Register map (subset of the SiFive CLINT layout, single hart):

========== ========== ===========================
offset     name       width
========== ========== ===========================
0x0000     MSIP       32-bit software interrupt
0x4000     MTIMECMP   64-bit (lo at +0, hi at +4)
0xBFF8     MTIME      64-bit (lo at +0, hi at +4)
========== ========== ===========================

``mtime`` advances with CPU cycles via :meth:`tick`.  The machine polls
:meth:`pending_interrupts` between translation blocks and reflects the
result into ``mip``.
"""

from __future__ import annotations

from ..memory import Device
from ..trap import BusError
from ...isa import csr as csrdef

MSIP = 0x0000
MTIMECMP_LO = 0x4000
MTIMECMP_HI = 0x4004
MTIME_LO = 0xBFF8
MTIME_HI = 0xBFFC

WINDOW_SIZE = 0x10000

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF


class Clint(Device):
    def __init__(self) -> None:
        self.mtime = 0
        self.mtimecmp = _U64  # no timer interrupt until armed
        self.msip = 0

    def tick(self, cycles: int) -> None:
        self.mtime = (self.mtime + cycles) & _U64

    def pending_interrupts(self) -> int:
        """mip bits this device asserts right now."""
        pending = 0
        if self.msip & 1:
            pending |= csrdef.MIE_MSIE
        if self.mtime >= self.mtimecmp:
            pending |= csrdef.MIE_MTIE
        return pending

    def cycles_until_timer(self) -> int:
        """Cycles until the timer fires (0 if already pending).

        Used by WFI to fast-forward simulated time instead of spinning.
        """
        if self.mtime >= self.mtimecmp:
            return 0
        return self.mtimecmp - self.mtime

    def load(self, offset: int, width: int) -> int:
        if offset == MSIP:
            return self.msip
        if offset == MTIMECMP_LO:
            return self.mtimecmp & _U32
        if offset == MTIMECMP_HI:
            return (self.mtimecmp >> 32) & _U32
        if offset == MTIME_LO:
            return self.mtime & _U32
        if offset == MTIME_HI:
            return (self.mtime >> 32) & _U32
        raise BusError(offset, f"CLINT load from unknown register {offset:#x}")

    def store(self, offset: int, width: int, value: int) -> None:
        value &= _U32
        if offset == MSIP:
            self.msip = value & 1
        elif offset == MTIMECMP_LO:
            self.mtimecmp = (self.mtimecmp & ~_U32) | value
        elif offset == MTIMECMP_HI:
            self.mtimecmp = (self.mtimecmp & _U32) | (value << 32)
        elif offset == MTIME_LO:
            self.mtime = (self.mtime & ~_U32) | value
        elif offset == MTIME_HI:
            self.mtime = (self.mtime & _U32) | (value << 32)
        else:
            raise BusError(offset, f"CLINT store to unknown register {offset:#x}")
