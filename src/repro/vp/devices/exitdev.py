"""Test-finisher device (HTIF ``tohost`` style).

A single word register: writing ``(code << 1) | 1`` terminates simulation
with exit code ``code``.  Writing 1 therefore means "pass".  This is how
bare-metal test binaries signal completion — the fault-injection campaign
classifies runs by whether and how this register gets written.
"""

from __future__ import annotations

from ..memory import Device
from ..trap import BusError, MachineExit

WINDOW_SIZE = 0x8

TOHOST = 0x0


class ExitDevice(Device):
    def __init__(self) -> None:
        self.value = 0

    def load(self, offset: int, width: int) -> int:
        if offset == TOHOST:
            return self.value
        raise BusError(offset, "exit device load from unknown register")

    def store(self, offset: int, width: int, value: int) -> None:
        if offset != TOHOST:
            raise BusError(offset, "exit device store to unknown register")
        self.value = value
        if value & 1:
            raise MachineExit(value >> 1)
