"""Memory-mapped peripherals of the virtual prototype."""

from .clint import Clint
from .exitdev import ExitDevice
from .gpio import Gpio
from .uart import Uart

__all__ = ["Clint", "ExitDevice", "Gpio", "Uart"]
