"""Physical memory and the system bus.

The bus dispatches physical addresses to devices.  Every device implements
the small :class:`Device` protocol (``load``/``store`` on offsets within its
window).  :class:`Ram` is the ordinary byte-addressable memory; MMIO
peripherals live in :mod:`repro.vp.devices`.

:class:`Ram` additionally tracks *dirty pages* — the page-granular set of
regions written since the last :meth:`Ram.clear_dirty`.  The machine
checkpoint engine (:meth:`repro.vp.machine.Machine.snapshot`) uses this to
build delta snapshots and O(dirty) restores instead of copying the whole
RAM image per checkpoint.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple

from .trap import BusError

_WIDTH_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}

#: Bound little-endian (un)packers for the two multi-byte access widths.
#: Shared by :class:`Ram`, the CPU's RAM fast path, and the JIT memory
#: templates — one :class:`struct.Struct` call replaces a bytearray
#: slice plus ``int.from_bytes``/``to_bytes`` on every aligned access.
UNPACK_WORD = struct.Struct("<I").unpack_from
UNPACK_HALF = struct.Struct("<H").unpack_from
PACK_WORD = struct.Struct("<I").pack_into
PACK_HALF = struct.Struct("<H").pack_into

#: Default dirty-tracking page size in bytes.  Small enough that short
#: campaign programs dirty a handful of pages, large enough that the
#: tracking set stays tiny for memory-heavy workloads.
DEFAULT_PAGE_SIZE = 256


class Device:
    """Protocol for bus targets.  Offsets are relative to the mapping base."""

    def load(self, offset: int, width: int) -> int:
        raise NotImplementedError

    def store(self, offset: int, width: int, value: int) -> None:
        raise NotImplementedError

    def tick(self, cycles: int) -> None:
        """Advance device-local time; default is stateless."""


class Ram(Device):
    """Flat little-endian RAM backed by a bytearray, with dirty-page
    tracking for delta checkpoints.

    Every mutating entry point (:meth:`store`, :meth:`write_bytes`,
    :meth:`fill`) records the touched page indices in the dirty set;
    :meth:`dirty_pages` / :meth:`clear_dirty` let checkpoint code copy
    only what changed since the last snapshot or restore.  The restore
    helpers :meth:`write_page` / :meth:`load_image` intentionally bypass
    dirty marking — they re-establish a known-clean state and the caller
    clears the set afterwards.
    """

    def __init__(self, size: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if size <= 0 or size % 4:
            raise ValueError(f"RAM size must be a positive multiple of 4, got {size}")
        if page_size < 4 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a power of two >= 4, got {page_size}")
        # Shrink the page to fit small RAMs (size is a multiple of 4, so
        # this always terminates at a valid power of two).
        while size % page_size:
            page_size >>= 1
        self.size = size
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self.data = bytearray(size)
        self._dirty: Set[int] = set()

    # -- dirty-page tracking -------------------------------------------

    @property
    def page_count(self) -> int:
        return self.size >> self._page_shift

    def dirty_pages(self) -> Set[int]:
        """Pages written since the last :meth:`clear_dirty` (a copy)."""
        return set(self._dirty)

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def page_bytes(self, index: int) -> bytes:
        """Current contents of page ``index``."""
        start = index << self._page_shift
        return bytes(self.data[start:start + self.page_size])

    def write_page(self, index: int, blob: bytes) -> None:
        """Overwrite page ``index`` *without* marking it dirty.

        Checkpoint-restore only: the caller is re-establishing a known
        state and resets the dirty set itself.
        """
        start = index << self._page_shift
        self.data[start:start + self.page_size] = blob

    def load_image(self, blob: bytes) -> None:
        """Replace the whole RAM image *without* marking pages dirty
        (checkpoint-restore helper, see :meth:`write_page`)."""
        self.data[:] = blob

    # -- device protocol -----------------------------------------------

    def load(self, offset: int, width: int) -> int:
        if offset < 0 or offset + width > self.size:
            raise BusError(offset, f"RAM load beyond size {self.size:#x}")
        if width == 4:
            return UNPACK_WORD(self.data, offset)[0]
        if width == 1:
            return self.data[offset]
        return UNPACK_HALF(self.data, offset)[0]

    def store(self, offset: int, width: int, value: int) -> None:
        if offset < 0 or offset + width > self.size:
            raise BusError(offset, f"RAM store beyond size {self.size:#x}")
        if width == 4:
            PACK_WORD(self.data, offset, value & 0xFFFFFFFF)
        elif width == 1:
            self.data[offset] = value & 0xFF
        else:
            PACK_HALF(self.data, offset, value & 0xFFFF)
        shift = self._page_shift
        first = offset >> shift
        self._dirty.add(first)
        last = (offset + width - 1) >> shift
        if last != first:  # unaligned store straddling a page boundary
            self._dirty.add(last)

    def write_bytes(self, offset: int, blob: bytes) -> None:
        """Bulk image load (program loader, fault injection patches)."""
        if offset < 0 or offset + len(blob) > self.size:
            raise BusError(offset, "RAM image beyond size")
        self.data[offset:offset + len(blob)] = blob
        if blob:
            shift = self._page_shift
            self._dirty.update(range(offset >> shift,
                                     ((offset + len(blob) - 1) >> shift) + 1))

    def read_bytes(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.size:
            raise BusError(offset, "RAM read beyond size")
        return bytes(self.data[offset:offset + length])

    def fill(self, value: int = 0) -> None:
        # Mutate in place: the CPU's RAM fast path caches a reference to
        # ``self.data``, so the buffer object's identity must be stable
        # for the lifetime of the Ram (only the bus mapping may change it).
        self.data[:] = bytes([value & 0xFF]) * self.size
        self._dirty.update(range(self.page_count))


class SystemBus:
    """Maps address windows to devices and routes aligned accesses.

    Alignment is checked by the CPU (which knows whether to raise a
    misaligned-load or misaligned-store trap); the bus only validates
    mapping and range.
    """

    def __init__(self) -> None:
        self._regions: List[Tuple[int, int, Device]] = []
        #: Sorted region base addresses, parallel to ``_regions`` — the
        #: bisect key for :meth:`device_at`.
        self._bases: List[int] = []
        #: Devices that actually override :meth:`Device.tick` — the bus
        #: skips the no-op base implementations on the per-block tick.
        self._tickable: List[Device] = []
        #: Topology generation, bumped on every :meth:`attach` /
        #: :meth:`replace`.  The CPU compares this against the version it
        #: cached alongside its RAM fast-path window, so swapping a fault
        #: wrapper in front of RAM instantly disables direct-buffer access.
        self.version = 0

    def _rebuild_tickable(self) -> None:
        self._tickable = [
            device for _base, _size, device in self._regions
            if type(device).tick is not Device.tick
        ]

    def attach(self, base: int, size: int, device: Device) -> None:
        """Map ``device`` at ``[base, base+size)``.  Overlaps are rejected."""
        end = base + size
        for other_base, other_size, other in self._regions:
            if base < other_base + other_size and other_base < end:
                raise ValueError(
                    f"mapping {base:#x}..{end:#x} overlaps existing "
                    f"{other_base:#x}..{other_base + other_size:#x}"
                )
        self._regions.append((base, size, device))
        self._regions.sort(key=lambda region: region[0])
        self._bases = [region_base for region_base, _size, _dev in self._regions]
        self._rebuild_tickable()
        self.version += 1

    def replace(self, base: int, device: Device) -> Device:
        """Swap the device mapped at exactly ``base``; returns the old one.

        Used by the fault injector to interpose fault wrappers around RAM
        without rebuilding the machine.
        """
        for i, (region_base, size, old) in enumerate(self._regions):
            if region_base == base:
                self._regions[i] = (region_base, size, device)
                self._rebuild_tickable()
                self.version += 1
                return old
        raise ValueError(f"no device mapped at {base:#x}")

    def device_at(self, addr: int) -> Tuple[int, Device]:
        """Resolve (base, device) for ``addr``; raises BusError if unmapped.

        Regions are disjoint and ``_bases`` is sorted, so the rightmost
        base <= addr is the only candidate — one bisect instead of a
        linear scan on every non-RAM-fast-path access.
        """
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            base, size, device = self._regions[i]
            if addr - base < size:
                return base, device
        raise BusError(addr)

    def load(self, addr: int, width: int) -> int:
        base, device = self.device_at(addr)
        return device.load(addr - base, width)

    def store(self, addr: int, width: int, value: int) -> None:
        base, device = self.device_at(addr)
        device.store(addr - base, width, value)

    def tick(self, cycles: int) -> None:
        for device in self._tickable:
            device.tick(cycles)

    @property
    def regions(self) -> List[Tuple[int, int, Device]]:
        return list(self._regions)

    def ram(self) -> Optional["Ram"]:
        """The first mapped RAM device, if any (convenience for loaders)."""
        for _base, _size, device in self._regions:
            if isinstance(device, Ram):
                return device
        return None
