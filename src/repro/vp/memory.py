"""Physical memory and the system bus.

The bus dispatches physical addresses to devices.  Every device implements
the small :class:`Device` protocol (``load``/``store`` on offsets within its
window).  :class:`Ram` is the ordinary byte-addressable memory; MMIO
peripherals live in :mod:`repro.vp.devices`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .trap import BusError

_WIDTH_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}


class Device:
    """Protocol for bus targets.  Offsets are relative to the mapping base."""

    def load(self, offset: int, width: int) -> int:
        raise NotImplementedError

    def store(self, offset: int, width: int, value: int) -> None:
        raise NotImplementedError

    def tick(self, cycles: int) -> None:
        """Advance device-local time; default is stateless."""


class Ram(Device):
    """Flat little-endian RAM backed by a bytearray."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % 4:
            raise ValueError(f"RAM size must be a positive multiple of 4, got {size}")
        self.size = size
        self.data = bytearray(size)

    def load(self, offset: int, width: int) -> int:
        if offset < 0 or offset + width > self.size:
            raise BusError(offset, f"RAM load beyond size {self.size:#x}")
        return int.from_bytes(self.data[offset:offset + width], "little")

    def store(self, offset: int, width: int, value: int) -> None:
        if offset < 0 or offset + width > self.size:
            raise BusError(offset, f"RAM store beyond size {self.size:#x}")
        self.data[offset:offset + width] = (value & _WIDTH_MASKS[width]).to_bytes(
            width, "little"
        )

    def write_bytes(self, offset: int, blob: bytes) -> None:
        """Bulk image load (program loader, fault injection patches)."""
        if offset < 0 or offset + len(blob) > self.size:
            raise BusError(offset, "RAM image beyond size")
        self.data[offset:offset + len(blob)] = blob

    def read_bytes(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.size:
            raise BusError(offset, "RAM read beyond size")
        return bytes(self.data[offset:offset + length])

    def fill(self, value: int = 0) -> None:
        self.data = bytearray([value & 0xFF]) * 0  # placate linters
        self.data = bytearray([value & 0xFF] * self.size)


class SystemBus:
    """Maps address windows to devices and routes aligned accesses.

    Alignment is checked by the CPU (which knows whether to raise a
    misaligned-load or misaligned-store trap); the bus only validates
    mapping and range.
    """

    def __init__(self) -> None:
        self._regions: List[Tuple[int, int, Device]] = []
        #: Devices that actually override :meth:`Device.tick` — the bus
        #: skips the no-op base implementations on the per-block tick.
        self._tickable: List[Device] = []

    def _rebuild_tickable(self) -> None:
        self._tickable = [
            device for _base, _size, device in self._regions
            if type(device).tick is not Device.tick
        ]

    def attach(self, base: int, size: int, device: Device) -> None:
        """Map ``device`` at ``[base, base+size)``.  Overlaps are rejected."""
        end = base + size
        for other_base, other_size, other in self._regions:
            if base < other_base + other_size and other_base < end:
                raise ValueError(
                    f"mapping {base:#x}..{end:#x} overlaps existing "
                    f"{other_base:#x}..{other_base + other_size:#x}"
                )
        self._regions.append((base, size, device))
        self._regions.sort(key=lambda region: region[0])
        self._rebuild_tickable()

    def replace(self, base: int, device: Device) -> Device:
        """Swap the device mapped at exactly ``base``; returns the old one.

        Used by the fault injector to interpose fault wrappers around RAM
        without rebuilding the machine.
        """
        for i, (region_base, size, old) in enumerate(self._regions):
            if region_base == base:
                self._regions[i] = (region_base, size, device)
                self._rebuild_tickable()
                return old
        raise ValueError(f"no device mapped at {base:#x}")

    def device_at(self, addr: int) -> Tuple[int, Device]:
        """Resolve (base, device) for ``addr``; raises BusError if unmapped."""
        for base, size, device in self._regions:
            if base <= addr < base + size:
                return base, device
        raise BusError(addr)

    def load(self, addr: int, width: int) -> int:
        base, device = self.device_at(addr)
        return device.load(addr - base, width)

    def store(self, addr: int, width: int, value: int) -> None:
        base, device = self.device_at(addr)
        device.store(addr - base, width, value)

    def tick(self, cycles: int) -> None:
        for device in self._tickable:
            device.tick(cycles)

    @property
    def regions(self) -> List[Tuple[int, int, Device]]:
        return list(self._regions)

    def ram(self) -> Optional["Ram"]:
        """The first mapped RAM device, if any (convenience for loaders)."""
        for _base, _size, device in self._regions:
            if isinstance(device, Ram):
                return device
        return None
