"""Execution tracing plugin.

Produces an instruction-level trace (pc, disassembly, register writes,
memory effects) with an optional bounded ring buffer — the VP equivalent
of ``qemu -d in_asm,exec``.  Used interactively for debugging and by the
lockstep comparator's divergence reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from ..isa.disasm import disassemble
from ..isa.registers import gpr_name
from .plugins import Plugin


@dataclass
class TraceEntry:
    """One executed instruction."""

    index: int
    pc: int
    word: int
    text: str

    def __str__(self) -> str:
        return f"{self.index:>8}  {self.pc:#010x}  {self.word:08x}  {self.text}"


class ExecutionTracer(Plugin):
    """Records every executed instruction.

    ``limit`` bounds memory use: only the most recent ``limit`` entries
    are retained (``None`` keeps the complete trace).
    """

    name = "tracer"

    def __init__(self, limit: Optional[int] = 10_000) -> None:
        self.limit = limit
        self.entries: Deque[TraceEntry] = deque(maxlen=limit)
        self.count = 0

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.entries.append(TraceEntry(
            index=self.count,
            pc=pc,
            word=decoded.word,
            text=disassemble(decoded, pc=pc),
        ))
        self.count += 1

    def tail(self, count: int = 20) -> List[TraceEntry]:
        """The last ``count`` executed instructions."""
        entries = list(self.entries)
        return entries[-count:]

    def render(self, count: int = 20) -> str:
        return "\n".join(str(entry) for entry in self.tail(count))

    def clear(self) -> None:
        self.entries.clear()
        self.count = 0


class RegisterWatch(Plugin):
    """Records every change of selected registers as (insn index, value).

    Watches are evaluated *before* each instruction executes, so the entry
    records the instruction index at which the new value became visible.
    """

    name = "register-watch"

    def __init__(self, registers: Iterable[int]) -> None:
        self.registers = sorted(set(registers))
        self.history = {reg: [] for reg in self.registers}
        self._last = {reg: None for reg in self.registers}
        self._index = 0

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        for reg in self.registers:
            value = cpu.regs.raw_read(reg)
            if value != self._last[reg]:
                self.history[reg].append((self._index, value))
                self._last[reg] = value
        self._index += 1

    def render(self) -> str:
        lines = []
        for reg in self.registers:
            changes = ", ".join(f"@{i}={v:#x}" for i, v in self.history[reg])
            lines.append(f"{gpr_name(reg)}: {changes}")
        return "\n".join(lines)
