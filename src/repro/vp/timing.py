"""Micro-architectural timing model shared by the VP and the WCET analysis.

The model assigns each instruction a base cost by operation class plus a
taken-penalty for redirecting control flow, approximating a simple in-order
edge core (single-issue, no cache modelling — memory latencies are folded
into the load/store class costs).

The same object answers two questions:

* :meth:`actual_cost` — cycles consumed by a dynamic instance (the VP's
  cycle counter), where branch outcome is known, and
* :meth:`worst_cost` — an upper bound independent of outcome (the static
  WCET analysis).

Because ``worst_cost(d) >= actual_cost(d, taken)`` holds for every
instruction by construction, any WCET bound computed from ``worst_cost``
dominates every observed run on the same VP — the central invariant the QTA
experiments check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.spec import Decoded, InstructionSpec

#: Operation classes the model distinguishes.
CLASS_ALU = "alu"
CLASS_MUL = "mul"
CLASS_DIV = "div"
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"
CLASS_JUMP = "jump"
CLASS_CSR = "csr"
CLASS_SYSTEM = "system"

_DIV_NAMES = frozenset({"div", "divu", "rem", "remu"})
_MUL_NAMES = frozenset({"mul", "mulh", "mulhsu", "mulhu"})


def classify(spec: InstructionSpec) -> str:
    """Map an instruction spec to its timing class."""
    if spec.is_branch:
        return CLASS_BRANCH
    if spec.is_jump:
        return CLASS_JUMP
    if spec.reads_mem:
        return CLASS_LOAD
    if spec.writes_mem:
        return CLASS_STORE
    if spec.name in _DIV_NAMES:
        return CLASS_DIV
    if spec.name in _MUL_NAMES:
        return CLASS_MUL
    if spec.module == "Zicsr":
        return CLASS_CSR
    if spec.is_system:
        return CLASS_SYSTEM
    return CLASS_ALU


@dataclass
class TimingModel:
    """Per-class cycle costs plus the taken-redirect penalty.

    The defaults model a small in-order pipeline: single-cycle ALU,
    early-out 3-cycle multiplier, 34-cycle iterative divider, 2-cycle
    memory, and a 2-cycle refetch penalty on taken control transfers.
    """

    class_costs: Dict[str, int] = field(default_factory=lambda: {
        CLASS_ALU: 1,
        CLASS_MUL: 3,
        CLASS_DIV: 34,
        CLASS_LOAD: 2,
        CLASS_STORE: 2,
        CLASS_BRANCH: 1,
        CLASS_JUMP: 1,
        CLASS_CSR: 1,
        CLASS_SYSTEM: 1,
    })
    taken_penalty: int = 2

    def __post_init__(self) -> None:
        for name, cost in self.class_costs.items():
            if cost < 1:
                raise ValueError(f"class {name!r} cost must be >= 1, got {cost}")
        if self.taken_penalty < 0:
            raise ValueError("taken penalty must be non-negative")
        # Per-spec cache: specs are interned per table so id() is stable.
        self._base_cache: Dict[int, int] = {}

    def base_cost(self, d: Decoded) -> int:
        """Cost excluding any control-transfer penalty."""
        key = id(d.spec)
        cached = self._base_cache.get(key)
        if cached is None:
            cached = self.class_costs[classify(d.spec)]
            self._base_cache[key] = cached
        return cached

    def actual_cost(self, d: Decoded, redirected: bool) -> int:
        """Cycles for a dynamic instance; ``redirected`` = pc was changed."""
        cost = self.base_cost(d)
        if redirected:
            cost += self.taken_penalty
        return cost

    def worst_cost(self, d: Decoded) -> int:
        """Outcome-independent upper bound on :meth:`actual_cost`."""
        cost = self.base_cost(d)
        if d.spec.is_branch or d.spec.is_jump:
            cost += self.taken_penalty
        return cost
