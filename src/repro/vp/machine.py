"""The full-system virtual prototype: CPU + bus + peripherals.

Default memory map (a typical small RISC-V edge platform):

=============== ============ =====================================
base            size         device
=============== ============ =====================================
``0x0010_0000`` 8            test finisher (``tohost``-style exit)
``0x0200_0000`` 64 KiB       CLINT (msip, mtime, mtimecmp)
``0x1000_0000`` 256 B        UART
``0x8000_0000`` configurable RAM
=============== ============ =====================================

A :class:`Machine` is the top-level object users interact with: load a
program, register plugins, call :meth:`run`, inspect the result and the
UART output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa import csr as csrdef
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR
from .backends import create_backend
from .cpu import Cpu, RunResult, STOP_EXIT, STOP_MAX_INSNS
from .devices.clint import Clint, WINDOW_SIZE as CLINT_SIZE
from .devices.exitdev import ExitDevice, WINDOW_SIZE as EXIT_SIZE
from .devices.gpio import Gpio, WINDOW_SIZE as GPIO_SIZE
from .devices.uart import Uart, WINDOW_SIZE as UART_SIZE
from .icache import ICache, ICacheConfig
from .memory import Ram, SystemBus
from .plugins import Plugin
from .timing import TimingModel
from .trap import MachineExit, UnhandledTrap

RAM_BASE = 0x8000_0000
UART_BASE = 0x1000_0000
GPIO_BASE = 0x1000_1000
CLINT_BASE = 0x0200_0000
EXIT_BASE = 0x0010_0000

DEFAULT_RAM_SIZE = 4 * 1024 * 1024

STOP_UNHANDLED_TRAP = "unhandled_trap"

# Linux-flavoured syscall numbers honoured by the semihosting ecall handler.
SYSCALL_WRITE = 64
SYSCALL_EXIT = 93


@dataclass
class MachineSnapshot:
    """A complete machine checkpoint (see :meth:`Machine.snapshot`).

    Captured: CPU architectural state (pc, GPRs, FPRs, CSRs), the RAM
    image, and every device's guest-visible state — CLINT timer
    registers, UART TX log / RX queue / interrupt enable, GPIO pins
    *including* :attr:`~repro.vp.devices.gpio.Gpio.out_history`, and the
    exit device's value.

    RAM is stored either as a **full image** (``ram`` set, ``parent``
    ``None``) or as a **delta**: only the pages dirtied since ``parent``
    was taken (``ram_pages`` maps page index -> page bytes).  Deltas form
    a chain back to a full-image root; :meth:`page_bytes` resolves one
    page through the chain and :meth:`materialize_ram` rebuilds the whole
    image.  The checkpoint engine uses delta chains so that snapshotting
    every fault trigger point costs O(pages written), not O(RAM).

    Intentionally excluded (reconstructed or deliberately reset on
    :meth:`Machine.restore`):

    * the translation-block cache and icache *contents* — pure caches,
      flushed/cold-reset on restore and rebuilt on demand;
    * registered plugins and their internal state — structural, not
      architectural;
    * register/CSR access-trace sets and the UART ``access_log`` —
      measurement state owned by the coverage/analysis tooling;
    * structural fault-injection wrappers (stuck-at register files,
      wrapped RAM) — a snapshot cannot undo object replacement.
    """

    pc: int
    entry: int
    regs: tuple
    fregs: tuple
    csrs: dict
    ram: Optional[bytes]
    clint: tuple
    uart: tuple
    gpio: tuple
    exit_value: int
    #: Delta-chain fields (full-image snapshots: all at their defaults).
    ram_pages: Optional[dict] = None
    parent: Optional["MachineSnapshot"] = None
    page_size: int = 0
    depth: int = 0

    def page_bytes(self, index: int) -> bytes:
        """Contents of RAM page ``index`` in this snapshot's state,
        resolved through the delta chain."""
        node = self
        while node.ram is None:
            blob = node.ram_pages.get(index)
            if blob is not None:
                return blob
            node = node.parent
        start = index * node.page_size
        return node.ram[start:start + node.page_size]

    def materialize_ram(self) -> bytes:
        """The full RAM image for this snapshot (chain flattened)."""
        if self.ram is not None:
            return self.ram
        chain = []
        node = self
        while node.ram is None:
            chain.append(node)
            node = node.parent
        image = bytearray(node.ram)
        size = node.page_size
        for delta in reversed(chain):  # root-most delta first
            for index, blob in delta.ram_pages.items():
                image[index * size:index * size + size] = blob
        return bytes(image)


@dataclass
class MachineConfig:
    """Construction parameters for a :class:`Machine`."""

    isa: IsaConfig = field(default_factory=lambda: RV32IMC_ZICSR)
    ram_size: int = DEFAULT_RAM_SIZE
    timing: Optional[TimingModel] = None
    trace_registers: bool = False
    block_cache_enabled: bool = True
    #: Translation-cache block cap: when the cache holds this many blocks
    #: the next miss flushes it wholesale (clear-on-full eviction), so
    #: long-running campaigns cannot grow it without limit.  ``None``
    #: disables the cap.
    tb_cache_max_blocks: Optional[int] = 4096
    semihosting: bool = True  # handle exit/write ecalls in the machine
    icache: Optional["ICacheConfig"] = None  # fetch-cache model, off by default
    #: Execution backend: ``fastpath`` (default), ``interp``, or
    #: ``compiled`` (the tiered template JIT, see docs/performance.md).
    backend: str = "fastpath"
    #: Block executions before the ``compiled`` backend promotes a block
    #: to its JIT tier.  Ignored by the other backends.
    jit_threshold: int = 8
    #: Compiled-with-hot-chain-edge executions before the ``compiled``
    #: backend fuses a block chain into a multi-block trace.  Ignored by
    #: the other backends.
    jit_trace_threshold: int = 16


class Machine:
    """A single-hart RV32 platform.

    Example::

        machine = Machine()
        machine.load(program)
        result = machine.run(max_instructions=1_000_000)
        print(result.exit_code, machine.uart.output)
    """

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.decoder = Decoder(self.config.isa)
        self.bus = SystemBus()
        self.ram = Ram(self.config.ram_size)
        self.uart = Uart()
        self.gpio = Gpio()
        self.clint = Clint()
        self.exit_device = ExitDevice()
        self.bus.attach(RAM_BASE, self.config.ram_size, self.ram)
        self.bus.attach(UART_BASE, UART_SIZE, self.uart)
        self.bus.attach(GPIO_BASE, GPIO_SIZE, self.gpio)
        self.bus.attach(CLINT_BASE, CLINT_SIZE, self.clint)
        self.bus.attach(EXIT_BASE, EXIT_SIZE, self.exit_device)
        self.cpu = Cpu(
            self.decoder,
            self.bus,
            timing=self.config.timing,
            trace_registers=self.config.trace_registers,
            block_cache_enabled=self.config.block_cache_enabled,
            icache=ICache(self.config.icache) if self.config.icache else None,
            max_blocks=self.config.tb_cache_max_blocks,
        )
        self.cpu.backend = create_backend(
            self.config.backend, self.cpu,
            threshold=self.config.jit_threshold,
            trace_threshold=self.config.jit_trace_threshold)
        self.cpu.set_interrupt_poll(self._poll_interrupts)
        self.cpu.set_wfi_wait(self._wfi_wait)
        self.cpu.csrs._time_source = lambda: self.clint.mtime
        self.cpu.csrs._mip_source = self._poll_interrupts
        if self.config.semihosting:
            self.cpu.ecall_handler = self._handle_ecall
        self.entry = RAM_BASE
        #: Optional telemetry session (see :mod:`repro.telemetry`): when
        #: set, :meth:`run` brackets execution with ``run.started`` /
        #: ``run.finished`` events.  ``None`` (the default) costs one
        #: attribute test per run() call.
        self.telemetry = None
        #: The snapshot whose RAM state current memory *extends*: RAM ==
        #: that snapshot's image + the pages in ``ram.dirty_pages()``.
        #: Maintained by :meth:`snapshot`/:meth:`restore`; the invariant
        #: survives arbitrary execution because every RAM write path marks
        #: its pages dirty.  ``None`` until the first snapshot.
        self._ram_epoch: Optional[MachineSnapshot] = None

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------

    def load(self, program) -> None:
        """Load a program image.

        ``program`` must expose ``segments`` (iterable of ``(addr, bytes)``)
        and ``entry`` — :class:`repro.asm.Program` does.  The CPU is reset
        to the entry point with the stack pointer at the top of RAM.
        """
        for addr, blob in program.segments:
            offset = addr - RAM_BASE
            self.ram.write_bytes(offset, blob)
        self.entry = program.entry
        self.reset()

    def load_blob(self, blob: bytes, addr: int = RAM_BASE,
                  entry: Optional[int] = None) -> None:
        """Load raw machine code at ``addr`` (defaults to start of RAM)."""
        self.ram.write_bytes(addr - RAM_BASE, blob)
        self.entry = entry if entry is not None else addr
        self.reset()

    def reset(self) -> None:
        """Reset CPU state to the program entry, sp at top of RAM."""
        self.cpu.reset(self.entry)
        if self.cpu.icache is not None:
            self.cpu.icache.reset()
        self.cpu.csrs._time_source = lambda: self.clint.mtime
        self.cpu.csrs._mip_source = self._poll_interrupts
        self.cpu.regs.raw_write(2, RAM_BASE + self.config.ram_size - 16)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self, parent: Optional["MachineSnapshot"] = None
                 ) -> "MachineSnapshot":
        """Checkpoint the complete machine state (CPU, RAM, devices).

        With ``parent`` set to the machine's current RAM epoch (the last
        snapshot taken or restored on this machine), RAM is captured as a
        **delta**: only the pages dirtied since then, chained to
        ``parent``.  Otherwise a full image is captured.  Either way the
        new snapshot becomes the machine's RAM epoch.
        """
        if parent is not None and parent is self._ram_epoch:
            ram = None
            ram_pages = {index: self.ram.page_bytes(index)
                         for index in sorted(self.ram.dirty_pages())}
            depth = parent.depth + 1
        else:
            ram = bytes(self.ram.data)
            ram_pages = None
            parent = None
            depth = 0
        snap = MachineSnapshot(
            pc=self.cpu.pc,
            entry=self.entry,
            regs=self.cpu.regs.snapshot(),
            fregs=self.cpu.fregs.snapshot(),
            csrs=self.cpu.csrs.snapshot(),
            ram=ram,
            clint=(self.clint.mtime, self.clint.mtimecmp, self.clint.msip),
            uart=(bytes(self.uart.tx_log), tuple(self.uart._rx_queue),
                  self.uart.interrupt_enable),
            gpio=(self.gpio.out, self.gpio.inputs,
                  tuple(self.gpio.out_history)),
            exit_value=self.exit_device.value,
            ram_pages=ram_pages,
            parent=parent,
            page_size=self.ram.page_size,
            depth=depth,
        )
        self._ram_epoch = snap
        self.ram.clear_dirty()
        return snap

    def _restore_ram(self, snapshot: "MachineSnapshot") -> int:
        """Rewrite RAM to ``snapshot``'s state; returns pages copied.

        When the machine's current RAM provably extends a snapshot on the
        same delta chain (the epoch invariant), only the pages that can
        differ are rewritten: the machine's dirty set plus every page
        recorded on the chain segments between the epoch, the target, and
        their lowest common ancestor.  Anything else falls back to a full
        image copy.
        """
        epoch = self._ram_epoch
        if (epoch is not None
                and snapshot.page_size == self.ram.page_size):
            pages = self.ram.dirty_pages()
            a, b = epoch, snapshot
            while a is not None and b is not None and a is not b:
                if a.depth >= b.depth:
                    if a.ram_pages:
                        pages.update(a.ram_pages)
                    a = a.parent
                else:
                    if b.ram_pages:
                        pages.update(b.ram_pages)
                    b = b.parent
            if a is b and a is not None:  # common ancestor found
                for index in pages:
                    self.ram.write_page(index, snapshot.page_bytes(index))
                self._ram_epoch = snapshot
                self.ram.clear_dirty()
                return len(pages)
        self.ram.load_image(snapshot.materialize_ram())
        self._ram_epoch = snapshot
        self.ram.clear_dirty()
        return self.ram.page_count

    def restore(self, snapshot: "MachineSnapshot") -> int:
        """Restore a checkpoint taken on *this machine configuration*.

        The translation cache is flushed (RAM contents may differ).
        Register-file *objects* are kept — a snapshot/restore pair cannot
        undo structural changes such as injected stuck-at wrappers.  See
        :class:`MachineSnapshot` for exactly what is captured and what
        is intentionally excluded.  Returns the number of RAM pages
        rewritten (O(dirty) when the snapshot shares a delta chain with
        the machine's last checkpoint).
        """
        self.entry = snapshot.entry
        self.cpu.pc = snapshot.pc
        self.cpu.next_pc = snapshot.pc
        self.cpu.regs.restore(snapshot.regs)
        self.cpu.regs.clear_trace()
        self.cpu.fregs.restore(snapshot.fregs)
        self.cpu.fregs.clear_trace()
        self.cpu.csrs.restore(snapshot.csrs)
        self.cpu.csrs.clear_trace()
        pages_copied = self._restore_ram(snapshot)
        self.clint.mtime, self.clint.mtimecmp, self.clint.msip = \
            snapshot.clint
        tx_log, rx_queue, interrupt_enable = snapshot.uart
        self.uart.tx_log = bytearray(tx_log)
        self.uart._rx_queue.clear()
        self.uart._rx_queue.extend(rx_queue)
        self.uart.interrupt_enable = interrupt_enable
        self.gpio.out, self.gpio.inputs, out_history = snapshot.gpio
        self.gpio.out_history[:] = out_history
        self.exit_device.value = snapshot.exit_value
        if self.cpu.icache is not None:
            # Cache contents are not checkpointed; restart cold, which is
            # exact for snapshots taken right after load().
            self.cpu.icache.reset()
        self.cpu.flush_translation_cache()
        # RAM contents changed underneath any cached fast-path window;
        # force the CPU to re-derive it before the next direct access.
        self.cpu.invalidate_ram_window()
        return pages_copied

    # ------------------------------------------------------------------
    # Plugins
    # ------------------------------------------------------------------

    def add_plugin(self, plugin: Plugin) -> Plugin:
        self.cpu.hooks.register(plugin)
        plugin.on_attach(self)
        # Blocks translated before registration would miss the translate
        # hook; flush so the plugin sees every block.
        self.cpu.flush_translation_cache()
        return plugin

    def remove_plugin(self, plugin: Plugin) -> None:
        self.cpu.hooks.unregister(plugin)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def attach_telemetry(self, telemetry=None) -> "Plugin":
        """Enable telemetry on this machine.

        Registers a :class:`repro.telemetry.TelemetryPlugin` bound to
        ``telemetry`` (default: the process-wide session) and arranges for
        run lifecycle events.  Returns the plugin so callers can
        ``finish()`` runs that stop without a guest exit.
        """
        from ..telemetry import TelemetryPlugin
        from ..telemetry.session import resolve

        self.telemetry = resolve(telemetry)
        return self.add_plugin(TelemetryPlugin(self.telemetry))

    def run(self, max_instructions: Optional[int] = None,
            resume: bool = False) -> RunResult:
        """Run until exit, unhandled trap, WFI-halt, or the budget ends.

        With ``resume=True`` the call continues a run that was previously
        interrupted (e.g. after restoring a mid-execution checkpoint):
        ``max_instructions`` then bounds the *total* instructions since
        reset, and the result's ``instructions`` reports that total — so
        a resumed run is accounted exactly like one uninterrupted run.
        """
        prefix = self.cpu.csrs.instret if resume else 0
        remaining = max_instructions
        if resume and max_instructions is not None:
            remaining = max_instructions - prefix
            if remaining <= 0:  # checkpoint already past the budget
                return RunResult(STOP_MAX_INSNS, prefix, self.cpu.csrs.cycle)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.events.emit(
                "run.started",
                entry=self.entry,
                isa=self.config.isa.name,
                max_instructions=max_instructions,
            )
        try:
            result = self.cpu.run(remaining)
            # Exception paths report csrs.instret, which already counts
            # from reset; only the normal return needs the prefix added.
            if prefix:
                result.instructions += prefix
        except MachineExit as exit_event:
            result = RunResult(
                STOP_EXIT,
                self.cpu.csrs.instret,
                self.cpu.csrs.cycle,
                exit_code=exit_event.code,
            )
        except UnhandledTrap as trap:
            result = RunResult(
                STOP_UNHANDLED_TRAP,
                self.cpu.csrs.instret,
                self.cpu.csrs.cycle,
                trap_cause=trap.cause,
                trap_pc=trap.pc,
            )
        if self.cpu.hooks.exit:
            for hook in self.cpu.hooks.exit:
                hook(result.exit_code if result.exit_code is not None else -1)
        if telemetry is not None and telemetry.enabled:
            telemetry.events.emit(
                "run.finished",
                stop_reason=result.stop_reason,
                exit_code=result.exit_code,
                instructions=result.instructions,
                cycles=result.cycles,
            )
            stats = self.jit_stats()
            metrics = telemetry.metrics
            if stats is not None:
                for key, value in stats.items():
                    metrics.gauge(f"vp.jit.{key}").set(value)
            for key, value in self.mem_stats().items():
                metrics.gauge(f"vp.mem.{key}").set(value)
        return result

    def jit_stats(self) -> Optional[dict]:
        """Tier counters when running the ``compiled`` backend, else
        ``None`` — see :class:`repro.vp.jit.JitStats`."""
        stats = getattr(self.cpu.backend, "stats", None)
        return stats.as_dict() if stats is not None else None

    def mem_stats(self) -> dict:
        """RAM fast-path counters (all backends): direct-window hits vs
        bus-dispatch fallbacks for guest data accesses, plus the derived
        hit rate.  Published as ``vp.mem.*`` gauges when telemetry is
        attached."""
        cpu = self.cpu
        fast = cpu.mem_fast_loads + cpu.mem_fast_stores
        total = fast + cpu.mem_bus_loads + cpu.mem_bus_stores
        return {
            "fastpath_loads": cpu.mem_fast_loads,
            "fastpath_stores": cpu.mem_fast_stores,
            "fastpath_fallback_loads": cpu.mem_bus_loads,
            "fastpath_fallback_stores": cpu.mem_bus_stores,
            "fastpath_hit_rate": round(fast / total, 6) if total else 0.0,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _poll_interrupts(self) -> int:
        pending = self.clint.pending_interrupts()
        if self.uart.interrupt_pending():
            pending |= csrdef.MIE_MEIE  # UART drives the external line
        return pending

    def _wfi_wait(self) -> Optional[int]:
        if self.uart.interrupt_pending():
            return 0
        if self.clint.mtimecmp == 0xFFFFFFFFFFFFFFFF and not self.clint.msip:
            return None  # nothing armed: sleeping forever
        return self.clint.cycles_until_timer()

    def _handle_ecall(self, cpu: Cpu) -> None:
        number = cpu.regs.raw_read(17)  # a7
        if number == SYSCALL_EXIT:
            raise MachineExit(cpu.regs.raw_read(10))
        if number == SYSCALL_WRITE:
            # write(fd=a0, buf=a1, len=a2) -> UART, returns length in a0.
            buf = cpu.regs.raw_read(11)
            length = cpu.regs.raw_read(12)
            for i in range(length):
                self.uart.store(0, 1, cpu.load(buf + i, 1))
            cpu.regs.raw_write(10, length)
            return
        cpu.trap(csrdef.CAUSE_ECALL_M, 0)
