"""Edge-application demonstrators.

The Scale4Edge abstract announces "envisioned demonstrators, which will be
used in their evaluation".  This module implements three edge scenarios the
project's companion papers describe, each exercising a different slice of
the ecosystem:

* :func:`access_control_demo` — a UART door-lock controller (the MBMV 2019
  security scenario) with non-invasive IO-access monitoring and an optional
  backdoor whose unauthorized UART access the monitor must detect.
* :func:`sensor_node_demo` — a timer-driven sampling node (CLINT + WFI +
  interrupt handler) computing an exponential moving average.
* :func:`crypto_demo` — BMI-accelerated crypto kernels with baseline
  comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..asm import assemble
from ..isa.decoder import IsaConfig, RV32IMC_ZICSR
from ..vp.machine import Machine, MachineConfig, UART_BASE
from .security import IoAccessMonitor, IoRegion
from .taint import TaintRegion, TaintTracker

_ACCESS_CONTROL_TEMPLATE = """
# UART door-lock controller: read a 4-digit PIN from the UART, compare
# against the stored code, answer OPEN/DENY and drive the lock actuator
# on GPIO pin 0.
.equ UART, 0x10000000
.equ GPIO, 0x10001000
_start:
    la s0, pin
    li s1, UART
    li s2, 0           # digit index
    li s3, 0           # mismatch flag
read_loop:             # @loopbound 4
    lw t0, 8(s1)       # STATUS
    andi t0, t0, 2     # RX available?
    beqz t0, deny
    lw t1, 4(s1)       # RXDATA
    add t2, s0, s2
    lbu t3, 0(t2)
    beq t1, t3, digit_ok
    li s3, 1
digit_ok:
    addi s2, s2, 1
    li t0, 4
    blt s2, t0, read_loop
    bnez s3, deny
{backdoor}
    la a1, open_msg
    call print
    li t0, GPIO
    li t1, 1
    sw t1, 8(t0)       # GPIO SET: energise the lock actuator
    li a0, 0
    j finish
deny:
    la a1, deny_msg
    call print
    li t0, GPIO
    li t1, 1
    sw t1, 12(t0)      # GPIO CLEAR: keep the door locked
    li a0, 1
finish:
    li a7, 93
    ecall

# The one routine authorized to drive the UART transmitter.
print:
print_loop:            # @loopbound 6
    lbu t0, 0(a1)
    beqz t0, print_done
    sb t0, 0(s1)
    addi a1, a1, 1
    j print_loop
print_done:
    ret

.data
pin: .byte {pin_bytes}
open_msg: .asciz "OPEN\\n"
deny_msg: .asciz "DENY\\n"
"""

_BACKDOOR = """
    # Backdoor: leak the stored PIN over the UART, bypassing print().
    lbu t0, 0(s0)
    sb t0, 0(s1)
    lbu t0, 1(s0)
    sb t0, 0(s1)
"""

_SENSOR_NODE_TEMPLATE = """
# Timer-driven sensor node: sample on every CLINT timer tick (woken from
# WFI), smooth with an EMA filter, exit with the final filtered value.
_start:
    la t0, handler
    csrw mtvec, t0
    li s1, 0x02004000      # mtimecmp
    li s2, 0x0200BFF8      # mtime
    lw t1, 0(s2)
    addi t1, t1, {interval}
    sw t1, 0(s1)
    sw zero, 4(s1)
    li t0, 0x80            # MTIE
    csrw mie, t0
    csrsi mstatus, 8       # MIE
    li s3, 0               # ema
    li s4, 0               # sample count
    li s5, {samples}
sample_loop:               # @loopbound {samples}
    wfi
    lw t0, 0(s2)           # synthetic sensor: low mtime bits
    andi t0, t0, 255
    sub t1, t0, s3
    srai t1, t1, 3
    add s3, s3, t1         # ema += (x - ema) >> 3
    addi s4, s4, 1
    blt s4, s5, sample_loop
    mv a0, s3
    li a7, 93
    ecall
.align 2
handler:
    # Re-arm the timer one interval ahead; clears the pending interrupt.
    lw t0, 0(s2)
    addi t0, t0, {interval}
    sw t0, 0(s1)
    mret
"""


@dataclass
class DemoResult:
    """Common result envelope for all demonstrators."""

    name: str
    exit_code: int
    uart_output: str
    instructions: int
    cycles: int
    extras: Dict = field(default_factory=dict)


def access_control_demo(
    pin: bytes = b"1234",
    attempt: bytes = b"1234",
    with_backdoor: bool = False,
    isa: IsaConfig = RV32IMC_ZICSR,
) -> DemoResult:
    """Run the door-lock scenario; ``extras`` reports IO-policy violations.

    With ``with_backdoor=True`` the binary contains code that writes the
    stored PIN to the UART outside the authorized ``print`` routine — the
    access monitor must flag exactly those stores.
    """
    if len(pin) != 4 or len(attempt) > 4:
        raise ValueError("PIN is 4 digits; attempt at most 4")
    source = _ACCESS_CONTROL_TEMPLATE.format(
        backdoor=_BACKDOOR if with_backdoor else "",
        pin_bytes=", ".join(str(b) for b in pin),
    )
    program = assemble(source, isa=isa)
    machine = Machine(MachineConfig(isa=isa))
    machine.load(program)
    machine.uart.push_rx(attempt)
    monitor = IoAccessMonitor([IoRegion(
        name="uart",
        base=UART_BASE,
        size=0x100,
        allowed_code=(
            # Reading the PIN is allowed from the input loop...
            (program.symbols["read_loop"], program.symbols["digit_ok"]),
            # ...and transmitting only from the print routine.
            (program.symbols["print"], program.address_of("pin")),
        ),
    )])
    machine.add_plugin(monitor)
    # Information-flow view: the stored PIN is the secret; any byte of it
    # flowing into the UART transmitter is exfiltration.
    taint = TaintTracker(sinks=[TaintRegion("uart-tx", UART_BASE, 4)])
    taint.taint_memory(program.address_of("pin"), 4)
    machine.add_plugin(taint)
    result = machine.run(max_instructions=100_000)
    taint.finalize()
    return DemoResult(
        name="access-control",
        exit_code=result.exit_code,
        uart_output=machine.uart.output,
        instructions=result.instructions,
        cycles=result.cycles,
        extras={
            "granted": result.exit_code == 0,
            "lock_open": machine.gpio.pin(0),
            "violations": monitor.violation_count,
            "violation_pcs": [r.pc for r in monitor.violations],
            "monitor_report": monitor.report(),
            "leaks": taint.leak_count,
            "taint_report": taint.report(),
        },
    )


def sensor_node_demo(
    samples: int = 16,
    interval: int = 100,
    isa: IsaConfig = RV32IMC_ZICSR,
) -> DemoResult:
    """Run the timer-driven sampling node."""
    if samples < 1 or interval < 10:
        raise ValueError("need >= 1 sample and an interval of >= 10 cycles")
    source = _SENSOR_NODE_TEMPLATE.format(samples=samples, interval=interval)
    program = assemble(source, isa=isa)
    machine = Machine(MachineConfig(isa=isa))
    machine.load(program)
    result = machine.run(max_instructions=1_000_000)
    return DemoResult(
        name="sensor-node",
        exit_code=result.exit_code,
        uart_output=machine.uart.output,
        instructions=result.instructions,
        cycles=result.cycles,
        extras={
            "samples": samples,
            "interval": interval,
            "filtered_value": result.exit_code,
            # WFI fast-forwarding means cycles >= samples * interval.
            "duty_cycles": result.cycles,
        },
    )


def crypto_demo() -> DemoResult:
    """Run the BMI crypto kernels and compare against the baseline."""
    from ..bmi import evaluate_all, table

    comparisons = evaluate_all()
    total_base = sum(row.baseline_cycles for row in comparisons)
    total_bmi = sum(row.bmi_cycles for row in comparisons)
    return DemoResult(
        name="crypto-edge",
        exit_code=0,
        uart_output="",
        instructions=sum(row.bmi_instructions for row in comparisons),
        cycles=total_bmi,
        extras={
            "kernels": {row.name: row.cycle_speedup for row in comparisons},
            "overall_speedup": total_base / total_bmi,
            "table": table(comparisons),
        },
    )
