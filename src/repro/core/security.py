"""Non-invasive dynamic memory/IO access analysis.

Reproduces the security analysis of the group's MBMV 2019 work: observe
every data access a program makes through the VP's plugin API (without
modifying the program), attribute it to the device it touches and the code
location it came from, and flag accesses to protected IO regions that
originate outside an allow-listed code range — e.g. an unauthorized write
to the UART that drives a door-lock controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..vp.plugins import Plugin


@dataclass(frozen=True)
class IoRegion:
    """A guarded MMIO window with the code allowed to touch it."""

    name: str
    base: int
    size: int
    #: (start, end) pc ranges allowed to access the region; empty = nobody.
    allowed_code: Tuple[Tuple[int, int], ...] = ()

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def code_allowed(self, pc: int) -> bool:
        return any(start <= pc < end for start, end in self.allowed_code)


@dataclass
class AccessRecord:
    """One observed data access."""

    pc: int
    addr: int
    width: int
    is_store: bool
    value: int
    region: Optional[str] = None
    violation: bool = False


class IoAccessMonitor(Plugin):
    """Records data accesses and detects IO policy violations.

    Attach to a machine, run the workload, then inspect ``violations`` and
    ``accesses_by_region``.  ``record_all`` keeps the full access trace
    (memory-hungry for long runs); by default only IO-region accesses are
    retained.
    """

    name = "io-monitor"

    def __init__(self, regions: List[IoRegion],
                 record_all: bool = False) -> None:
        self.regions = list(regions)
        self.record_all = record_all
        self.records: List[AccessRecord] = []
        self.violations: List[AccessRecord] = []
        self.accesses_by_region: Dict[str, int] = {
            region.name: 0 for region in self.regions
        }
        self._current_pc = 0

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self._current_pc = pc

    def on_mem_access(self, cpu, addr, width, value, is_store) -> None:
        region = next((r for r in self.regions if r.contains(addr)), None)
        if region is None:
            if self.record_all:
                self.records.append(AccessRecord(
                    self._current_pc, addr, width, is_store, value))
            return
        violation = not region.code_allowed(self._current_pc)
        record = AccessRecord(self._current_pc, addr, width, is_store,
                              value, region=region.name, violation=violation)
        self.records.append(record)
        self.accesses_by_region[region.name] += 1
        if violation:
            self.violations.append(record)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def report(self) -> str:
        lines = ["IO access analysis:"]
        for region in self.regions:
            count = self.accesses_by_region[region.name]
            lines.append(f"  {region.name}: {count} accesses")
        if self.violations:
            lines.append(f"  VIOLATIONS: {len(self.violations)}")
            for record in self.violations[:10]:
                op = "store to" if record.is_store else "load from"
                lines.append(
                    f"    pc {record.pc:#010x}: unauthorized {op} "
                    f"{record.region} @ {record.addr:#010x}"
                )
        else:
            lines.append("  no violations")
        return "\n".join(lines)
