"""Ecosystem facade, demonstrators, and security analysis."""

from .demonstrators import (
    DemoResult,
    access_control_demo,
    crypto_demo,
    sensor_node_demo,
)
from .ecosystem import Ecosystem
from .security import AccessRecord, IoAccessMonitor, IoRegion
from .taint import TaintEvent, TaintRegion, TaintTracker

__all__ = [
    "AccessRecord",
    "DemoResult",
    "Ecosystem",
    "IoAccessMonitor",
    "IoRegion",
    "TaintEvent",
    "TaintRegion",
    "TaintTracker",
    "access_control_demo",
    "crypto_demo",
    "sensor_node_demo",
]
