"""The top-level ecosystem facade.

:class:`Ecosystem` ties the virtual prototype and the analysis tools
together behind one object, mirroring how the Scale4Edge project positions
its components: one RISC-V configuration, one VP, and the tool ring
(coverage, WCET/QTA, fault injection, test generation) around it.

    eco = Ecosystem.for_isa("rv32imc_zicsr")
    program = eco.build(source)
    result = eco.run(program)
    wcet = eco.analyze_wcet(source)
    coverage = eco.measure_coverage(program)
    campaign = eco.fault_campaign(program)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..asm import Assembler, Program
from ..coverage import CoverageReport, SuiteCoverage, measure_coverage, measure_suite
from ..faultsim import (
    CampaignResult,
    Fault,
    FaultCampaign,
    MutantBudget,
    generate_mutants,
)
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR
from ..testgen import (
    ArchSuiteGenerator,
    StructuredGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)
from ..vp.cpu import RunResult
from ..vp.machine import Machine, MachineConfig
from ..vp.timing import TimingModel
from ..wcet import QtaAnalysis, analyze_program


class Ecosystem:
    """One ISA configuration plus every tool of the ecosystem."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR,
                 timing: Optional[TimingModel] = None) -> None:
        self.isa = isa
        self.timing = timing or TimingModel()
        self.decoder = Decoder(isa)
        self.assembler = Assembler(isa)

    @classmethod
    def for_isa(cls, name: str, **kwargs) -> "Ecosystem":
        """Construct from an ISA string like ``rv32imc_zicsr``."""
        return cls(IsaConfig.from_string(name), **kwargs)

    # -- build & run ----------------------------------------------------------

    def build(self, source: str) -> Program:
        """Assemble source text into a program image."""
        return self.assembler.assemble(source)

    def machine(self, trace_registers: bool = False,
                block_cache: bool = True) -> Machine:
        return Machine(MachineConfig(
            isa=self.isa, timing=self.timing,
            trace_registers=trace_registers,
            block_cache_enabled=block_cache,
        ))

    def run(self, program: Program,
            max_instructions: int = 10_000_000) -> Tuple[Machine, RunResult]:
        """Run a program on a fresh machine; returns (machine, result)."""
        machine = self.machine()
        machine.load(program)
        result = machine.run(max_instructions=max_instructions)
        return machine, result

    # -- analysis tools ---------------------------------------------------------

    def analyze_wcet(self, source: str,
                     loop_bounds: Optional[Dict[int, int]] = None,
                     max_instructions: int = 10_000_000,
                     edge_sensitive: bool = False) -> QtaAnalysis:
        """Full QTA flow: static bound + timing-annotated co-simulation."""
        return analyze_program(source, loop_bounds=loop_bounds, isa=self.isa,
                               timing=self.timing,
                               max_instructions=max_instructions,
                               edge_sensitive=edge_sensitive)

    def measure_coverage(self, program: Program,
                         max_instructions: int = 1_000_000) -> CoverageReport:
        return measure_coverage(program, isa=self.isa,
                                max_instructions=max_instructions)

    def measure_suite(self, programs: Sequence[Tuple[str, Program]],
                      max_instructions: int = 1_000_000) -> SuiteCoverage:
        return measure_suite(programs, isa=self.isa,
                             max_instructions=max_instructions)

    def fault_campaign(
        self,
        program: Program,
        budget: Optional[MutantBudget] = None,
        seed: int = 0,
        coverage_guided: bool = True,
    ) -> CampaignResult:
        """Coverage-guided fault campaign against ``program``."""
        campaign = FaultCampaign(program, isa=self.isa)
        golden = campaign.golden()
        coverage = self.measure_coverage(program) if coverage_guided else None
        faults = generate_mutants(
            program, coverage, budget,
            golden_instructions=golden.instructions, seed=seed,
        )
        return campaign.run(faults)

    # -- test generation -----------------------------------------------------------

    def arch_suite(self) -> List[Tuple[str, Program]]:
        return ArchSuiteGenerator(self.isa).generate()

    def unit_suite(self, seed: int = 0) -> List[Tuple[str, Program]]:
        return UnitSuiteGenerator(self.isa, seed=seed).generate()

    def torture_suite(self, count: int = 5, seed: int = 0,
                      length: int = 500) -> List[Tuple[str, Program]]:
        generator = TortureGenerator(
            self.isa, TortureConfig(length=length, seed=seed))
        return generator.generate_suite(count, start_seed=seed)

    def structured_programs(self, count: int = 5, seed: int = 0):
        return StructuredGenerator(self.isa).generate_suite(count, seed)
