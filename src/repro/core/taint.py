"""Dynamic information-flow (taint) tracking.

Complements the IO-access monitor's *policy* view with a *data-flow* view
of the security analysis: mark secret state (e.g. the stored PIN of the
access-control demonstrator) or untrusted input (UART RX) as tainted,
propagate taint through register and memory data flow, and report every
store of a tainted value into a sink region (UART TX, GPIO) — direct
secret exfiltration or unvalidated input reaching an actuator.

Scope and soundness notes:

* propagation is *explicit data flow only*: ``rd`` becomes tainted iff a
  source operand (register or loaded memory) is tainted.  Implicit flows
  through branches (``if secret: send('1')``) are out of scope, as in
  most dynamic taint tracking systems;
* constants (``lui``/``auipc``/immediates-only results) clear taint;
* taint is tracked per register and per memory byte.

Implementation: the plugin observes each instruction *before* it executes
and its memory accesses *during* execution, then applies the taint
transfer function when the next instruction (or ``finalize``) arrives, at
which point all of the instruction's effects are known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..isa.spec import Decoded
from ..vp.plugins import Plugin


@dataclass(frozen=True)
class TaintRegion:
    """A byte range acting as a taint source or sink."""

    name: str
    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


@dataclass
class TaintEvent:
    """A tainted value reached a sink region."""

    pc: int
    addr: int
    value: int
    region: str

    def describe(self) -> str:
        return (f"pc {self.pc:#010x}: tainted value {self.value:#x} "
                f"stored to {self.region} @ {self.addr:#010x}")


#: Instructions whose result is a constant: executing them clears taint.
_CONSTANT_RESULTS = frozenset({"lui", "auipc", "c.lui"})

#: Instruction names that write rd from rs1/rs2 data flow.  Everything in
#: the ALU/shift/compare/mul/div families behaves uniformly; control
#: transfer writes a return address (a constant).
_LINK_WRITERS = frozenset({"jal", "jalr", "c.jal", "c.jalr"})


class TaintTracker(Plugin):
    """Per-register / per-memory-byte dynamic taint propagation."""

    name = "taint"

    def __init__(
        self,
        sources: Optional[List[TaintRegion]] = None,
        sinks: Optional[List[TaintRegion]] = None,
        tainted_registers: Optional[Set[int]] = None,
    ) -> None:
        self.sources = list(sources or [])
        self.sinks = list(sinks or [])
        self.reg_taint: Set[int] = set(tainted_registers or ())
        self.reg_taint.discard(0)
        self.mem_taint: Set[int] = set()
        self.events: List[TaintEvent] = []
        self._pending: Optional[Tuple[Decoded, int]] = None
        self._accesses: List[Tuple[int, int, int, bool]] = []

    # -- external API ------------------------------------------------------

    def taint_memory(self, base: int, size: int) -> None:
        """Mark a byte range (e.g. the secret in .data) as tainted."""
        self.mem_taint.update(range(base, base + size))

    @property
    def leak_count(self) -> int:
        return len(self.events)

    def report(self) -> str:
        lines = [f"taint analysis: {len(self.events)} sink event(s)"]
        for event in self.events[:10]:
            lines.append("  " + event.describe())
        return "\n".join(lines)

    # -- plugin hooks --------------------------------------------------------

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self._commit()
        self._pending = (decoded, pc)
        self._accesses = []

    def on_mem_access(self, cpu, addr, width, value, is_store) -> None:
        self._accesses.append((addr, width, value, is_store))

    def on_exit(self, code) -> None:
        self._commit()

    def finalize(self) -> None:
        """Apply the last instruction's taint transfer (idempotent)."""
        self._commit()

    # -- taint transfer --------------------------------------------------------

    def _loaded_taint(self) -> bool:
        for addr, width, _value, is_store in self._accesses:
            if is_store:
                continue
            for region in self.sources:
                if region.contains(addr):
                    return True
            if any((addr + i) in self.mem_taint for i in range(width)):
                return True
        return False

    def _commit(self) -> None:
        if self._pending is None:
            return
        decoded, pc = self._pending
        self._pending = None
        spec = decoded.spec
        name = spec.name

        # Stores first: they consume the pre-instruction register state.
        if spec.writes_mem:
            tainted = decoded.rs2 in self.reg_taint
            for addr, width, value, is_store in self._accesses:
                if not is_store:
                    continue
                for i in range(width):
                    if tainted:
                        self.mem_taint.add(addr + i)
                    else:
                        self.mem_taint.discard(addr + i)
                if tainted:
                    for region in self.sinks:
                        if region.contains(addr):
                            self.events.append(TaintEvent(
                                pc=pc, addr=addr, value=value,
                                region=region.name))
            return

        if spec.reads_mem:
            if self._loaded_taint():
                self.reg_taint.add(decoded.rd)
            else:
                self.reg_taint.discard(decoded.rd)
            self.reg_taint.discard(0)
            return

        if name in _CONSTANT_RESULTS or name in _LINK_WRITERS:
            self.reg_taint.discard(decoded.rd)
            return

        if spec.is_branch or spec.is_system:
            return  # no data result (implicit flows out of scope)

        # Register-to-register data flow.  Decoded fields default to 0 for
        # unused operands and x0 is never tainted, so the uniform rule is
        # safe across formats.
        if decoded.rd == 0:
            return
        tainted = (decoded.rs1 in self.reg_taint
                   or decoded.rs2 in self.reg_taint)
        if tainted:
            self.reg_taint.add(decoded.rd)
        else:
            self.reg_taint.discard(decoded.rd)
