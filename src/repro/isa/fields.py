"""Bit-level field extraction and immediate decoding for RISC-V encodings.

Every helper in this module operates on plain Python integers that represent
fixed-width two's-complement machine words.  All 32-bit values are kept in the
unsigned canonical range ``0 .. 2**32 - 1``; signedness is applied explicitly
through :func:`sign_extend` at the points the ISA manual requires it.
"""

from __future__ import annotations

XLEN = 32
WORD_MASK = (1 << XLEN) - 1
HALF_MASK = 0xFFFF
BYTE_MASK = 0xFF


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit range ``value[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def bit(value: int, pos: int) -> int:
    """Extract the single bit ``value[pos]``."""
    return (value >> pos) & 1


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int (may be negative)."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_unsigned(value: int, width: int = XLEN) -> int:
    """Normalise a possibly negative int to its unsigned ``width``-bit form."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int = XLEN) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    return sign_extend(value & ((1 << width) - 1), width)


def fits_signed(value: int, width: int) -> bool:
    """Return True if ``value`` is representable as a signed ``width``-bit int."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """Return True if ``value`` is representable as an unsigned ``width``-bit int."""
    return 0 <= value < (1 << width)


# ---------------------------------------------------------------------------
# Operand field positions shared by the base 32-bit instruction formats.
# ---------------------------------------------------------------------------

def rd(word: int) -> int:
    """Destination register field (bits 11:7)."""
    return bits(word, 11, 7)


def rs1(word: int) -> int:
    """First source register field (bits 19:15)."""
    return bits(word, 19, 15)


def rs2(word: int) -> int:
    """Second source register field (bits 24:20)."""
    return bits(word, 24, 20)


def funct3(word: int) -> int:
    """The funct3 minor opcode field (bits 14:12)."""
    return bits(word, 14, 12)


def funct7(word: int) -> int:
    """The funct7 minor opcode field (bits 31:25)."""
    return bits(word, 31, 25)


def opcode(word: int) -> int:
    """Major opcode field (bits 6:0)."""
    return bits(word, 6, 0)


# ---------------------------------------------------------------------------
# Immediate decoding, one helper per instruction format.  Each returns the
# *signed* immediate exactly as the ISA manual specifies.
# ---------------------------------------------------------------------------

def imm_i(word: int) -> int:
    """I-type immediate: inst[31:20], sign-extended."""
    return sign_extend(bits(word, 31, 20), 12)


def imm_s(word: int) -> int:
    """S-type immediate: inst[31:25] ++ inst[11:7], sign-extended."""
    return sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def imm_b(word: int) -> int:
    """B-type immediate: branch offset in multiples of two bytes."""
    value = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(value, 13)


def imm_u(word: int) -> int:
    """U-type immediate: upper 20 bits, already shifted into position."""
    return sign_extend(word & 0xFFFFF000, 32)


def imm_j(word: int) -> int:
    """J-type immediate: jump offset in multiples of two bytes."""
    value = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(value, 21)


def shamt(word: int) -> int:
    """Shift amount for RV32 shift-immediate instructions (bits 24:20)."""
    return bits(word, 24, 20)


def csr_field(word: int) -> int:
    """CSR address field of Zicsr instructions (bits 31:20)."""
    return bits(word, 31, 20)


# ---------------------------------------------------------------------------
# Immediate *encoding*, the inverse of the helpers above.  Used by the
# encoder/assembler; each validates range and alignment.
# ---------------------------------------------------------------------------

def encode_imm_i(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise ValueError(f"I-immediate {imm} out of 12-bit signed range")
    return (imm & 0xFFF) << 20


def encode_imm_s(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise ValueError(f"S-immediate {imm} out of 12-bit signed range")
    value = imm & 0xFFF
    return (bits(value, 11, 5) << 25) | (bits(value, 4, 0) << 7)


def encode_imm_b(imm: int) -> int:
    if imm % 2:
        raise ValueError(f"branch offset {imm} is not 2-byte aligned")
    if not fits_signed(imm, 13):
        raise ValueError(f"B-immediate {imm} out of 13-bit signed range")
    value = imm & 0x1FFF
    return (
        (bit(value, 12) << 31)
        | (bits(value, 10, 5) << 25)
        | (bits(value, 4, 1) << 8)
        | (bit(value, 11) << 7)
    )


def encode_imm_u(imm: int) -> int:
    if not fits_unsigned(imm, 20) and not fits_signed(imm, 20):
        raise ValueError(f"U-immediate {imm} out of 20-bit range")
    return (imm & 0xFFFFF) << 12


def encode_imm_j(imm: int) -> int:
    if imm % 2:
        raise ValueError(f"jump offset {imm} is not 2-byte aligned")
    if not fits_signed(imm, 21):
        raise ValueError(f"J-immediate {imm} out of 21-bit signed range")
    value = imm & 0x1FFFFF
    return (
        (bit(value, 20) << 31)
        | (bits(value, 10, 1) << 21)
        | (bit(value, 11) << 20)
        | (bits(value, 19, 12) << 12)
    )
