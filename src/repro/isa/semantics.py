"""Instruction semantics for the base ISA and standard extensions.

Every function here implements one instruction (or one family sharing an
operation callback) against the CPU protocol defined by
:class:`repro.vp.cpu.Cpu`:

* ``cpu.regs`` / ``cpu.fregs`` / ``cpu.csrs`` — register files,
* ``cpu.pc`` — address of the executing instruction,
* ``cpu.next_pc`` — pre-set to the fall-through address; control-flow
  instructions overwrite it,
* ``cpu.load(addr, width, signed)`` / ``cpu.store(addr, width, value)``,
* ``cpu.trap(cause, tval)`` — raises a :class:`repro.vp.trap.Trap`.

Semantics follow the RISC-V unprivileged and machine-mode privileged specs;
corner cases (division by zero, signed-overflow division, x0 hardwiring,
CSR read/write suppression) are implemented exactly as specified.

This file is the normative reference for the template JIT: the source
emitters in :mod:`repro.vp.jit.templates` render these exact semantics
(keyed by the execute function objects below) into specialized per-block
code.  When changing an execute function listed in that module's
``EMITTERS``/``BRANCH_CONDS`` tables, update its emitter in the same
change — ``tests/vp/test_backend_parity.py`` enforces the equivalence.
"""

from __future__ import annotations

from . import csr as csrdef
from .fields import WORD_MASK, to_signed, to_unsigned
from .spec import Decoded

INT_MIN_32 = -(1 << 31)


# ---------------------------------------------------------------------------
# ALU register-register / register-immediate
# ---------------------------------------------------------------------------

def exec_add(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) + cpu.regs.read(d.rs2))


def exec_sub(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) - cpu.regs.read(d.rs2))


def exec_sll(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) << (cpu.regs.read(d.rs2) & 31))


def exec_slt(cpu, d: Decoded) -> None:
    lhs = to_signed(cpu.regs.read(d.rs1))
    rhs = to_signed(cpu.regs.read(d.rs2))
    cpu.regs.write(d.rd, 1 if lhs < rhs else 0)


def exec_sltu(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, 1 if cpu.regs.read(d.rs1) < cpu.regs.read(d.rs2) else 0)


def exec_xor(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) ^ cpu.regs.read(d.rs2))


def exec_srl(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) >> (cpu.regs.read(d.rs2) & 31))


def exec_sra(cpu, d: Decoded) -> None:
    shift = cpu.regs.read(d.rs2) & 31
    cpu.regs.write(d.rd, to_signed(cpu.regs.read(d.rs1)) >> shift)


def exec_or(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) | cpu.regs.read(d.rs2))


def exec_and(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) & cpu.regs.read(d.rs2))


def exec_addi(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) + d.imm)


def exec_slti(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, 1 if to_signed(cpu.regs.read(d.rs1)) < d.imm else 0)


def exec_sltiu(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, 1 if cpu.regs.read(d.rs1) < to_unsigned(d.imm) else 0)


def exec_xori(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) ^ to_unsigned(d.imm))


def exec_ori(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) | to_unsigned(d.imm))


def exec_andi(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) & to_unsigned(d.imm))


def exec_slli(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) << d.imm)


def exec_srli(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) >> d.imm)


def exec_srai(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, to_signed(cpu.regs.read(d.rs1)) >> d.imm)


def exec_lui(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, d.imm)


def exec_auipc(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.pc + d.imm)


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

def exec_jal(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.pc + d.spec.length)
    cpu.next_pc = (cpu.pc + d.imm) & WORD_MASK


def exec_jalr(cpu, d: Decoded) -> None:
    target = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK & ~1
    cpu.regs.write(d.rd, cpu.pc + d.spec.length)
    cpu.next_pc = target


def _branch(cpu, d: Decoded, taken: bool) -> None:
    if taken:
        cpu.next_pc = (cpu.pc + d.imm) & WORD_MASK


def exec_beq(cpu, d: Decoded) -> None:
    _branch(cpu, d, cpu.regs.read(d.rs1) == cpu.regs.read(d.rs2))


def exec_bne(cpu, d: Decoded) -> None:
    _branch(cpu, d, cpu.regs.read(d.rs1) != cpu.regs.read(d.rs2))


def exec_blt(cpu, d: Decoded) -> None:
    _branch(cpu, d, to_signed(cpu.regs.read(d.rs1)) < to_signed(cpu.regs.read(d.rs2)))


def exec_bge(cpu, d: Decoded) -> None:
    _branch(cpu, d, to_signed(cpu.regs.read(d.rs1)) >= to_signed(cpu.regs.read(d.rs2)))


def exec_bltu(cpu, d: Decoded) -> None:
    _branch(cpu, d, cpu.regs.read(d.rs1) < cpu.regs.read(d.rs2))


def exec_bgeu(cpu, d: Decoded) -> None:
    _branch(cpu, d, cpu.regs.read(d.rs1) >= cpu.regs.read(d.rs2))


# ---------------------------------------------------------------------------
# Loads and stores
# ---------------------------------------------------------------------------

def exec_lb(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.regs.write(d.rd, cpu.load(addr, 1, signed=True))


def exec_lh(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.regs.write(d.rd, cpu.load(addr, 2, signed=True))


def exec_lw(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.regs.write(d.rd, cpu.load(addr, 4))


def exec_lbu(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.regs.write(d.rd, cpu.load(addr, 1))


def exec_lhu(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.regs.write(d.rd, cpu.load(addr, 2))


def exec_sb(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.store(addr, 1, cpu.regs.read(d.rs2))


def exec_sh(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.store(addr, 2, cpu.regs.read(d.rs2))


def exec_sw(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.store(addr, 4, cpu.regs.read(d.rs2))


# ---------------------------------------------------------------------------
# M extension
# ---------------------------------------------------------------------------

def exec_mul(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) * cpu.regs.read(d.rs2))


def exec_mulh(cpu, d: Decoded) -> None:
    product = to_signed(cpu.regs.read(d.rs1)) * to_signed(cpu.regs.read(d.rs2))
    cpu.regs.write(d.rd, product >> 32)


def exec_mulhsu(cpu, d: Decoded) -> None:
    product = to_signed(cpu.regs.read(d.rs1)) * cpu.regs.read(d.rs2)
    cpu.regs.write(d.rd, product >> 32)


def exec_mulhu(cpu, d: Decoded) -> None:
    product = cpu.regs.read(d.rs1) * cpu.regs.read(d.rs2)
    cpu.regs.write(d.rd, product >> 32)


def exec_div(cpu, d: Decoded) -> None:
    dividend = to_signed(cpu.regs.read(d.rs1))
    divisor = to_signed(cpu.regs.read(d.rs2))
    if divisor == 0:
        result = -1
    elif dividend == INT_MIN_32 and divisor == -1:
        result = INT_MIN_32
    else:
        # Python's // rounds toward -inf; RISC-V divides toward zero.
        result = abs(dividend) // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            result = -result
    cpu.regs.write(d.rd, result)


def exec_divu(cpu, d: Decoded) -> None:
    dividend = cpu.regs.read(d.rs1)
    divisor = cpu.regs.read(d.rs2)
    cpu.regs.write(d.rd, WORD_MASK if divisor == 0 else dividend // divisor)


def exec_rem(cpu, d: Decoded) -> None:
    dividend = to_signed(cpu.regs.read(d.rs1))
    divisor = to_signed(cpu.regs.read(d.rs2))
    if divisor == 0:
        result = dividend
    elif dividend == INT_MIN_32 and divisor == -1:
        result = 0
    else:
        result = abs(dividend) % abs(divisor)
        if dividend < 0:
            result = -result
    cpu.regs.write(d.rd, result)


def exec_remu(cpu, d: Decoded) -> None:
    dividend = cpu.regs.read(d.rs1)
    divisor = cpu.regs.read(d.rs2)
    cpu.regs.write(d.rd, dividend if divisor == 0 else dividend % divisor)


# ---------------------------------------------------------------------------
# System instructions
# ---------------------------------------------------------------------------

def exec_fence(cpu, d: Decoded) -> None:
    pass  # single-hart VP with a flat memory: fences are architectural no-ops


def exec_fence_i(cpu, d: Decoded) -> None:
    # Self-modifying code support: drop all cached translation blocks.
    cpu.flush_translation_cache()


def exec_ecall(cpu, d: Decoded) -> None:
    cpu.environment_call()


def exec_ebreak(cpu, d: Decoded) -> None:
    cpu.trap(csrdef.CAUSE_BREAKPOINT, cpu.pc)


def exec_mret(cpu, d: Decoded) -> None:
    status = cpu.csrs.raw_read(csrdef.MSTATUS)
    mpie = bool(status & csrdef.MSTATUS_MPIE)
    status &= ~(csrdef.MSTATUS_MIE | csrdef.MSTATUS_MPIE)
    if mpie:
        status |= csrdef.MSTATUS_MIE
    status |= csrdef.MSTATUS_MPIE
    cpu.csrs.raw_write(csrdef.MSTATUS, status)
    cpu.next_pc = cpu.csrs.raw_read(csrdef.MEPC) & WORD_MASK & ~1


def exec_wfi(cpu, d: Decoded) -> None:
    cpu.wait_for_interrupt()


# ---------------------------------------------------------------------------
# Zicsr
# ---------------------------------------------------------------------------

def _csr_illegal(cpu, exc) -> None:
    cpu.trap(csrdef.CAUSE_ILLEGAL_INSTRUCTION, cpu.current_word())


def exec_csrrw(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr) if d.rd else 0
        cpu.csrs.write(d.csr, cpu.regs.read(d.rs1))
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


def exec_csrrs(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr)
        if d.rs1:
            cpu.csrs.write(d.csr, old | cpu.regs.read(d.rs1))
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


def exec_csrrc(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr)
        if d.rs1:
            cpu.csrs.write(d.csr, old & ~cpu.regs.read(d.rs1))
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


def exec_csrrwi(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr) if d.rd else 0
        cpu.csrs.write(d.csr, d.imm)
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


def exec_csrrsi(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr)
        if d.imm:
            cpu.csrs.write(d.csr, old | d.imm)
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


def exec_csrrci(cpu, d: Decoded) -> None:
    try:
        old = cpu.csrs.read(d.csr)
        if d.imm:
            cpu.csrs.write(d.csr, old & ~d.imm)
    except csrdef.IllegalCsrError as exc:
        _csr_illegal(cpu, exc)
        return
    cpu.regs.write(d.rd, old)


# ---------------------------------------------------------------------------
# F-extension subset (loads/stores/moves) — enough to give the FPR coverage
# metric an architecturally real register file to observe.
# ---------------------------------------------------------------------------

def exec_flw(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.fregs.write(d.rd, cpu.load(addr, 4))


def exec_fsw(cpu, d: Decoded) -> None:
    addr = (cpu.regs.read(d.rs1) + d.imm) & WORD_MASK
    cpu.store(addr, 4, cpu.fregs.read(d.rs2))


def exec_fmv_x_w(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.fregs.read(d.rs1))


def exec_fmv_w_x(cpu, d: Decoded) -> None:
    cpu.fregs.write(d.rd, cpu.regs.read(d.rs1))


def exec_fsgnj_s(cpu, d: Decoded) -> None:
    # fsgnj.s frd, frs1, frs2 — with frs1 == frs2 this is fmv.s.
    value = (cpu.fregs.read(d.rs1) & 0x7FFFFFFF) | (cpu.fregs.read(d.rs2) & 0x80000000)
    cpu.fregs.write(d.rd, value)
