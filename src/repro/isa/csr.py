"""Control and status register (CSR) file for machine-mode RV32.

Implements the machine-mode CSR subset the Scale4Edge virtual prototype and
its demonstrators need: trap handling (mstatus/mtvec/mepc/mcause/mtval/mie/
mip), counters (cycle/instret and their machine aliases), identification
registers, and a handful of scratch registers.  Unknown CSR accesses raise
:class:`IllegalCsrError` which the CPU turns into an illegal-instruction
trap, matching hardware behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from .fields import WORD_MASK

# --- CSR addresses (subset) -------------------------------------------------
MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MCOUNTEREN = 0x306
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344

MCYCLE = 0xB00
MINSTRET = 0xB02
MCYCLEH = 0xB80
MINSTRETH = 0xB82

CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02
CYCLEH = 0xC80
TIMEH = 0xC81
INSTRETH = 0xC82

MVENDORID = 0xF11
MARCHID = 0xF12
MIMPID = 0xF13
MHARTID = 0xF14

#: Names for disassembly and assembly.
CSR_NAMES: Dict[int, str] = {
    MSTATUS: "mstatus", MISA: "misa", MIE: "mie", MTVEC: "mtvec",
    MCOUNTEREN: "mcounteren", MSCRATCH: "mscratch", MEPC: "mepc",
    MCAUSE: "mcause", MTVAL: "mtval", MIP: "mip",
    MCYCLE: "mcycle", MINSTRET: "minstret",
    MCYCLEH: "mcycleh", MINSTRETH: "minstreth",
    CYCLE: "cycle", TIME: "time", INSTRET: "instret",
    CYCLEH: "cycleh", TIMEH: "timeh", INSTRETH: "instreth",
    MVENDORID: "mvendorid", MARCHID: "marchid", MIMPID: "mimpid",
    MHARTID: "mhartid",
}

CSR_ADDRS: Dict[str, int] = {name: addr for addr, name in CSR_NAMES.items()}

# mstatus bits we model.
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7
MSTATUS_MPP = 3 << 11
MSTATUS_WRITABLE = MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP

# mie/mip bits.
MIE_MSIE = 1 << 3
MIE_MTIE = 1 << 7
MIE_MEIE = 1 << 11

# mcause values (exceptions).
CAUSE_MISALIGNED_FETCH = 0
CAUSE_FETCH_ACCESS = 1
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_MISALIGNED_LOAD = 4
CAUSE_LOAD_ACCESS = 5
CAUSE_MISALIGNED_STORE = 6
CAUSE_STORE_ACCESS = 7
CAUSE_ECALL_M = 11

# mcause values (interrupts; bit 31 set).
INTERRUPT_BIT = 1 << 31
CAUSE_MACHINE_SOFTWARE_INT = INTERRUPT_BIT | 3
CAUSE_MACHINE_TIMER_INT = INTERRUPT_BIT | 7
CAUSE_MACHINE_EXTERNAL_INT = INTERRUPT_BIT | 11


def misa_value(modules: Set[str]) -> int:
    """Compose the misa register value from enabled ISA module letters."""
    value = 1 << 30  # MXL=1 (32-bit)
    for letter in modules:
        if len(letter) == 1 and letter.isalpha():
            value |= 1 << (ord(letter.upper()) - ord("A"))
    return value


class IllegalCsrError(Exception):
    """Raised for accesses to unimplemented or read-only-violating CSRs."""

    def __init__(self, addr: int, message: str) -> None:
        super().__init__(message)
        self.addr = addr


class CsrFile:
    """Machine-mode CSR file with access tracing.

    ``time_source`` supplies the value of the memory-mapped timer so the
    user-level ``time`` CSR mirrors the CLINT's mtime, as on real platforms.
    """

    def __init__(
        self,
        modules: Optional[Set[str]] = None,
        hart_id: int = 0,
        time_source: Optional[Callable[[], int]] = None,
        trace: bool = False,
    ) -> None:
        self._regs: Dict[int, int] = {
            MSTATUS: 0,
            MISA: misa_value(modules or {"I"}),
            MIE: 0,
            MTVEC: 0,
            MCOUNTEREN: 0,
            MSCRATCH: 0,
            MEPC: 0,
            MCAUSE: 0,
            MTVAL: 0,
            MIP: 0,
            MVENDORID: 0,
            MARCHID: 0x53344544,  # "S4ED"
            MIMPID: 1,
            MHARTID: hart_id,
        }
        self.cycle = 0
        self.instret = 0
        self._time_source = time_source or (lambda: self.cycle)
        #: Optional live source for mip: platforms wire this to the device
        #: interrupt poll so reads reflect the *current* pending lines
        #: rather than the last snapshot the CPU wrote.
        self._mip_source: Optional[Callable[[], int]] = None
        self.trace = trace
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def is_read_only(addr: int) -> bool:
        """CSR addresses with top two bits ``11`` are read-only by spec."""
        return (addr >> 10) & 0b11 == 0b11

    def known_addresses(self) -> Set[int]:
        """All CSR addresses this file implements."""
        counters = {MCYCLE, MINSTRET, MCYCLEH, MINSTRETH,
                    CYCLE, TIME, INSTRET, CYCLEH, TIMEH, INSTRETH}
        return set(self._regs) | counters

    # -- architectural access ------------------------------------------------

    def read(self, addr: int) -> int:
        if self.trace:
            self.reads.add(addr)
        if addr in (MCYCLE, CYCLE):
            return self.cycle & WORD_MASK
        if addr in (MCYCLEH, CYCLEH):
            return (self.cycle >> 32) & WORD_MASK
        if addr in (MINSTRET, INSTRET):
            return self.instret & WORD_MASK
        if addr in (MINSTRETH, INSTRETH):
            return (self.instret >> 32) & WORD_MASK
        if addr == TIME:
            return self._time_source() & WORD_MASK
        if addr == TIMEH:
            return (self._time_source() >> 32) & WORD_MASK
        if addr == MIP and self._mip_source is not None:
            return self._mip_source() & WORD_MASK
        try:
            return self._regs[addr]
        except KeyError:
            raise IllegalCsrError(addr, f"read of unimplemented CSR {addr:#05x}") from None

    def write(self, addr: int, value: int) -> None:
        if self.is_read_only(addr):
            raise IllegalCsrError(addr, f"write to read-only CSR {addr:#05x}")
        if self.trace:
            self.writes.add(addr)
        value &= WORD_MASK
        if addr == MCYCLE:
            self.cycle = (self.cycle & ~WORD_MASK) | value
            return
        if addr == MCYCLEH:
            self.cycle = (self.cycle & WORD_MASK) | (value << 32)
            return
        if addr == MINSTRET:
            self.instret = (self.instret & ~WORD_MASK) | value
            return
        if addr == MINSTRETH:
            self.instret = (self.instret & WORD_MASK) | (value << 32)
            return
        if addr not in self._regs:
            raise IllegalCsrError(addr, f"write to unimplemented CSR {addr:#05x}")
        if addr == MSTATUS:
            self._regs[addr] = value & MSTATUS_WRITABLE
        elif addr == MISA:
            pass  # WARL: writes ignored, misa is fixed by configuration
        elif addr == MTVEC:
            self._regs[addr] = value & ~0b10  # mode 2/3 reserved -> clamp
        else:
            self._regs[addr] = value

    # -- raw access for traps, fault injection, snapshots --------------------

    def raw_read(self, addr: int) -> int:
        return self._regs[addr]

    def raw_write(self, addr: int, value: int) -> None:
        self._regs[addr] = value & WORD_MASK

    def snapshot(self) -> Dict[int, int]:
        state = dict(self._regs)
        state["cycle"] = self.cycle  # type: ignore[index]
        state["instret"] = self.instret  # type: ignore[index]
        return state

    def restore(self, state: Dict) -> None:
        self.cycle = state["cycle"]
        self.instret = state["instret"]
        for addr, value in state.items():
            if isinstance(addr, int):
                self._regs[addr] = value

    def clear_trace(self) -> None:
        self.reads.clear()
        self.writes.clear()
