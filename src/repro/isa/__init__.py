"""RISC-V ISA model: encodings, decoder, register files, CSRs.

Public surface:

* :class:`IsaConfig` / :class:`Decoder` — ISA subset configuration and the
  decodetree-style decoder built from it.
* :class:`RegisterFile` / :class:`FPRegisterFile` / :class:`CsrFile` — the
  architectural state with access tracing for the coverage metric.
* :func:`encode` / :func:`disassemble` — mnemonic-level encode and decode.
"""

from .csr import (
    CSR_ADDRS,
    CSR_NAMES,
    CsrFile,
    IllegalCsrError,
)
from .decoder import (
    RV32I,
    RV32IM,
    RV32IMC,
    RV32IMC_ZICSR,
    RV32IMCF_ZICSR,
    Decoder,
    IllegalInstructionError,
    IsaConfig,
    available_modules,
    register_extension,
)
from .disasm import disassemble
from .encoder import EncodingError, encode
from .fields import WORD_MASK, XLEN, sign_extend, to_signed, to_unsigned
from .registers import (
    ABI_NAMES,
    FPRegisterFile,
    RegisterFile,
    gpr_name,
    parse_fpr,
    parse_gpr,
)
from .spec import SYNTAX_OPERANDS, Decoded, InstructionSpec

__all__ = [
    "ABI_NAMES",
    "CSR_ADDRS",
    "CSR_NAMES",
    "CsrFile",
    "Decoded",
    "Decoder",
    "EncodingError",
    "FPRegisterFile",
    "IllegalCsrError",
    "IllegalInstructionError",
    "InstructionSpec",
    "IsaConfig",
    "RegisterFile",
    "RV32I",
    "RV32IM",
    "RV32IMC",
    "RV32IMC_ZICSR",
    "RV32IMCF_ZICSR",
    "SYNTAX_OPERANDS",
    "WORD_MASK",
    "XLEN",
    "available_modules",
    "disassemble",
    "encode",
    "gpr_name",
    "parse_fpr",
    "parse_gpr",
    "register_extension",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
