"""Instruction specification model.

The ISA is described as a table of :class:`InstructionSpec` entries, each
carrying a (match, mask) pair in the style of QEMU's *decodetree* input: a
candidate word ``w`` matches a spec iff ``w & mask == match``.  The decoder
(:mod:`repro.isa.decoder`) compiles the enabled specs into lookup tables, so
adding an ISA module (M, C, Zicsr, the BMI extension ...) is purely additive
— exactly the property the Scale4Edge ecosystem needed from DecodeTree to
scale over RISC-V subset configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: Assembly operand syntax classes, used by the assembler and disassembler.
#: Keys are the ``syntax`` attribute of a spec; values list the operand roles
#: in source order.
SYNTAX_OPERANDS: Dict[str, Tuple[str, ...]] = {
    "R": ("rd", "rs1", "rs2"),          # add rd, rs1, rs2
    "I": ("rd", "rs1", "imm"),          # addi rd, rs1, imm
    "SHIFT": ("rd", "rs1", "imm"),      # slli rd, rs1, shamt
    "LOAD": ("rd", "imm", "rs1"),       # lw rd, imm(rs1)
    "STORE": ("rs2", "imm", "rs1"),     # sw rs2, imm(rs1)
    "BRANCH": ("rs1", "rs2", "imm"),    # beq rs1, rs2, offset
    "U": ("rd", "imm"),                 # lui rd, imm
    "J": ("rd", "imm"),                 # jal rd, offset
    "JALR": ("rd", "rs1", "imm"),       # jalr rd, rs1, imm
    "CSR": ("rd", "csr", "rs1"),        # csrrw rd, csr, rs1
    "CSRI": ("rd", "csr", "imm"),       # csrrwi rd, csr, uimm
    "NONE": (),                         # ecall, ebreak, mret, fence, wfi
    "R2": ("rd", "rs1"),                # unary ops (clz rd, rs1; sext.b ...)
    "FLOAD": ("frd", "imm", "rs1"),     # flw frd, imm(rs1)
    "FSTORE": ("frs2", "imm", "rs1"),   # fsw frs2, imm(rs1)
    "FR": ("frd", "frs1", "frs2"),      # fsgnj.s frd, frs1, frs2
    "FR2": ("frd", "frs1"),             # fsgnj-based fmv.s
    "FMVX": ("rd", "frs1"),             # fmv.x.w rd, frs1
    "FMVF": ("frd", "rs1"),             # fmv.w.x frd, rs1
    # Compressed formats.
    "CI": ("rd", "imm"),                # c.addi rd, imm / c.slli rd, shamt
    "CR": ("rd", "rs2"),                # c.mv rd, rs2 / c.add rd, rs2
    "CR1": ("rs1",),                    # c.jr rs1 / c.jalr rs1
    "CJ": ("imm",),                     # c.j offset
    "CBZ": ("rs1", "imm"),              # c.beqz rs1, offset
    "CLOAD": ("rd", "imm", "rs1"),      # c.lw rd, imm(rs1)
    "CSTORE": ("rs2", "imm", "rs1"),    # c.sw rs2, imm(rs1)
    "CLSP": ("rd", "imm"),              # c.lwsp rd, imm
    "CSSP": ("rs2", "imm"),             # c.swsp rs2, imm
    "CFLOAD": ("frd", "imm", "rs1"),    # c.flw frd, imm(rs1)
    "CFSTORE": ("frs2", "imm", "rs1"),  # c.fsw frs2, imm(rs1)
    "CFLSP": ("frd", "imm"),            # c.flwsp frd, imm
    "CFSSP": ("frs2", "imm"),           # c.fswsp frs2, imm
}


@dataclass(frozen=True)
class InstructionSpec:
    """A single instruction's encoding, metadata, and semantics.

    Attributes:
        name: canonical mnemonic (``add``, ``c.addi``, ``csrrw`` ...).
        module: ISA module the instruction belongs to (``I``, ``M``, ``C``,
            ``Zicsr``, ``Zbb`` ...).  Coverage is reported per module.
        match: required bit pattern after masking.
        mask: which bits of the word participate in the match.
        length: instruction length in bytes (2 for compressed, 4 otherwise).
        decode: extracts the operand fields from the raw word; called as
            ``decode(spec, word)`` and returns a :class:`Decoded`.
        execute: instruction semantics, called as ``execute(cpu, decoded)``.
        syntax: key into :data:`SYNTAX_OPERANDS` describing assembly syntax.
        encode: builds the raw word from an operand dict (assembler backend);
            ``None`` for instructions only produced by decoding (e.g. when
            a compressed spec is re-encoded via its expansion).
        reads_mem / writes_mem: static memory-effect flags for CFG analysis.
        is_branch / is_jump / is_call / is_ret / is_system: static
            control-flow classification used by the CFG builder and the
            Torture-style generator.
    """

    name: str
    module: str
    match: int
    mask: int
    length: int
    decode: Callable = field(repr=False, default=None)  # type: ignore[assignment]
    execute: Callable = field(repr=False, default=None)  # type: ignore[assignment]
    syntax: str = "NONE"
    encode: Optional[Callable[..., int]] = field(repr=False, default=None)
    reads_mem: bool = False
    writes_mem: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_system: bool = False

    def matches(self, word: int) -> bool:
        """True if ``word`` decodes to this instruction."""
        return (word & self.mask) == self.match


class Decoded:
    """A decoded instruction instance: spec plus extracted operand fields.

    Field meaning depends on the spec's syntax class; unused fields are 0.
    ``imm`` is the sign-extended immediate (or unsigned where the ISA says
    so, e.g. CSR uimm and shift amounts).
    """

    __slots__ = ("spec", "word", "rd", "rs1", "rs2", "imm", "csr")

    def __init__(
        self,
        spec: InstructionSpec,
        word: int,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        csr: int = 0,
    ) -> None:
        self.spec = spec
        self.word = word
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.csr = csr

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def length(self) -> int:
        return self.spec.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Decoded({self.spec.name}, word={self.word:#x}, rd={self.rd}, "
            f"rs1={self.rs1}, rs2={self.rs2}, imm={self.imm}, csr={self.csr:#x})"
        )
