"""Shared decode and encode callbacks for the base 32-bit formats.

Decoders are called as ``decode(spec, word)`` and return a
:class:`~repro.isa.spec.Decoded`; encoders are called with the spec's match
value plus keyword operands and return the raw instruction word.  The
compressed formats have their own callbacks in :mod:`repro.isa.rv32c`
because each RVC instruction scrambles its immediate differently.
"""

from __future__ import annotations

from . import fields as f
from .spec import Decoded


# ---------------------------------------------------------------------------
# Decoders
# ---------------------------------------------------------------------------

def decode_r(spec, word: int) -> Decoded:
    return Decoded(spec, word, rd=f.rd(word), rs1=f.rs1(word), rs2=f.rs2(word))


def decode_i(spec, word: int) -> Decoded:
    return Decoded(spec, word, rd=f.rd(word), rs1=f.rs1(word), imm=f.imm_i(word))


def decode_shift(spec, word: int) -> Decoded:
    return Decoded(spec, word, rd=f.rd(word), rs1=f.rs1(word), imm=f.shamt(word))


def decode_s(spec, word: int) -> Decoded:
    return Decoded(spec, word, rs1=f.rs1(word), rs2=f.rs2(word), imm=f.imm_s(word))


def decode_b(spec, word: int) -> Decoded:
    return Decoded(spec, word, rs1=f.rs1(word), rs2=f.rs2(word), imm=f.imm_b(word))


def decode_u(spec, word: int) -> Decoded:
    return Decoded(spec, word, rd=f.rd(word), imm=f.imm_u(word))


def decode_j(spec, word: int) -> Decoded:
    return Decoded(spec, word, rd=f.rd(word), imm=f.imm_j(word))


def decode_csr(spec, word: int) -> Decoded:
    return Decoded(
        spec, word, rd=f.rd(word), rs1=f.rs1(word), csr=f.csr_field(word)
    )


def decode_csri(spec, word: int) -> Decoded:
    # The rs1 field carries the 5-bit zero-extended immediate.
    return Decoded(spec, word, rd=f.rd(word), imm=f.rs1(word), csr=f.csr_field(word))


def decode_none(spec, word: int) -> Decoded:
    return Decoded(spec, word)


def decode_r2(spec, word: int) -> Decoded:
    """Unary register ops where rs2 is part of the match (clz, sext.b ...)."""
    return Decoded(spec, word, rd=f.rd(word), rs1=f.rs1(word))


# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------

def _check_reg(value: int, role: str) -> int:
    if not 0 <= value < 32:
        raise ValueError(f"{role} register x{value} out of range")
    return value


def encode_r(match: int, rd: int = 0, rs1: int = 0, rs2: int = 0) -> int:
    return (
        match
        | (_check_reg(rd, "rd") << 7)
        | (_check_reg(rs1, "rs1") << 15)
        | (_check_reg(rs2, "rs2") << 20)
    )


def encode_i(match: int, rd: int = 0, rs1: int = 0, imm: int = 0) -> int:
    return (
        match
        | (_check_reg(rd, "rd") << 7)
        | (_check_reg(rs1, "rs1") << 15)
        | f.encode_imm_i(imm)
    )


def encode_shift(match: int, rd: int = 0, rs1: int = 0, imm: int = 0) -> int:
    if not 0 <= imm < 32:
        raise ValueError(f"shift amount {imm} out of range 0..31")
    return (
        match
        | (_check_reg(rd, "rd") << 7)
        | (_check_reg(rs1, "rs1") << 15)
        | (imm << 20)
    )


def encode_s(match: int, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    return (
        match
        | (_check_reg(rs1, "rs1") << 15)
        | (_check_reg(rs2, "rs2") << 20)
        | f.encode_imm_s(imm)
    )


def encode_b(match: int, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    return (
        match
        | (_check_reg(rs1, "rs1") << 15)
        | (_check_reg(rs2, "rs2") << 20)
        | f.encode_imm_b(imm)
    )


def encode_u(match: int, rd: int = 0, imm: int = 0) -> int:
    """``imm`` is the 20-bit upper-immediate value (not pre-shifted)."""
    return match | (_check_reg(rd, "rd") << 7) | f.encode_imm_u(imm)


def encode_j(match: int, rd: int = 0, imm: int = 0) -> int:
    return match | (_check_reg(rd, "rd") << 7) | f.encode_imm_j(imm)


def encode_csr(match: int, rd: int = 0, csr: int = 0, rs1: int = 0) -> int:
    if not 0 <= csr < 4096:
        raise ValueError(f"CSR address {csr:#x} out of range")
    return (
        match
        | (_check_reg(rd, "rd") << 7)
        | (_check_reg(rs1, "rs1") << 15)
        | (csr << 20)
    )


def encode_csri(match: int, rd: int = 0, csr: int = 0, imm: int = 0) -> int:
    if not 0 <= csr < 4096:
        raise ValueError(f"CSR address {csr:#x} out of range")
    if not 0 <= imm < 32:
        raise ValueError(f"CSR immediate {imm} out of range 0..31")
    return match | (_check_reg(rd, "rd") << 7) | (imm << 15) | (csr << 20)


def encode_none(match: int) -> int:
    return match


def encode_r2(match: int, rd: int = 0, rs1: int = 0) -> int:
    return match | (_check_reg(rd, "rd") << 7) | (_check_reg(rs1, "rs1") << 15)
