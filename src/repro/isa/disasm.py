"""Disassembler: :class:`~repro.isa.spec.Decoded` back to assembly text.

Output round-trips through the assembler (modulo label reconstruction:
pc-relative offsets are printed numerically, with the resolved target as a
comment when the instruction's pc is known).
"""

from __future__ import annotations

from typing import Optional

from .csr import CSR_NAMES
from .registers import FPR_ABI_NAMES, gpr_name
from .spec import SYNTAX_OPERANDS, Decoded


def _fmt_operand(d: Decoded, role: str) -> str:
    if role == "rd":
        return gpr_name(d.rd)
    if role == "rs1":
        return gpr_name(d.rs1)
    if role == "rs2":
        return gpr_name(d.rs2)
    if role == "frd":
        return FPR_ABI_NAMES[d.rd]
    if role == "frs1":
        return FPR_ABI_NAMES[d.rs1]
    if role == "frs2":
        return FPR_ABI_NAMES[d.rs2]
    if role == "csr":
        return CSR_NAMES.get(d.csr, f"{d.csr:#x}")
    if role == "imm":
        if d.spec.syntax in ("U",) or d.spec.name == "c.lui":
            return hex((d.imm >> 12) & 0xFFFFF)
        return str(d.imm)
    raise ValueError(f"unknown operand role {role!r}")


def disassemble(d: Decoded, pc: Optional[int] = None) -> str:
    """Render one decoded instruction as assembly text."""
    syntax = d.spec.syntax
    roles = SYNTAX_OPERANDS[syntax]
    if not roles:
        return d.spec.name
    parts = [_fmt_operand(d, role) for role in roles]
    if syntax in ("LOAD", "STORE", "FLOAD", "FSTORE",
                  "CLOAD", "CSTORE", "CFLOAD", "CFSTORE"):
        text = f"{d.spec.name} {parts[0]}, {parts[1]}({parts[2]})"
    elif syntax in ("CLSP", "CSSP", "CFLSP", "CFSSP"):
        text = f"{d.spec.name} {parts[0]}, {parts[1]}(sp)"
    else:
        text = f"{d.spec.name} " + ", ".join(parts)
    if pc is not None and (d.spec.is_branch or d.spec.name in
                           ("jal", "c.j", "c.jal")):
        text += f"  # -> {(pc + d.imm) & 0xFFFFFFFF:#010x}"
    return text
