"""Architectural register files: GPRs, FPRs, and ABI naming.

The register files record read/write *access traces* when tracing is enabled;
the coverage subsystem (``repro.coverage``) builds its GPR/FPR access metric
on top of that, mirroring the bit-level register model of the Scale4Edge
coverage analysis.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .fields import WORD_MASK

NUM_GPRS = 32
NUM_FPRS = 32

#: ABI register names indexed by register number, per the RISC-V psABI.
ABI_NAMES: Tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

FPR_ABI_NAMES: Tuple[str, ...] = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

_NAME_TO_NUM = {name: i for i, name in enumerate(ABI_NAMES)}
_NAME_TO_NUM.update({f"x{i}": i for i in range(NUM_GPRS)})
_NAME_TO_NUM["fp"] = 8  # alias for s0

_FPR_NAME_TO_NUM = {name: i for i, name in enumerate(FPR_ABI_NAMES)}
_FPR_NAME_TO_NUM.update({f"f{i}": i for i in range(NUM_FPRS)})


def parse_gpr(name: str) -> int:
    """Resolve a GPR name (``x5``, ``t0``, ``fp`` ...) to its number.

    Raises ``KeyError`` for unknown names.
    """
    try:
        return _NAME_TO_NUM[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register name {name!r}") from None


def parse_fpr(name: str) -> int:
    """Resolve an FPR name (``f3``, ``fa0`` ...) to its number."""
    try:
        return _FPR_NAME_TO_NUM[name.lower()]
    except KeyError:
        raise KeyError(f"unknown FP register name {name!r}") from None


def gpr_name(num: int) -> str:
    """ABI name for GPR ``num``."""
    return ABI_NAMES[num]


class RegisterFile:
    """The 32-entry integer register file with hardwired ``x0``.

    Values are stored in unsigned canonical 32-bit form.  When ``trace`` is
    set, every read and write records the register number in ``reads`` /
    ``writes`` so coverage and fault tooling can observe access patterns
    without modifying instruction semantics.
    """

    __slots__ = ("_regs", "trace", "reads", "writes")

    def __init__(self, trace: bool = False) -> None:
        self._regs: List[int] = [0] * NUM_GPRS
        self.trace = trace
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    def read(self, num: int) -> int:
        if self.trace:
            self.reads.add(num)
        return self._regs[num]

    def write(self, num: int, value: int) -> None:
        if self.trace:
            self.writes.add(num)
        if num:
            self._regs[num] = value & WORD_MASK

    # Raw access bypasses x0 hardwiring and tracing: used by fault injection
    # (a stuck-at fault may legitimately target the x0 read port) and by
    # state snapshotting.
    def raw_read(self, num: int) -> int:
        return self._regs[num]

    def raw_write(self, num: int, value: int) -> None:
        self._regs[num] = value & WORD_MASK

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy of all register values."""
        return tuple(self._regs)

    def restore(self, values) -> None:
        if len(values) != NUM_GPRS:
            raise ValueError("snapshot must contain exactly 32 values")
        self._regs = [v & WORD_MASK for v in values]
        self._regs[0] = 0

    def reset(self) -> None:
        self._regs = [0] * NUM_GPRS
        self.reads.clear()
        self.writes.clear()

    def clear_trace(self) -> None:
        self.reads.clear()
        self.writes.clear()

    def __getitem__(self, num: int) -> int:
        return self.read(num)

    def __setitem__(self, num: int, value: int) -> None:
        self.write(num, value)

    def dump(self) -> str:
        """Human-readable register dump (four columns)."""
        lines = []
        for row in range(8):
            cells = []
            for col in range(4):
                i = row * 4 + col
                cells.append(f"{ABI_NAMES[i]:>5}={self._regs[i]:08x}")
            lines.append("  ".join(cells))
        return "\n".join(lines)


class FPRegisterFile:
    """Floating-point register file.

    The Scale4Edge coverage metric counts FPR accesses; full IEEE-754
    arithmetic is out of scope for the RV32IMC demonstrators, so values are
    stored as raw 32-bit bit patterns and the file exists primarily to give
    the F-extension load/store/move subset and the coverage metric a real
    register model to observe.
    """

    __slots__ = ("_regs", "trace", "reads", "writes")

    def __init__(self, trace: bool = False) -> None:
        self._regs: List[int] = [0] * NUM_FPRS
        self.trace = trace
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    def read(self, num: int) -> int:
        if self.trace:
            self.reads.add(num)
        return self._regs[num]

    def write(self, num: int, value: int) -> None:
        if self.trace:
            self.writes.add(num)
        self._regs[num] = value & WORD_MASK

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._regs)

    def restore(self, values) -> None:
        if len(values) != NUM_FPRS:
            raise ValueError("snapshot must contain exactly 32 values")
        self._regs = [v & WORD_MASK for v in values]

    def reset(self) -> None:
        self._regs = [0] * NUM_FPRS
        self.reads.clear()
        self.writes.clear()

    def clear_trace(self) -> None:
        self.reads.clear()
        self.writes.clear()

    def __getitem__(self, num: int) -> int:
        return self.read(num)

    def __setitem__(self, num: int, value: int) -> None:
        self.write(num, value)
