"""RV32C compressed instruction table.

Every compressed instruction decodes into the operand form of its 32-bit
expansion and reuses the base instruction's ``execute`` callback — the
compressed spec only contributes the 16-bit length and its own mnemonic (so
the coverage metric can distinguish ``c.addi`` from ``addi``, as the
Scale4Edge coverage analysis does for the C module).

Immediate scrambling follows the RVC chapter of the unprivileged spec; each
format has a matched decode/encode pair, and encoders validate register
class (x8..x15 for the three-bit fields) and immediate range/alignment.
"""

from __future__ import annotations

from typing import List

from . import semantics as sem
from .fields import bit, bits, fits_signed, sign_extend
from .spec import Decoded, InstructionSpec


def _creg(field: int) -> int:
    """Map a 3-bit compressed register field to x8..x15."""
    return 8 + field

def _creg_field(reg: int, role: str) -> int:
    if not 8 <= reg <= 15:
        raise ValueError(f"{role} x{reg} not encodable in compressed form (x8..x15)")
    return reg - 8

def _reg_field(reg: int, role: str, allow_zero: bool = True) -> int:
    if not 0 <= reg < 32:
        raise ValueError(f"{role} register x{reg} out of range")
    if not allow_zero and reg == 0:
        raise ValueError(f"{role} must not be x0 for this compressed form")
    return reg


# --- immediate scramblers (decode side) -------------------------------------

def _imm_ciw(w: int) -> int:
    return (
        (bits(w, 12, 11) << 4) | (bits(w, 10, 7) << 6)
        | (bit(w, 6) << 2) | (bit(w, 5) << 3)
    )

def _imm_cl(w: int) -> int:
    return (bits(w, 12, 10) << 3) | (bit(w, 6) << 2) | (bit(w, 5) << 6)

def _imm_ci(w: int) -> int:
    return sign_extend((bit(w, 12) << 5) | bits(w, 6, 2), 6)

def _imm_clui(w: int) -> int:
    return sign_extend((bit(w, 12) << 17) | (bits(w, 6, 2) << 12), 18)

def _imm_addi16sp(w: int) -> int:
    return sign_extend(
        (bit(w, 12) << 9) | (bit(w, 6) << 4) | (bit(w, 5) << 6)
        | (bits(w, 4, 3) << 7) | (bit(w, 2) << 5),
        10,
    )

def _imm_cj(w: int) -> int:
    return sign_extend(
        (bit(w, 12) << 11) | (bit(w, 11) << 4) | (bits(w, 10, 9) << 8)
        | (bit(w, 8) << 10) | (bit(w, 7) << 6) | (bit(w, 6) << 7)
        | (bits(w, 5, 3) << 1) | (bit(w, 2) << 5),
        12,
    )

def _imm_cb(w: int) -> int:
    return sign_extend(
        (bit(w, 12) << 8) | (bits(w, 11, 10) << 3) | (bits(w, 6, 5) << 6)
        | (bits(w, 4, 3) << 1) | (bit(w, 2) << 5),
        9,
    )

def _imm_clwsp(w: int) -> int:
    return (bit(w, 12) << 5) | (bits(w, 6, 4) << 2) | (bits(w, 3, 2) << 6)

def _imm_cswsp(w: int) -> int:
    return (bits(w, 12, 9) << 2) | (bits(w, 8, 7) << 6)

def _shamt_ci(w: int) -> int:
    return (bit(w, 12) << 5) | bits(w, 6, 2)


# --- immediate scramblers (encode side) -------------------------------------

def _enc_imm_ciw(imm: int) -> int:
    if not 0 < imm < 1024 or imm % 4:
        raise ValueError(f"c.addi4spn immediate {imm} invalid (4..1020, /4)")
    return (
        (bits(imm, 5, 4) << 11) | (bits(imm, 9, 6) << 7)
        | (bit(imm, 2) << 6) | (bit(imm, 3) << 5)
    )

def _enc_imm_cl(imm: int) -> int:
    if not 0 <= imm < 128 or imm % 4:
        raise ValueError(f"compressed load/store offset {imm} invalid (0..124, /4)")
    return (bits(imm, 5, 3) << 10) | (bit(imm, 2) << 6) | (bit(imm, 6) << 5)

def _enc_imm_ci(imm: int) -> int:
    if not fits_signed(imm, 6):
        raise ValueError(f"CI immediate {imm} out of 6-bit signed range")
    imm &= 0x3F
    return (bit(imm, 5) << 12) | (bits(imm, 4, 0) << 2)

def _enc_imm_clui(imm: int) -> int:
    # ``imm`` is the 20-bit upper-immediate value as written in assembly.
    value = sign_extend(imm & 0xFFFFF, 20)
    if not fits_signed(value, 6) or value == 0:
        raise ValueError(f"c.lui immediate {imm:#x} not encodable")
    value &= 0x3F
    return (bit(value, 5) << 12) | (bits(value, 4, 0) << 2)

def _enc_imm_addi16sp(imm: int) -> int:
    if imm == 0 or imm % 16 or not fits_signed(imm, 10):
        raise ValueError(f"c.addi16sp immediate {imm} invalid (±512, /16, nonzero)")
    imm &= 0x3FF
    return (
        (bit(imm, 9) << 12) | (bit(imm, 4) << 6) | (bit(imm, 6) << 5)
        | (bits(imm, 8, 7) << 3) | (bit(imm, 5) << 2)
    )

def _enc_imm_cj(imm: int) -> int:
    if imm % 2 or not fits_signed(imm, 12):
        raise ValueError(f"compressed jump offset {imm} invalid (±2KiB, /2)")
    imm &= 0xFFF
    return (
        (bit(imm, 11) << 12) | (bit(imm, 4) << 11) | (bits(imm, 9, 8) << 9)
        | (bit(imm, 10) << 8) | (bit(imm, 6) << 7) | (bit(imm, 7) << 6)
        | (bits(imm, 3, 1) << 3) | (bit(imm, 5) << 2)
    )

def _enc_imm_cb(imm: int) -> int:
    if imm % 2 or not fits_signed(imm, 9):
        raise ValueError(f"compressed branch offset {imm} invalid (±256, /2)")
    imm &= 0x1FF
    return (
        (bit(imm, 8) << 12) | (bits(imm, 4, 3) << 10) | (bits(imm, 7, 6) << 5)
        | (bits(imm, 2, 1) << 3) | (bit(imm, 5) << 2)
    )

def _enc_imm_clwsp(imm: int) -> int:
    if not 0 <= imm < 256 or imm % 4:
        raise ValueError(f"c.lwsp offset {imm} invalid (0..252, /4)")
    return (bit(imm, 5) << 12) | (bits(imm, 4, 2) << 4) | (bits(imm, 7, 6) << 2)

def _enc_imm_cswsp(imm: int) -> int:
    if not 0 <= imm < 256 or imm % 4:
        raise ValueError(f"c.swsp offset {imm} invalid (0..252, /4)")
    return (bits(imm, 5, 2) << 9) | (bits(imm, 7, 6) << 7)

def _enc_shamt_ci(imm: int) -> int:
    if not 0 < imm < 32:
        raise ValueError(f"compressed shift amount {imm} invalid (1..31)")
    return bits(imm, 4, 0) << 2


# --- decoders ---------------------------------------------------------------

def _dec_addi4spn(spec, w):
    return Decoded(spec, w, rd=_creg(bits(w, 4, 2)), rs1=2, imm=_imm_ciw(w))

def _dec_cl(spec, w):
    return Decoded(spec, w, rd=_creg(bits(w, 4, 2)), rs1=_creg(bits(w, 9, 7)),
                   imm=_imm_cl(w))

def _dec_cs(spec, w):
    return Decoded(spec, w, rs2=_creg(bits(w, 4, 2)), rs1=_creg(bits(w, 9, 7)),
                   imm=_imm_cl(w))

def _dec_caddi(spec, w):
    r = bits(w, 11, 7)
    return Decoded(spec, w, rd=r, rs1=r, imm=_imm_ci(w))

def _dec_cjal(spec, w):
    return Decoded(spec, w, rd=1, imm=_imm_cj(w))

def _dec_cli(spec, w):
    return Decoded(spec, w, rd=bits(w, 11, 7), rs1=0, imm=_imm_ci(w))

def _dec_caddi16sp(spec, w):
    return Decoded(spec, w, rd=2, rs1=2, imm=_imm_addi16sp(w))

def _dec_clui(spec, w):
    return Decoded(spec, w, rd=bits(w, 11, 7), imm=_imm_clui(w))

def _dec_cshift(spec, w):
    r = _creg(bits(w, 9, 7))
    return Decoded(spec, w, rd=r, rs1=r, imm=_shamt_ci(w))

def _dec_candi(spec, w):
    r = _creg(bits(w, 9, 7))
    return Decoded(spec, w, rd=r, rs1=r, imm=_imm_ci(w))

def _dec_ca(spec, w):
    r = _creg(bits(w, 9, 7))
    return Decoded(spec, w, rd=r, rs1=r, rs2=_creg(bits(w, 4, 2)))

def _dec_cj(spec, w):
    return Decoded(spec, w, rd=0, imm=_imm_cj(w))

def _dec_cb(spec, w):
    return Decoded(spec, w, rs1=_creg(bits(w, 9, 7)), rs2=0, imm=_imm_cb(w))

def _dec_cslli(spec, w):
    r = bits(w, 11, 7)
    return Decoded(spec, w, rd=r, rs1=r, imm=_shamt_ci(w))

def _dec_clwsp(spec, w):
    return Decoded(spec, w, rd=bits(w, 11, 7), rs1=2, imm=_imm_clwsp(w))

def _dec_cswsp(spec, w):
    return Decoded(spec, w, rs2=bits(w, 6, 2), rs1=2, imm=_imm_cswsp(w))

def _dec_cjr(spec, w):
    return Decoded(spec, w, rd=0, rs1=bits(w, 11, 7), imm=0)

def _dec_cjalr(spec, w):
    return Decoded(spec, w, rd=1, rs1=bits(w, 11, 7), imm=0)

def _dec_cmv(spec, w):
    return Decoded(spec, w, rd=bits(w, 11, 7), rs1=0, rs2=bits(w, 6, 2))

def _dec_cadd(spec, w):
    r = bits(w, 11, 7)
    return Decoded(spec, w, rd=r, rs1=r, rs2=bits(w, 6, 2))

def _dec_none(spec, w):
    return Decoded(spec, w)


# --- encoders ---------------------------------------------------------------

def _enc_addi4spn(match, rd=0, imm=0, rs1=2):
    return match | (_creg_field(rd, "rd") << 2) | _enc_imm_ciw(imm)

def _enc_cl(match, rd=0, imm=0, rs1=0):
    return (match | (_creg_field(rd, "rd") << 2)
            | (_creg_field(rs1, "rs1") << 7) | _enc_imm_cl(imm))

def _enc_cs(match, rs2=0, imm=0, rs1=0):
    return (match | (_creg_field(rs2, "rs2") << 2)
            | (_creg_field(rs1, "rs1") << 7) | _enc_imm_cl(imm))

def _enc_caddi(match, rd=0, imm=0):
    return match | (_reg_field(rd, "rd") << 7) | _enc_imm_ci(imm)

def _enc_cjal(match, imm=0):
    return match | _enc_imm_cj(imm)

def _enc_cli(match, rd=0, imm=0):
    return match | (_reg_field(rd, "rd", allow_zero=False) << 7) | _enc_imm_ci(imm)

def _enc_caddi16sp(match, rd=2, imm=0):
    if rd != 2:
        raise ValueError("c.addi16sp destination is fixed to sp")
    return match | _enc_imm_addi16sp(imm)

def _enc_clui(match, rd=0, imm=0):
    if rd in (0, 2):
        raise ValueError("c.lui destination must not be x0 or sp")
    return match | (rd << 7) | _enc_imm_clui(imm)

def _enc_cshift(match, rd=0, imm=0):
    return match | (_creg_field(rd, "rd") << 7) | _enc_shamt_ci(imm)

def _enc_candi(match, rd=0, imm=0):
    return match | (_creg_field(rd, "rd") << 7) | _enc_imm_ci(imm)

def _enc_ca(match, rd=0, rs2=0):
    return match | (_creg_field(rd, "rd") << 7) | (_creg_field(rs2, "rs2") << 2)

def _enc_cj(match, imm=0):
    return match | _enc_imm_cj(imm)

def _enc_cb(match, rs1=0, imm=0):
    return match | (_creg_field(rs1, "rs1") << 7) | _enc_imm_cb(imm)

def _enc_cslli(match, rd=0, imm=0):
    return match | (_reg_field(rd, "rd", allow_zero=False) << 7) | _enc_shamt_ci(imm)

def _enc_clwsp(match, rd=0, imm=0):
    return match | (_reg_field(rd, "rd", allow_zero=False) << 7) | _enc_imm_clwsp(imm)

def _enc_cflwsp(match, rd=0, imm=0):
    # FP destination may be f0; only the integer c.lwsp forbids x0.
    return match | (_reg_field(rd, "frd") << 7) | _enc_imm_clwsp(imm)

def _enc_cswsp(match, rs2=0, imm=0):
    return match | (_reg_field(rs2, "rs2") << 2) | _enc_imm_cswsp(imm)

def _enc_cjr(match, rs1=0):
    return match | (_reg_field(rs1, "rs1", allow_zero=False) << 7)

def _enc_cmv(match, rd=0, rs2=0):
    return (match | (_reg_field(rd, "rd", allow_zero=False) << 7)
            | (_reg_field(rs2, "rs2", allow_zero=False) << 2))

def _enc_none(match):
    return match


def _c(name, match, mask, decode, execute, syntax, encode, **flags) -> InstructionSpec:
    return InstructionSpec(
        name=name, module="C", match=match, mask=mask, length=2,
        decode=decode, execute=execute, syntax=syntax, encode=encode, **flags,
    )


RV32C_SPECS: List[InstructionSpec] = [
    # Quadrant 0
    _c("c.addi4spn", 0x0000, 0xE003, _dec_addi4spn, sem.exec_addi, "CI",
       _enc_addi4spn),
    _c("c.lw", 0x4000, 0xE003, _dec_cl, sem.exec_lw, "CLOAD", _enc_cl,
       reads_mem=True),
    _c("c.sw", 0xC000, 0xE003, _dec_cs, sem.exec_sw, "CSTORE", _enc_cs,
       writes_mem=True),
    # Quadrant 1
    _c("c.addi", 0x0001, 0xE003, _dec_caddi, sem.exec_addi, "CI", _enc_caddi),
    _c("c.jal", 0x2001, 0xE003, _dec_cjal, sem.exec_jal, "CJ", _enc_cjal,
       is_jump=True),
    _c("c.li", 0x4001, 0xE003, _dec_cli, sem.exec_addi, "CI", _enc_cli),
    _c("c.addi16sp", 0x6101, 0xEF83, _dec_caddi16sp, sem.exec_addi, "CI",
       _enc_caddi16sp),
    _c("c.lui", 0x6001, 0xE003, _dec_clui, sem.exec_lui, "CI", _enc_clui),
    _c("c.srli", 0x8001, 0xFC03, _dec_cshift, sem.exec_srli, "CI", _enc_cshift),
    _c("c.srai", 0x8401, 0xFC03, _dec_cshift, sem.exec_srai, "CI", _enc_cshift),
    _c("c.andi", 0x8801, 0xEC03, _dec_candi, sem.exec_andi, "CI", _enc_candi),
    _c("c.sub", 0x8C01, 0xFC63, _dec_ca, sem.exec_sub, "CR", _enc_ca),
    _c("c.xor", 0x8C21, 0xFC63, _dec_ca, sem.exec_xor, "CR", _enc_ca),
    _c("c.or", 0x8C41, 0xFC63, _dec_ca, sem.exec_or, "CR", _enc_ca),
    _c("c.and", 0x8C61, 0xFC63, _dec_ca, sem.exec_and, "CR", _enc_ca),
    _c("c.j", 0xA001, 0xE003, _dec_cj, sem.exec_jal, "CJ", _enc_cj,
       is_jump=True),
    _c("c.beqz", 0xC001, 0xE003, _dec_cb, sem.exec_beq, "CBZ", _enc_cb,
       is_branch=True),
    _c("c.bnez", 0xE001, 0xE003, _dec_cb, sem.exec_bne, "CBZ", _enc_cb,
       is_branch=True),
    # Quadrant 2
    _c("c.slli", 0x0002, 0xF003, _dec_cslli, sem.exec_slli, "CI", _enc_cslli),
    _c("c.lwsp", 0x4002, 0xE003, _dec_clwsp, sem.exec_lw, "CLSP", _enc_clwsp,
       reads_mem=True),
    _c("c.jr", 0x8002, 0xF07F, _dec_cjr, sem.exec_jalr, "CR1", _enc_cjr,
       is_jump=True),
    _c("c.mv", 0x8002, 0xF003, _dec_cmv, sem.exec_add, "CR", _enc_cmv),
    _c("c.ebreak", 0x9002, 0xFFFF, _dec_none, sem.exec_ebreak, "NONE",
       _enc_none, is_system=True),
    _c("c.jalr", 0x9002, 0xF07F, _dec_cjalr, sem.exec_jalr, "CR1", _enc_cjr,
       is_jump=True),
    _c("c.add", 0x9002, 0xF003, _dec_cadd, sem.exec_add, "CR", _enc_cmv),
    _c("c.swsp", 0xC002, 0xE003, _dec_cswsp, sem.exec_sw, "CSSP", _enc_cswsp,
       writes_mem=True),
]

# F-extension compressed loads/stores, only active when both C and F are
# configured.
RV32CF_SPECS: List[InstructionSpec] = [
    _c("c.flw", 0x6000, 0xE003, _dec_cl, sem.exec_flw, "CFLOAD", _enc_cl,
       reads_mem=True),
    _c("c.fsw", 0xE000, 0xE003, _dec_cs, sem.exec_fsw, "CFSTORE", _enc_cs,
       writes_mem=True),
    _c("c.flwsp", 0x6002, 0xE003, _dec_clwsp, sem.exec_flw, "CFLSP",
       _enc_cflwsp, reads_mem=True),
    _c("c.fswsp", 0xE002, 0xE003, _dec_cswsp, sem.exec_fsw, "CFSSP",
       _enc_cswsp, writes_mem=True),
]
