"""Instruction tables for RV32I, M, Zicsr, and the F load/store/move subset.

Each table is a list of :class:`~repro.isa.spec.InstructionSpec`; the decoder
composes the tables selected by the ISA configuration.  Encodings follow the
RISC-V unprivileged spec chapter 24 opcode listings.
"""

from __future__ import annotations

from typing import List

from . import formats as fmt
from . import semantics as sem
from .spec import InstructionSpec

# Major opcodes.
OP_LUI = 0x37
OP_AUIPC = 0x17
OP_JAL = 0x6F
OP_JALR = 0x67
OP_BRANCH = 0x63
OP_LOAD = 0x03
OP_STORE = 0x23
OP_IMM = 0x13
OP_REG = 0x33
OP_MISC_MEM = 0x0F
OP_SYSTEM = 0x73
OP_LOAD_FP = 0x07
OP_STORE_FP = 0x27
OP_FP = 0x53

MASK_R = 0xFE00707F
MASK_I = 0x0000707F
MASK_FULL = 0xFFFFFFFF


def _i(name, match, mask, decode, execute, syntax, encode, **flags) -> InstructionSpec:
    return InstructionSpec(
        name=name, module="I", match=match, mask=mask, length=4,
        decode=decode, execute=execute, syntax=syntax, encode=encode, **flags,
    )


RV32I_SPECS: List[InstructionSpec] = [
    _i("lui", OP_LUI, 0x7F, fmt.decode_u, sem.exec_lui, "U", fmt.encode_u),
    _i("auipc", OP_AUIPC, 0x7F, fmt.decode_u, sem.exec_auipc, "U", fmt.encode_u),
    _i("jal", OP_JAL, 0x7F, fmt.decode_j, sem.exec_jal, "J", fmt.encode_j,
       is_jump=True),
    _i("jalr", OP_JALR, MASK_I, fmt.decode_i, sem.exec_jalr, "JALR",
       fmt.encode_i, is_jump=True),
    _i("beq", 0x0063, MASK_I, fmt.decode_b, sem.exec_beq, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("bne", 0x1063, MASK_I, fmt.decode_b, sem.exec_bne, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("blt", 0x4063, MASK_I, fmt.decode_b, sem.exec_blt, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("bge", 0x5063, MASK_I, fmt.decode_b, sem.exec_bge, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("bltu", 0x6063, MASK_I, fmt.decode_b, sem.exec_bltu, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("bgeu", 0x7063, MASK_I, fmt.decode_b, sem.exec_bgeu, "BRANCH",
       fmt.encode_b, is_branch=True),
    _i("lb", 0x0003, MASK_I, fmt.decode_i, sem.exec_lb, "LOAD", fmt.encode_i,
       reads_mem=True),
    _i("lh", 0x1003, MASK_I, fmt.decode_i, sem.exec_lh, "LOAD", fmt.encode_i,
       reads_mem=True),
    _i("lw", 0x2003, MASK_I, fmt.decode_i, sem.exec_lw, "LOAD", fmt.encode_i,
       reads_mem=True),
    _i("lbu", 0x4003, MASK_I, fmt.decode_i, sem.exec_lbu, "LOAD", fmt.encode_i,
       reads_mem=True),
    _i("lhu", 0x5003, MASK_I, fmt.decode_i, sem.exec_lhu, "LOAD", fmt.encode_i,
       reads_mem=True),
    _i("sb", 0x0023, MASK_I, fmt.decode_s, sem.exec_sb, "STORE", fmt.encode_s,
       writes_mem=True),
    _i("sh", 0x1023, MASK_I, fmt.decode_s, sem.exec_sh, "STORE", fmt.encode_s,
       writes_mem=True),
    _i("sw", 0x2023, MASK_I, fmt.decode_s, sem.exec_sw, "STORE", fmt.encode_s,
       writes_mem=True),
    _i("addi", 0x0013, MASK_I, fmt.decode_i, sem.exec_addi, "I", fmt.encode_i),
    _i("slti", 0x2013, MASK_I, fmt.decode_i, sem.exec_slti, "I", fmt.encode_i),
    _i("sltiu", 0x3013, MASK_I, fmt.decode_i, sem.exec_sltiu, "I", fmt.encode_i),
    _i("xori", 0x4013, MASK_I, fmt.decode_i, sem.exec_xori, "I", fmt.encode_i),
    _i("ori", 0x6013, MASK_I, fmt.decode_i, sem.exec_ori, "I", fmt.encode_i),
    _i("andi", 0x7013, MASK_I, fmt.decode_i, sem.exec_andi, "I", fmt.encode_i),
    _i("slli", 0x00001013, MASK_R, fmt.decode_shift, sem.exec_slli, "SHIFT",
       fmt.encode_shift),
    _i("srli", 0x00005013, MASK_R, fmt.decode_shift, sem.exec_srli, "SHIFT",
       fmt.encode_shift),
    _i("srai", 0x40005013, MASK_R, fmt.decode_shift, sem.exec_srai, "SHIFT",
       fmt.encode_shift),
    _i("add", 0x00000033, MASK_R, fmt.decode_r, sem.exec_add, "R", fmt.encode_r),
    _i("sub", 0x40000033, MASK_R, fmt.decode_r, sem.exec_sub, "R", fmt.encode_r),
    _i("sll", 0x00001033, MASK_R, fmt.decode_r, sem.exec_sll, "R", fmt.encode_r),
    _i("slt", 0x00002033, MASK_R, fmt.decode_r, sem.exec_slt, "R", fmt.encode_r),
    _i("sltu", 0x00003033, MASK_R, fmt.decode_r, sem.exec_sltu, "R", fmt.encode_r),
    _i("xor", 0x00004033, MASK_R, fmt.decode_r, sem.exec_xor, "R", fmt.encode_r),
    _i("srl", 0x00005033, MASK_R, fmt.decode_r, sem.exec_srl, "R", fmt.encode_r),
    _i("sra", 0x40005033, MASK_R, fmt.decode_r, sem.exec_sra, "R", fmt.encode_r),
    _i("or", 0x00006033, MASK_R, fmt.decode_r, sem.exec_or, "R", fmt.encode_r),
    _i("and", 0x00007033, MASK_R, fmt.decode_r, sem.exec_and, "R", fmt.encode_r),
    _i("fence", 0x0000000F, MASK_I, fmt.decode_none, sem.exec_fence, "NONE",
       fmt.encode_none, is_system=True),
    _i("fence.i", 0x0000100F, MASK_I, fmt.decode_none, sem.exec_fence_i,
       "NONE", fmt.encode_none, is_system=True),
    _i("ecall", 0x00000073, MASK_FULL, fmt.decode_none, sem.exec_ecall,
       "NONE", fmt.encode_none, is_system=True),
    _i("ebreak", 0x00100073, MASK_FULL, fmt.decode_none, sem.exec_ebreak,
       "NONE", fmt.encode_none, is_system=True),
    _i("mret", 0x30200073, MASK_FULL, fmt.decode_none, sem.exec_mret, "NONE",
       fmt.encode_none, is_system=True, is_jump=True),
    _i("wfi", 0x10500073, MASK_FULL, fmt.decode_none, sem.exec_wfi, "NONE",
       fmt.encode_none, is_system=True),
]


def _m(name, match, execute) -> InstructionSpec:
    return InstructionSpec(
        name=name, module="M", match=match, mask=MASK_R, length=4,
        decode=fmt.decode_r, execute=execute, syntax="R", encode=fmt.encode_r,
    )


RV32M_SPECS: List[InstructionSpec] = [
    _m("mul", 0x02000033, sem.exec_mul),
    _m("mulh", 0x02001033, sem.exec_mulh),
    _m("mulhsu", 0x02002033, sem.exec_mulhsu),
    _m("mulhu", 0x02003033, sem.exec_mulhu),
    _m("div", 0x02004033, sem.exec_div),
    _m("divu", 0x02005033, sem.exec_divu),
    _m("rem", 0x02006033, sem.exec_rem),
    _m("remu", 0x02007033, sem.exec_remu),
]


def _csr(name, match, execute, syntax, encode) -> InstructionSpec:
    return InstructionSpec(
        name=name, module="Zicsr", match=match, mask=MASK_I, length=4,
        decode=fmt.decode_csr if syntax == "CSR" else fmt.decode_csri,
        execute=execute, syntax=syntax, encode=encode, is_system=True,
    )


ZICSR_SPECS: List[InstructionSpec] = [
    _csr("csrrw", 0x1073, sem.exec_csrrw, "CSR", fmt.encode_csr),
    _csr("csrrs", 0x2073, sem.exec_csrrs, "CSR", fmt.encode_csr),
    _csr("csrrc", 0x3073, sem.exec_csrrc, "CSR", fmt.encode_csr),
    _csr("csrrwi", 0x5073, sem.exec_csrrwi, "CSRI", fmt.encode_csri),
    _csr("csrrsi", 0x6073, sem.exec_csrrsi, "CSRI", fmt.encode_csri),
    _csr("csrrci", 0x7073, sem.exec_csrrci, "CSRI", fmt.encode_csri),
]


def _f(name, match, mask, decode, execute, syntax, encode, **flags) -> InstructionSpec:
    return InstructionSpec(
        name=name, module="F", match=match, mask=mask, length=4,
        decode=decode, execute=execute, syntax=syntax, encode=encode, **flags,
    )


# F-extension subset: enough data movement for the FPR coverage metric and
# the suites that exercise it (no FP arithmetic — see DESIGN.md).
RV32F_SPECS: List[InstructionSpec] = [
    _f("flw", 0x2007, MASK_I, fmt.decode_i, sem.exec_flw, "FLOAD",
       fmt.encode_i, reads_mem=True),
    _f("fsw", 0x2027, MASK_I, fmt.decode_s, sem.exec_fsw, "FSTORE",
       fmt.encode_s, writes_mem=True),
    _f("fmv.x.w", 0xE0000053, 0xFFF0707F, fmt.decode_r2, sem.exec_fmv_x_w,
       "FMVX", fmt.encode_r2),
    _f("fmv.w.x", 0xF0000053, 0xFFF0707F, fmt.decode_r2, sem.exec_fmv_w_x,
       "FMVF", fmt.encode_r2),
    _f("fsgnj.s", 0x20000053, MASK_R, fmt.decode_r, sem.exec_fsgnj_s, "FR",
       fmt.encode_r),
]
