"""Mnemonic-level instruction encoding.

Bridges operand roles in assembly syntax (``rd``, ``frs2``, ``csr`` ...) to
the keyword arguments of each spec's ``encode`` callback.  This is the
assembler's backend and is also used directly by the test generators.
"""

from __future__ import annotations

from typing import Dict

from .decoder import Decoder
from .spec import SYNTAX_OPERANDS, InstructionSpec

#: Operand roles that map onto a differently named encode keyword.
_ROLE_TO_KWARG: Dict[str, str] = {
    "frd": "rd",
    "frs1": "rs1",
    "frs2": "rs2",
}


class EncodingError(Exception):
    """Raised for unknown mnemonics or operand mismatches."""


def operand_roles(spec: InstructionSpec):
    """The ordered operand roles of a spec's assembly syntax."""
    try:
        return SYNTAX_OPERANDS[spec.syntax]
    except KeyError:
        raise EncodingError(
            f"{spec.name}: unknown syntax class {spec.syntax!r}"
        ) from None


def encode(decoder: Decoder, name: str, *values: int) -> int:
    """Encode instruction ``name`` with positional operand ``values``.

    Operand order follows the assembly syntax of the instruction, e.g.
    ``encode(dec, "addi", rd, rs1, imm)`` or ``encode(dec, "sw", rs2, imm,
    rs1)`` (store syntax is ``sw rs2, imm(rs1)``).
    """
    spec = decoder.spec_by_name.get(name)
    if spec is None:
        raise EncodingError(
            f"unknown mnemonic {name!r} for {decoder.config.name}"
        )
    if spec.encode is None:
        raise EncodingError(f"{name} has no encoder")
    roles = operand_roles(spec)
    if len(values) != len(roles):
        raise EncodingError(
            f"{name} expects {len(roles)} operands {roles}, got {len(values)}"
        )
    kwargs = {}
    for role, value in zip(roles, values):
        kwargs[_ROLE_TO_KWARG.get(role, role)] = value
    try:
        return spec.encode(spec.match, **kwargs)
    except ValueError as exc:
        raise EncodingError(f"{name}: {exc}") from exc
