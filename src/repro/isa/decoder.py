"""ISA configuration and the decodetree-style instruction decoder.

The decoder is built from the spec tables of the ISA modules named in an
:class:`IsaConfig`.  Like QEMU's DecodeTree output, lookup is structured:
32-bit words are bucketed by major opcode and compressed halfwords by
(quadrant, funct3); within a bucket, candidates are ordered most-specific
mask first, so overlapping encodings (``c.ebreak`` / ``c.jalr`` / ``c.add``)
resolve deterministically.  Additional ISA modules (such as the Scale4Edge
BMI extension, :mod:`repro.bmi`) register their tables at import time via
:func:`register_extension`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .rv32c import RV32C_SPECS, RV32CF_SPECS
from .rv32i import RV32F_SPECS, RV32I_SPECS, RV32M_SPECS, ZICSR_SPECS
from .spec import Decoded, InstructionSpec

#: Registered spec tables, keyed by ISA module name.
_EXTENSION_TABLES: Dict[str, List[InstructionSpec]] = {
    "I": RV32I_SPECS,
    "M": RV32M_SPECS,
    "C": RV32C_SPECS,
    "Zicsr": ZICSR_SPECS,
    "F": RV32F_SPECS,
}

#: Tables only active when *all* listed modules are configured.
_CONDITIONAL_TABLES: List[Tuple[FrozenSet[str], List[InstructionSpec]]] = [
    (frozenset({"C", "F"}), RV32CF_SPECS),
]


def register_extension(name: str, specs: List[InstructionSpec]) -> None:
    """Register an additional ISA module's spec table under ``name``.

    Re-registering the same name replaces the table (useful in tests).
    """
    _EXTENSION_TABLES[name] = list(specs)


def available_modules() -> List[str]:
    """Names of all registered ISA modules."""
    return sorted(_EXTENSION_TABLES)


class IllegalInstructionError(Exception):
    """Raised when a word does not decode under the configured ISA."""

    def __init__(self, word: int, pc: Optional[int] = None) -> None:
        location = f" at pc={pc:#010x}" if pc is not None else ""
        super().__init__(f"illegal instruction {word:#010x}{location}")
        self.word = word
        self.pc = pc


class IsaConfig:
    """An ISA subset configuration, e.g. RV32IMC with Zicsr.

    The Scale4Edge fault-analysis platform "scales to different RISC-V ISA
    standard subset configurations"; this object is the single source of
    truth for which instruction tables, registers and misa bits exist.
    """

    def __init__(self, modules: Iterable[str]) -> None:
        modules = frozenset(modules)
        if "I" not in modules:
            raise ValueError("the base module 'I' is mandatory")
        unknown = modules - set(_EXTENSION_TABLES)
        if unknown:
            raise ValueError(
                f"unknown ISA modules: {sorted(unknown)}; "
                f"registered: {available_modules()}"
            )
        self.modules: FrozenSet[str] = modules

    @classmethod
    def from_string(cls, text: str) -> "IsaConfig":
        """Parse names like ``rv32imc``, ``RV32IMC_Zicsr`` or ``rv32i_zbb``.

        Single letters after the ``rv32`` prefix are standard modules; longer
        ``Z...`` names are separated by underscores.  ``G`` expands to IM +
        Zicsr (the A/F/D parts of G beyond our F subset are not modelled).
        """
        text = text.strip()
        lowered = text.lower()
        if lowered.startswith("rv32"):
            lowered = lowered[4:]
        parts = [p for p in lowered.split("_") if p]
        if not parts:
            raise ValueError(f"cannot parse ISA string {text!r}")
        modules = set()
        for letter in parts[0]:
            if letter == "g":
                modules.update({"I", "M", "Zicsr"})
            else:
                modules.add(letter.upper())
        registered_lower = {name.lower(): name for name in _EXTENSION_TABLES}
        for part in parts[1:]:
            if part in registered_lower:
                modules.add(registered_lower[part])
            else:
                modules.add(part.capitalize())
        return cls(modules)

    @property
    def name(self) -> str:
        letters = "".join(
            m for m in "IEMAFDQC" if m in self.modules
        )
        extras = sorted(m for m in self.modules if len(m) > 1)
        return "RV32" + letters + "".join(f"_{m}" for m in extras)

    @property
    def has_compressed(self) -> bool:
        return "C" in self.modules

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def __eq__(self, other) -> bool:
        return isinstance(other, IsaConfig) and self.modules == other.modules

    def __hash__(self) -> int:
        return hash(self.modules)

    def __repr__(self) -> str:
        return f"IsaConfig({self.name})"


RV32I = IsaConfig({"I"})
RV32IM = IsaConfig({"I", "M"})
RV32IMC = IsaConfig({"I", "M", "C"})
RV32IMC_ZICSR = IsaConfig({"I", "M", "C", "Zicsr"})
RV32IMCF_ZICSR = IsaConfig({"I", "M", "C", "F", "Zicsr"})


def _mask_popcount(spec: InstructionSpec) -> int:
    return bin(spec.mask).count("1")


class Decoder:
    """Decodes raw instruction words for a given :class:`IsaConfig`."""

    def __init__(self, config: IsaConfig) -> None:
        self.config = config
        self.specs: List[InstructionSpec] = []
        for module in sorted(config.modules):
            self.specs.extend(_EXTENSION_TABLES[module])
        for required, table in _CONDITIONAL_TABLES:
            if required <= config.modules:
                self.specs.extend(table)
        self.spec_by_name: Dict[str, InstructionSpec] = {
            spec.name: spec for spec in self.specs
        }
        self._buckets32: Dict[int, List[InstructionSpec]] = {}
        self._buckets16: Dict[int, List[InstructionSpec]] = {}
        for spec in self.specs:
            if spec.length == 4:
                self._buckets32.setdefault(spec.match & 0x7F, []).append(spec)
            else:
                key = (spec.match & 0x3) | (((spec.match >> 13) & 0x7) << 2)
                self._buckets16.setdefault(key, []).append(spec)
        for bucket in self._buckets32.values():
            bucket.sort(key=_mask_popcount, reverse=True)
        for bucket in self._buckets16.values():
            bucket.sort(key=_mask_popcount, reverse=True)
        self._cache: Dict[int, Decoded] = {}

    def decode(self, word: int, pc: Optional[int] = None) -> Decoded:
        """Decode ``word`` (32 bits fetched; low 16 used if compressed).

        Raises :class:`IllegalInstructionError` when nothing matches.
        Results are cached: decoding is pure in the word value.
        """
        if word & 0x3 == 0x3:
            key = word
        else:
            key = word & 0xFFFF
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        decoded = self._decode_uncached(key, pc)
        self._cache[key] = decoded
        return decoded

    def _decode_uncached(self, word: int, pc: Optional[int]) -> Decoded:
        if word & 0x3 == 0x3:
            bucket = self._buckets32.get(word & 0x7F, ())
            for spec in bucket:
                if (word & spec.mask) == spec.match:
                    return spec.decode(spec, word)
            raise IllegalInstructionError(word, pc)
        # Compressed encoding space.
        if not self.config.has_compressed:
            raise IllegalInstructionError(word, pc)
        if word == 0:
            # The all-zero halfword is defined illegal (guards erased flash).
            raise IllegalInstructionError(word, pc)
        key = (word & 0x3) | (((word >> 13) & 0x7) << 2)
        for spec in self._buckets16.get(key, ()):
            if (word & spec.mask) == spec.match:
                decoded = spec.decode(spec, word)
                if spec.name == "c.addi4spn" and decoded.imm == 0:
                    raise IllegalInstructionError(word, pc)
                return decoded
        raise IllegalInstructionError(word, pc)

    def try_decode(self, word: int) -> Optional[Decoded]:
        """Like :meth:`decode` but returns ``None`` instead of raising."""
        try:
            return self.decode(word)
        except IllegalInstructionError:
            return None

    def clear_cache(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:
        return f"Decoder({self.config.name}, {len(self.specs)} specs)"
