"""Coverage feedback for the fuzzer: the signal that guides mutation.

The feedback map combines the coverage metric this repo already measures
(instruction types, GPR/FPR/CSR accesses — see :mod:`repro.coverage`)
with a **translation-block edge bitmap** collected by a VP plugin, the
same non-intrusive observation channel QTA and the coverage collector
use.  Edges capture *control-flow novelty* that the per-run register and
instruction-type sets cannot: two runs touching the same registers via a
different branch structure produce different edge sets.

Everything is expressed in terms of the stable
:func:`repro.coverage.coverage_signature` frozenset, so the fuzzer's
notion of "covered" is byte-for-byte the coverage metric's notion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..vp.plugins import Plugin

#: Size of the hashed edge space.  Like AFL's 64 KiB bitmap, hashing
#: (src, dst) block pairs into a fixed space bounds signature size on
#: programs with huge dynamic CFGs while keeping collisions rare for the
#: small programs the fuzzer grows.
EDGE_MAP_SIZE = 1 << 16


def edge_id(src_pc: int, dst_pc: int) -> int:
    """Deterministic hash of a translation-block edge into the edge map.

    Uses only the two block start pcs (no process-specific state), so the
    id is stable across runs, processes, and platforms.
    """
    return (((src_pc >> 1) * 33) ^ (dst_pc >> 1)) & (EDGE_MAP_SIZE - 1)


class TBEdgePlugin(Plugin):
    """Records executed translation-block edges as hashed edge ids.

    Plugs into ``on_block_exec`` — the hook fires for every block the CPU
    dispatches, including direct-chained successors, so the edge set is
    the complete dynamic block-level CFG of the run.
    """

    name = "fuzz-tb-edges"

    def __init__(self) -> None:
        self.edges: Set[int] = set()
        self._prev: Optional[int] = None

    def on_block_exec(self, cpu, block) -> None:
        pc = block.start_pc
        if self._prev is not None:
            self.edges.add(edge_id(self._prev, pc))
        self._prev = pc

    def reset(self) -> None:
        """Clear state between program evaluations."""
        self.edges.clear()
        self._prev = None


class InsnTypePlugin(Plugin):
    """Records executed instruction types (mnemonic set only).

    A leaner sibling of :class:`repro.coverage.CoveragePlugin`: the fuzzer
    does not need per-byte memory access sets, and skipping the
    ``on_mem_access`` hook keeps the per-execution cost down.
    """

    name = "fuzz-insn-types"

    def __init__(self) -> None:
        self.insn_types: Set[str] = set()

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.insn_types.add(decoded.spec.name)

    def reset(self) -> None:
        self.insn_types.clear()


class FeedbackMap:
    """The global, monotonically growing set of covered signature elements.

    ``observe`` folds one execution's signature in and returns the
    elements never seen before — the AFL "new coverage" predicate.  The
    map also tracks, per element, how many corpus entries contain it
    (maintained by the corpus), which the energy schedule turns into a
    rarity weight.
    """

    def __init__(self) -> None:
        self.seen: Set[tuple] = set()
        #: element -> number of corpus entries whose signature contains it.
        self.corpus_freq: Dict[tuple, int] = {}
        #: Bumped whenever ``seen`` or ``corpus_freq`` changes, so energy
        #: caches know when to recompute.
        self.version = 0

    def observe(self, signature: FrozenSet[tuple]) -> FrozenSet[tuple]:
        """Fold ``signature`` in; returns the globally new elements."""
        new = signature - self.seen
        if new:
            self.seen |= new
            self.version += 1
        return frozenset(new)

    def count_corpus_entry(self, signature: FrozenSet[tuple]) -> None:
        """Register one corpus entry's signature in the frequency table."""
        freq = self.corpus_freq
        for element in signature:
            freq[element] = freq.get(element, 0) + 1
        self.version += 1

    def rarity(self, signature: FrozenSet[tuple]) -> float:
        """Energy weight of a signature: rare elements count for more.

        Iterates in sorted order so the floating-point sum is identical
        across processes regardless of set iteration order (hash
        randomization must not perturb scheduling decisions).
        """
        freq = self.corpus_freq
        total = 0.0
        for element in sorted(signature):
            total += 1.0 / freq.get(element, 1)
        return total

    def counts_by_tag(self) -> Dict[str, int]:
        """Covered element counts per tag (``insn``/``gpr``/``csr``/...)."""
        counts: Dict[str, int] = {}
        for tag, _value in self.seen:
            counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self.seen)
