"""ISA-aware mutation operators over instruction-word lists.

Unlike a byte-level fuzzer, every operator here goes through the
:mod:`repro.isa` decoder/encoder pair: operands are extracted from the
decoded instruction, perturbed, and **re-encoded**, so mutated inputs
are always streams of architecturally valid instructions (modulo the
runtime behaviour the fuzzer is hunting — wild branches, traps, hangs).
Operators:

* ``operand``  — swap one register operand for another
* ``imm``      — nudge an immediate (±1/±4, sign flip, zero, random)
* ``insert``   — insert a freshly generated random-but-valid instruction
* ``delete``   — delete a small slice
* ``duplicate``— duplicate a small slice
* ``splice``   — graft a slice of a donor corpus entry in
* ``shuffle``  — shuffle basic blocks (split at control flow)

All randomness flows through the caller's ``random.Random``, so a seeded
engine run replays the exact same mutation sequence.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..isa.csr import CsrFile
from ..isa.decoder import Decoder, IsaConfig
from ..isa.encoder import EncodingError, encode, operand_roles

#: Mnemonics never *generated* by the insert operator: they either
#: terminate the run trivially (ecall/ebreak would dominate triage with
#: one uninteresting trap class) or stop the clock (wfi).  They can still
#: reach the fuzzer through seed programs and survive splices.
_NO_GENERATE = frozenset({"ecall", "ebreak", "c.ebreak", "wfi", "mret"})

#: Operand role -> Decoded attribute holding its value.
_ROLE_FIELDS = {
    "rd": "rd", "frd": "rd",
    "rs1": "rs1", "frs1": "rs1",
    "rs2": "rs2", "frs2": "rs2",
    "imm": "imm", "csr": "csr",
}

_REGISTER_ROLES = ("rd", "frd", "rs1", "frs1", "rs2", "frs2")

#: Hard cap on input length, so splice/duplicate cannot grow inputs
#: without bound over a long campaign.
MAX_BODY_WORDS = 256

#: (operator name, weight) — weights picked so structural operators
#: (insert/splice) dominate early coverage growth while cheap operand
#: tweaks keep refining existing paths.
_OPERATORS = (
    ("operand", 4),
    ("imm", 4),
    ("insert", 5),
    ("delete", 2),
    ("duplicate", 1),
    ("splice", 3),
    ("shuffle", 1),
)


class IsaMutator:
    """Seeded, ISA-aware mutation of instruction-word tuples."""

    def __init__(self, isa: IsaConfig,
                 max_body_words: int = MAX_BODY_WORDS) -> None:
        self.isa = isa
        self.decoder = Decoder(isa)
        self.max_body_words = max_body_words
        self._encodable = sorted(
            (spec for spec in self.decoder.specs
             if spec.encode is not None and spec.name not in _NO_GENERATE),
            key=lambda spec: spec.name,
        )
        self._csrs: Tuple[int, ...] = tuple(sorted(
            CsrFile(modules=set(isa.modules)).known_addresses()))

    # -- helpers -----------------------------------------------------------

    def _operands(self, decoded) -> List[int]:
        return [getattr(decoded, _ROLE_FIELDS[role])
                for role in operand_roles(decoded.spec)]

    def _reencode(self, name: str, values: Sequence[int]) -> Optional[int]:
        try:
            return encode(self.decoder, name, *values)
        except EncodingError:
            return None

    def _random_operand(self, role: str, rng: random.Random) -> int:
        if role in _REGISTER_ROLES:
            return rng.randrange(32)
        if role == "csr":
            return rng.choice(self._csrs) if self._csrs else 0x340
        # Immediate: mix small signed values, aligned offsets, and shift
        # amounts; encoders reject out-of-range values and the caller
        # retries, so over-sampling is harmless.
        kind = rng.randrange(4)
        if kind == 0:
            return rng.randint(-32, 31)
        if kind == 1:
            return rng.randrange(0, 128, 4)
        if kind == 2:
            return rng.choice((-2, -4, -8, -16, 2, 4, 8, 16))
        return rng.randint(-2048, 2047)

    def random_instruction(self, rng: random.Random,
                           attempts: int = 16) -> Optional[int]:
        """One freshly encoded random instruction, or ``None``.

        Compressed forms constrain registers and immediates; rather than
        teaching this module every constraint, invalid operand draws are
        rejected by the encoder and simply retried.
        """
        for _ in range(attempts):
            spec = rng.choice(self._encodable)
            values = [self._random_operand(role, rng)
                      for role in operand_roles(spec)]
            word = self._reencode(spec.name, values)
            if word is not None:
                return word
        return None

    def _decodable_indices(self, words: Sequence[int],
                           need_role: Optional[str] = None) -> List[int]:
        indices = []
        for index, word in enumerate(words):
            decoded = self.decoder.try_decode(word)
            if decoded is None or decoded.spec.encode is None:
                continue
            roles = operand_roles(decoded.spec)
            if need_role == "reg":
                if not any(r in _REGISTER_ROLES for r in roles):
                    continue
            elif need_role is not None and need_role not in roles:
                continue
            indices.append(index)
        return indices

    # -- operators ---------------------------------------------------------

    def _op_operand(self, words: List[int], rng: random.Random,
                    donors) -> bool:
        indices = self._decodable_indices(words, need_role="reg")
        if not indices:
            return False
        index = rng.choice(indices)
        decoded = self.decoder.try_decode(words[index])
        roles = operand_roles(decoded.spec)
        values = self._operands(decoded)
        reg_slots = [i for i, role in enumerate(roles)
                     if role in _REGISTER_ROLES]
        slot = rng.choice(reg_slots)
        for _ in range(8):
            candidate = list(values)
            candidate[slot] = rng.randrange(32)
            word = self._reencode(decoded.spec.name, candidate)
            if word is not None and word != words[index]:
                words[index] = word
                return True
        return False

    def _op_imm(self, words: List[int], rng: random.Random, donors) -> bool:
        indices = self._decodable_indices(words, need_role="imm")
        if not indices:
            return False
        index = rng.choice(indices)
        decoded = self.decoder.try_decode(words[index])
        roles = operand_roles(decoded.spec)
        values = self._operands(decoded)
        slot = roles.index("imm")
        for _ in range(8):
            kind = rng.randrange(6)
            base = values[slot]
            if kind == 0:
                nudged = base + rng.choice((-1, 1))
            elif kind == 1:
                nudged = base + rng.choice((-4, 4))
            elif kind == 2:
                nudged = -base
            elif kind == 3:
                nudged = 0
            elif kind == 4:
                nudged = base ^ (1 << rng.randrange(5))
            else:
                nudged = self._random_operand("imm", rng)
            candidate = list(values)
            candidate[slot] = nudged
            word = self._reencode(decoded.spec.name, candidate)
            if word is not None and word != words[index]:
                words[index] = word
                return True
        return False

    def _op_insert(self, words: List[int], rng: random.Random,
                   donors) -> bool:
        word = self.random_instruction(rng)
        if word is None:
            return False
        words.insert(rng.randint(0, len(words)), word)
        return True

    def _op_delete(self, words: List[int], rng: random.Random,
                   donors) -> bool:
        if len(words) <= 1:
            return False
        length = min(rng.randint(1, 4), len(words) - 1)
        start = rng.randint(0, len(words) - length)
        del words[start:start + length]
        return True

    def _op_duplicate(self, words: List[int], rng: random.Random,
                      donors) -> bool:
        if not words:
            return False
        length = min(rng.randint(1, 4), len(words))
        start = rng.randint(0, len(words) - length)
        chunk = words[start:start + length]
        at = rng.randint(0, len(words))
        words[at:at] = chunk
        return True

    def _op_splice(self, words: List[int], rng: random.Random,
                   donors) -> bool:
        if not donors:
            return False
        donor = list(donors[rng.randrange(len(donors))])
        if not donor:
            return False
        length = min(rng.randint(1, 8), len(donor))
        start = rng.randint(0, len(donor) - length)
        chunk = donor[start:start + length]
        at = rng.randint(0, len(words))
        words[at:at] = chunk
        return True

    def _op_shuffle(self, words: List[int], rng: random.Random,
                    donors) -> bool:
        blocks: List[List[int]] = [[]]
        for word in words:
            blocks[-1].append(word)
            decoded = self.decoder.try_decode(word)
            if decoded is not None and (decoded.spec.is_branch
                                        or decoded.spec.is_jump
                                        or decoded.spec.is_system):
                blocks.append([])
        blocks = [block for block in blocks if block]
        if len(blocks) < 2:
            return False
        rng.shuffle(blocks)
        words[:] = [word for block in blocks for word in block]
        return True

    # -- entry point -------------------------------------------------------

    def mutate(self, words: Sequence[int], rng: random.Random,
               donors: Sequence[Sequence[int]] = ()) -> Tuple[int, ...]:
        """Apply 1–3 random operators and return the mutated word tuple.

        ``donors`` are other corpus entries' word lists (splice sources).
        The result is always non-empty, within the body-length cap, and
        composed entirely of encoder-produced or donor-inherited words.
        """
        ops = {name: getattr(self, f"_op_{name}") for name, _ in _OPERATORS}
        names = [name for name, _ in _OPERATORS]
        weights = [weight for _, weight in _OPERATORS]
        mutated = list(words)
        applied = 0
        rounds = rng.randint(1, 3)
        for _ in range(rounds * 4):
            if applied >= rounds:
                break
            name = rng.choices(names, weights=weights)[0]
            if ops[name](mutated, rng, donors):
                applied += 1
        if not mutated:
            fallback = self.random_instruction(rng)
            mutated = [fallback if fallback is not None else words[0]]
        if len(mutated) > self.max_body_words:
            del mutated[self.max_body_words:]
        return tuple(mutated)
