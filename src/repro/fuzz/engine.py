"""The coverage-guided fuzzing engine: scheduler, batches, parallelism.

An AFL-style greybox loop closed over the repo's own layers: inputs are
instruction-word programs run on the VP (:mod:`.executor`), the feedback
signal is the paper's coverage metric plus TB edges (:mod:`.feedback`),
mutations go through the ISA encoder/decoder (:mod:`.mutators`), and the
corpus keeps one minimized input per coverage signature (:mod:`.corpus`).

**Determinism.** A run is a pure function of ``(seed corpus, FuzzConfig
seed, iterations)``: all randomness flows through one seeded PRNG, and
mutants are drawn in fixed-size batches *before* any of the batch's
results are folded back into the corpus.  Executions are independent
(the evaluator restores a pristine snapshot between runs), so a batch
can be executed sequentially or fanned out to a spawn-safe worker pool
— the same pattern as :mod:`repro.faultsim.parallel` — and the corpus
trajectory is bit-identical either way: same ``seed`` ⇒ same final
corpus signatures for any ``jobs``.  (A wall-clock ``time_budget`` stops
between batches and therefore trades this invariance for bounded
runtime — iteration-bounded runs are the reproducible ones.)
"""

from __future__ import annotations

import hashlib
import random
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..coverage.report import empty_report
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR
from ..telemetry.session import resolve as _resolve_telemetry
from .corpus import Corpus, CorpusEntry
from .executor import (
    EvalResult,
    FINDING_OUTCOMES,
    OUTCOME_DIVERGENCE,
    ProgramEvaluator,
    words_from_program,
)
from .feedback import FeedbackMap
from .mutators import MAX_BODY_WORDS, IsaMutator
from .triage import TriageReport

__all__ = [
    "FuzzConfig",
    "FuzzEngine",
    "FuzzResult",
    "suite_seeds",
    "trivial_seed",
]


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing session."""

    iterations: int = 2000          # mutant executions (seeds/minimize extra)
    seed: int = 0                   # master PRNG seed
    jobs: int = 1                   # worker processes (0 = auto, 1 = inline)
    batch_size: int = 32            # mutants drawn before results fold back
    max_instructions: int = 5000    # per-execution budget (exhaustion = hang)
    max_body_words: int = MAX_BODY_WORDS
    minimize: bool = True           # trim corpus adds to minimal inputs
    minimize_evals: int = 24        # extra executions per minimization
    lockstep: bool = False          # differential oracle on corpus adds
    time_budget: Optional[float] = None  # wall-clock stop (breaks jobs parity)
    backend: str = "fastpath"       # execution backend for evaluators


# ----------------------------------------------------------------------
# Seed corpora
# ----------------------------------------------------------------------

def trivial_seed(isa: IsaConfig = RV32IMC_ZICSR
                 ) -> List[Tuple[str, Tuple[int, ...]]]:
    """The minimal seed corpus: one ``addi`` instruction."""
    from ..isa.encoder import encode

    decoder = Decoder(isa)
    return [("trivial", (encode(decoder, "addi", 5, 5, 1),))]


def suite_seeds(isa: IsaConfig = RV32IMC_ZICSR, seed: int = 0,
                torture_programs: int = 2,
                ) -> List[Tuple[str, Tuple[int, ...]]]:
    """Seeds from the three existing testgen suites.

    The architectural and unit suites contribute their directed programs;
    the Torture generator contributes ``torture_programs`` random ones
    derived from the master ``seed`` — so the whole seed corpus, like the
    rest of the session, is a pure function of the seed.
    """
    from ..testgen import (ArchSuiteGenerator, TortureConfig,
                           TortureGenerator, UnitSuiteGenerator)

    decoder = Decoder(isa)
    programs: List[Tuple[str, object]] = []
    programs.extend(ArchSuiteGenerator(isa).generate())
    programs.extend(UnitSuiteGenerator(isa, seed=seed).generate())
    torture = TortureGenerator(isa, TortureConfig(length=120, seed=seed))
    programs.extend(torture.generate_suite(torture_programs,
                                           start_seed=seed))
    seeds = []
    for name, program in programs:
        words = words_from_program(program, isa, decoder=decoder)
        if words:
            seeds.append((name, words))
    return seeds


# ----------------------------------------------------------------------
# Worker pool (spawn-safe, same pattern as faultsim.parallel)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzSpec:
    """Everything a worker needs to build its evaluator — picklable."""

    isa_name: str
    max_instructions: int
    backend: str = "fastpath"


_WORKER_EVALUATOR: Optional[ProgramEvaluator] = None


def _worker_init(spec: FuzzSpec) -> None:
    global _WORKER_EVALUATOR
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)

    _WORKER_EVALUATOR = ProgramEvaluator(
        IsaConfig.from_string(spec.isa_name),
        max_instructions=spec.max_instructions,
        backend=spec.backend,
    )


def _eval_chunk(job: Tuple[Tuple[int, ...], List[Tuple[int, ...]]]
                ) -> Tuple[Tuple[int, ...], List[EvalResult]]:
    indices, inputs = job
    return indices, [_WORKER_EVALUATOR.evaluate(words) for words in inputs]


def _make_pool(jobs: int, spec: FuzzSpec):
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=jobs, initializer=_worker_init,
                    initargs=(spec,))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class FuzzResult:
    """Summary of one fuzzing session."""

    seed: int
    iterations: int                  # mutant executions actually performed
    executions: int                  # total VP runs (seeds + mutants + trim)
    elapsed_seconds: float
    corpus_size: int
    coverage_elements: int
    counts_by_tag: Dict[str, int]
    insn_coverage: float
    gpr_coverage: float
    csr_coverage: float
    signatures: List[frozenset]      # corpus signatures, admission order
    triage: TriageReport
    jobs: int = 1

    @property
    def execs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executions / self.elapsed_seconds

    def signature_digests(self) -> List[str]:
        """Stable short digests of the corpus signatures (for parity
        checks and JSON transport — set contents hashed in sorted order)."""
        digests = []
        for signature in self.signatures:
            payload = repr(sorted(signature)).encode()
            digests.append(hashlib.sha256(payload).hexdigest()[:16])
        return digests

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "executions": self.executions,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "execs_per_second": round(self.execs_per_second, 2),
            "jobs": self.jobs,
            "corpus_size": self.corpus_size,
            "coverage_elements": self.coverage_elements,
            "counts_by_tag": self.counts_by_tag,
            "insn_coverage": round(self.insn_coverage, 6),
            "gpr_coverage": round(self.gpr_coverage, 6),
            "csr_coverage": round(self.csr_coverage, 6),
            "corpus_signatures": self.signature_digests(),
            "triage": self.triage.to_dict(),
        }

    def summary(self) -> str:
        tags = ", ".join(f"{tag} {count}" for tag, count
                         in self.counts_by_tag.items())
        lines = [
            f"fuzz: {self.iterations} mutants / {self.executions} execs "
            f"in {self.elapsed_seconds:.2f}s "
            f"({self.execs_per_second:.0f}/s, jobs={self.jobs}, "
            f"seed={self.seed})",
            f"corpus: {self.corpus_size} inputs, "
            f"{self.coverage_elements} coverage elements ({tags})",
            f"coverage: insn {self.insn_coverage:.1%}  "
            f"gpr {self.gpr_coverage:.1%}  csr {self.csr_coverage:.1%}",
            f"findings: {len(self.triage)} distinct "
            f"{self.triage.counts() or '{}'}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

class FuzzEngine:
    """One fuzzing session over one ISA configuration."""

    def __init__(self, isa: IsaConfig = RV32IMC_ZICSR,
                 config: Optional[FuzzConfig] = None,
                 telemetry=None) -> None:
        self.isa = isa
        self.config = config or FuzzConfig()
        self.telemetry = _resolve_telemetry(telemetry)
        self.metrics = self.telemetry.metrics.namespace("fuzz")
        self.feedback = FeedbackMap()
        self.corpus = Corpus(self.feedback)
        self.mutator = IsaMutator(isa,
                                  max_body_words=self.config.max_body_words)
        self.evaluator = ProgramEvaluator(
            isa, max_instructions=self.config.max_instructions,
            backend=self.config.backend)
        self.triage = TriageReport()
        self.rng = random.Random(self.config.seed)
        self.executions = 0       # every VP run (seeds, mutants, trimming)
        self.mutant_execs = 0     # mutant runs only (the iteration budget)
        self._universe = empty_report(isa)
        self._pool = None

    # -- evaluation --------------------------------------------------------

    def _evaluate_one(self, words: Sequence[int]) -> EvalResult:
        self.executions += 1
        return self.evaluator.evaluate(words)

    def _evaluate_batch(self, batch: List[Tuple[int, ...]]
                        ) -> List[EvalResult]:
        """Evaluate a batch, in order; uses the pool when available.

        Executions are pure, so fan-out changes wall-clock only — results
        are reassembled into submission order before any corpus update.
        """
        if self._pool is None or len(batch) <= 1:
            return [self._evaluate_one(words) for words in batch]
        jobs = self._jobs
        size = max(1, -(-len(batch) // (jobs * 2)))
        chunks = [
            (tuple(range(start, min(start + size, len(batch)))),
             batch[start:start + size])
            for start in range(0, len(batch), size)
        ]
        ordered: List[Optional[EvalResult]] = [None] * len(batch)
        for indices, results in self._pool.imap_unordered(_eval_chunk,
                                                          chunks):
            for index, result in zip(indices, results):
                ordered[index] = result
        self.executions += len(batch)
        return ordered  # type: ignore[return-value]

    def _start_pool(self) -> None:
        jobs = self.config.jobs
        if jobs <= 0:
            import os
            jobs = os.cpu_count() or 1
        self._jobs = max(1, jobs)
        if self._jobs == 1:
            return
        spec = FuzzSpec(isa_name=self.isa.name,
                        max_instructions=self.config.max_instructions,
                        backend=self.config.backend)
        try:
            self._pool = _make_pool(self._jobs, spec)
        except (OSError, ImportError, ValueError, RuntimeError) as exc:
            warnings.warn(
                f"could not start {self._jobs} fuzz workers ({exc}); "
                "continuing single-process", RuntimeWarning, stacklevel=2)
            self._jobs = 1
            self._pool = None

    def _stop_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    # -- corpus admission --------------------------------------------------

    def _minimize(self, words: Tuple[int, ...], signature: frozenset,
                  instructions: int) -> Tuple[Tuple[int, ...], int]:
        """Greedy chunked trim preserving the exact coverage signature."""
        best = list(words)
        best_insns = instructions
        budget = self.config.minimize_evals
        chunk = max(1, len(best) // 2)
        while chunk >= 1 and budget > 0:
            index = 0
            while index < len(best) and budget > 0 and len(best) > 1:
                candidate = best[:index] + best[index + chunk:]
                if not candidate:
                    break
                result = self._evaluate_one(candidate)
                budget -= 1
                if result.signature == signature:
                    best = candidate
                    best_insns = result.instructions
                else:
                    index += chunk
            chunk //= 2
        return tuple(best), best_insns

    def _process(self, words: Tuple[int, ...], result: EvalResult,
                 name: str = "") -> bool:
        """Fold one execution's result into feedback/triage/corpus."""
        new = self.feedback.observe(result.signature)
        if result.outcome in FINDING_OUTCOMES \
                and result.outcome != OUTCOME_DIVERGENCE:
            if self.triage.record(words, result, self.mutant_execs):
                self.metrics.counter(f"findings.{result.outcome}").inc()
        if not new:
            return False
        admitted_words = words
        instructions = result.instructions
        if self.config.minimize and len(words) > 1:
            admitted_words, instructions = self._minimize(
                words, result.signature, result.instructions)
        entry = CorpusEntry(
            words=admitted_words,
            signature=result.signature,
            new_elements=new,
            instructions=instructions,
            found_at=self.mutant_execs,
            name=name,
        )
        if not self.corpus.add(entry):
            return False
        self.metrics.counter("corpus_adds").inc()
        if self.config.lockstep:
            detail = self.evaluator.check_divergence(admitted_words)
            if detail is not None:
                if self.triage.record_divergence(
                        admitted_words, detail, instructions,
                        self.mutant_execs):
                    self.metrics.counter("findings.divergence").inc()
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "fuzz.coverage",
                execs=self.mutant_execs,
                corpus_size=len(self.corpus),
                coverage_elements=len(self.feedback),
                new_elements=len(new),
                input_words=len(admitted_words),
            )
        return True

    # -- main loop ---------------------------------------------------------

    def run(self, seeds: Optional[Sequence[Tuple[str, Tuple[int, ...]]]]
            = None,
            on_progress: Optional[Callable[[Dict], None]] = None,
            progress_interval: float = 1.0) -> FuzzResult:
        """Fuzz for ``config.iterations`` mutant executions.

        ``seeds`` is a list of ``(name, words)`` pairs (default: the
        trivial one-instruction corpus).  Returns a :class:`FuzzResult`;
        the engine object keeps the final corpus/feedback/triage state
        for inspection.
        """
        config = self.config
        seeds = list(seeds) if seeds is not None else trivial_seed(self.isa)
        if not seeds:
            raise ValueError("fuzzing needs at least one seed input")
        started = time.perf_counter()
        deadline = (started + config.time_budget
                    if config.time_budget is not None else None)
        self._start_pool()
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "fuzz.started", isa=self.isa.name, seed=config.seed,
                iterations=config.iterations, jobs=self._jobs,
                seeds=len(seeds), batch_size=config.batch_size)
        last_report = started
        try:
            # Seed round: evaluate and admit in order (dedup by signature).
            results = self._evaluate_batch([words for _, words in seeds])
            for (name, words), result in zip(seeds, results):
                self._process(words, result, name=name)
            # Mutation rounds.
            while self.mutant_execs < config.iterations:
                if deadline is not None \
                        and time.perf_counter() >= deadline:
                    break
                batch_size = min(config.batch_size,
                                 config.iterations - self.mutant_execs)
                donors = self.corpus.donor_words()
                batch = []
                for _ in range(batch_size):
                    parent = self.corpus.schedule(self.rng)
                    batch.append(self.mutator.mutate(parent.words, self.rng,
                                                     donors))
                results = self._evaluate_batch(batch)
                for words, result in zip(batch, results):
                    self.mutant_execs += 1
                    self._process(words, result)
                now = time.perf_counter()
                if (self.telemetry.enabled or on_progress is not None) \
                        and now - last_report >= progress_interval:
                    progress = self._progress(now - started)
                    if self.telemetry.enabled:
                        self.telemetry.events.emit("fuzz.progress",
                                                   **progress)
                    if on_progress is not None:
                        on_progress(progress)
                    last_report = now
        finally:
            self._stop_pool()
        elapsed = time.perf_counter() - started
        return self._finish(elapsed, on_progress)

    def _progress(self, elapsed: float) -> Dict:
        rate = self.executions / elapsed if elapsed > 0 else 0.0
        return {
            "execs": self.mutant_execs,
            "total": self.config.iterations,
            "corpus_size": len(self.corpus),
            "coverage_elements": len(self.feedback),
            "findings": len(self.triage),
            "execs_per_second": round(rate, 1),
        }

    def _union_report(self):
        """The union coverage report of everything the session covered."""
        union = self._universe
        union.insn_types = {value for tag, value in self.feedback.seen
                            if tag == "insn"}
        union.gprs_read = {value for tag, value in self.feedback.seen
                           if tag == "gpr"}
        union.fprs_read = {value for tag, value in self.feedback.seen
                           if tag == "fpr"}
        union.csrs_accessed = {value for tag, value in self.feedback.seen
                               if tag == "csr"}
        return union

    def _finish(self, elapsed: float,
                on_progress: Optional[Callable[[Dict], None]]) -> FuzzResult:
        union = self._union_report()
        result = FuzzResult(
            seed=self.config.seed,
            iterations=self.mutant_execs,
            executions=self.executions,
            elapsed_seconds=elapsed,
            corpus_size=len(self.corpus),
            coverage_elements=len(self.feedback),
            counts_by_tag=self.feedback.counts_by_tag(),
            insn_coverage=union.insn_coverage,
            gpr_coverage=union.gpr_coverage,
            csr_coverage=union.csr_coverage,
            signatures=self.corpus.signatures(),
            triage=self.triage,
            jobs=self._jobs,
        )
        if on_progress is not None:
            on_progress(self._progress(elapsed))
        self.metrics.counter("execs").inc(self.executions)
        self.metrics.counter("mutant_execs").inc(self.mutant_execs)
        self.metrics.gauge("corpus_size").set(result.corpus_size)
        self.metrics.gauge("coverage_elements").set(result.coverage_elements)
        self.metrics.gauge("execs_per_second").set(
            round(result.execs_per_second, 2))
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "fuzz.finished",
                executions=result.executions,
                iterations=result.iterations,
                corpus_size=result.corpus_size,
                coverage_elements=result.coverage_elements,
                findings=len(self.triage),
                elapsed_seconds=round(elapsed, 3),
                execs_per_second=round(result.execs_per_second, 2),
                jobs=self._jobs,
            )
        return result
