"""Finding triage: deduplicated classification of abnormal executions.

Findings are grouped by a stable triage key — ``(outcome, trap cause)``
— so a campaign that provokes the same illegal-instruction trap ten
thousand times reports one finding with a count, keeping triage output
readable and machine-parsable regardless of campaign length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .executor import EvalResult, ProgramBuilder

#: Human-readable names for RISC-V mcause values the fuzzer provokes.
_CAUSE_NAMES = {
    0: "insn_addr_misaligned",
    1: "insn_access_fault",
    2: "illegal_instruction",
    3: "breakpoint",
    4: "load_addr_misaligned",
    5: "load_access_fault",
    6: "store_addr_misaligned",
    7: "store_access_fault",
    8: "ecall_u",
    11: "ecall_m",
}


def _cause_name(cause: Optional[int]) -> str:
    if cause is None:
        return "-"
    return _CAUSE_NAMES.get(cause, f"cause_{cause}")


@dataclass
class FuzzFinding:
    """One distinct abnormal behaviour, with its first witness input."""

    outcome: str                      # trap | hang | divergence
    trap_cause: Optional[int]
    detail: str                       # cause name or divergence detail
    words: Tuple[int, ...]            # first input that exhibited it
    instructions: int                 # executed before the event
    found_at: int                     # execution index of first witness
    count: int = 1

    def key(self) -> Tuple[str, str]:
        return (self.outcome, self.detail)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "trap_cause": self.trap_cause,
            "detail": self.detail,
            "count": self.count,
            "instructions": self.instructions,
            "found_at": self.found_at,
            "code_hex": ProgramBuilder.encode_words(self.words).hex(),
            "words": len(self.words),
        }


class TriageReport:
    """Deduplicated findings of one fuzzing session."""

    def __init__(self) -> None:
        self.findings: Dict[Tuple[str, str], FuzzFinding] = {}

    def record(self, words: Sequence[int], result: EvalResult,
               found_at: int) -> bool:
        """Fold one abnormal execution in; True if the class is new."""
        finding = FuzzFinding(
            outcome=result.outcome,
            trap_cause=result.trap_cause,
            detail=_cause_name(result.trap_cause)
            if result.outcome == "trap" else result.stop_reason,
            words=tuple(words),
            instructions=result.instructions,
            found_at=found_at,
        )
        return self._fold(finding)

    def record_divergence(self, words: Sequence[int], detail: str,
                          instructions: int, found_at: int) -> bool:
        """Fold one lockstep-oracle divergence in; True if new."""
        return self._fold(FuzzFinding(
            outcome="divergence",
            trap_cause=None,
            detail=detail,
            words=tuple(words),
            instructions=instructions,
            found_at=found_at,
        ))

    def _fold(self, finding: FuzzFinding) -> bool:
        existing = self.findings.get(finding.key())
        if existing is not None:
            existing.count += 1
            return False
        self.findings[finding.key()] = finding
        return True

    # -- accessors / rendering ---------------------------------------------

    def __len__(self) -> int:
        return len(self.findings)

    def counts(self) -> Dict[str, int]:
        """Distinct finding classes per outcome."""
        totals: Dict[str, int] = {}
        for outcome, _detail in self.findings:
            totals[outcome] = totals.get(outcome, 0) + 1
        return dict(sorted(totals.items()))

    def ordered(self) -> List[FuzzFinding]:
        return [self.findings[key] for key in sorted(self.findings)]

    def to_dict(self) -> dict:
        return {
            "classes": len(self.findings),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.ordered()],
        }

    def table(self) -> str:
        header = (f"{'outcome':<12} {'detail':<24} {'count':>8} "
                  f"{'insns':>8} {'found@':>8}")
        rows = [header, "-" * len(header)]
        for finding in self.ordered():
            rows.append(
                f"{finding.outcome:<12} {finding.detail:<24.24} "
                f"{finding.count:>8} {finding.instructions:>8} "
                f"{finding.found_at:>8}"
            )
        if len(rows) == 2:
            rows.append("(no findings)")
        return "\n".join(rows)
