"""The fuzzing corpus: coverage-deduplicated inputs + energy scheduling.

A corpus entry is an instruction-word tuple plus the coverage signature
it produced (see :func:`repro.coverage.coverage_signature`).  Two inputs
with the same signature are redundant by definition of the metric, so
the corpus keys on signatures.  The scheduler implements an AFL-style
**energy (power) schedule**: entries whose signatures contain elements
few other entries reach are picked more often, steering mutation energy
toward rare coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .feedback import FeedbackMap


@dataclass
class CorpusEntry:
    """One deduplicated, (optionally) minimized input."""

    words: Tuple[int, ...]
    signature: FrozenSet[tuple]
    #: Elements globally unseen when this entry was admitted.
    new_elements: FrozenSet[tuple]
    instructions: int
    #: Execution index at admission (0 for seeds) — the coverage-over-time
    #: x-axis.
    found_at: int
    name: str = ""


class Corpus:
    """Signature-keyed input store with energy-weighted scheduling."""

    def __init__(self, feedback: FeedbackMap) -> None:
        self.feedback = feedback
        self.entries: List[CorpusEntry] = []
        self._by_signature: Dict[FrozenSet[tuple], int] = {}
        self._weights: List[float] = []
        self._weights_version = -1

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: CorpusEntry) -> bool:
        """Admit ``entry`` unless an input with its signature exists."""
        if entry.signature in self._by_signature:
            return False
        self._by_signature[entry.signature] = len(self.entries)
        self.entries.append(entry)
        self.feedback.count_corpus_entry(entry.signature)
        return True

    def signatures(self) -> List[FrozenSet[tuple]]:
        """All entry signatures, in admission order."""
        return [entry.signature for entry in self.entries]

    def donor_words(self) -> List[Tuple[int, ...]]:
        """Word lists usable as splice donors, in admission order."""
        return [entry.words for entry in self.entries]

    # -- energy schedule ---------------------------------------------------

    def _energy(self, entry: CorpusEntry) -> float:
        # Rarity-driven: an entry reaching elements no other entry reaches
        # gets proportionally more fuzzing energy; a mild length penalty
        # favors short inputs (cheaper executions, cleaner mutants).
        rarity = self.feedback.rarity(entry.signature)
        return rarity / (1.0 + 0.01 * len(entry.words))

    def _refresh_weights(self) -> None:
        if self._weights_version == self.feedback.version \
                and len(self._weights) == len(self.entries):
            return
        self._weights = [self._energy(entry) for entry in self.entries]
        self._weights_version = self.feedback.version

    def schedule(self, rng: random.Random) -> CorpusEntry:
        """Pick the next entry to mutate, weighted by energy."""
        if not self.entries:
            raise ValueError("cannot schedule from an empty corpus")
        self._refresh_weights()
        index = rng.choices(range(len(self.entries)),
                            weights=self._weights)[0]
        return self.entries[index]
