"""Coverage-guided fuzzing over the VP — closes the testgen→coverage loop.

An AFL-style greybox fuzzer whose inputs are RISC-V instruction streams:
the three static testgen suites become the seed corpus, mutations go
through the :mod:`repro.isa` encoder (always re-encoding to valid
instructions), and the feedback signal is the coverage signature the
paper's quality metric already defines — instruction types, registers,
CSRs — extended with a translation-block edge bitmap.  See
docs/fuzzing.md for the design.
"""

from .corpus import Corpus, CorpusEntry
from .engine import (
    FuzzConfig,
    FuzzEngine,
    FuzzResult,
    suite_seeds,
    trivial_seed,
)
from .executor import (
    EvalResult,
    FINDING_OUTCOMES,
    OUTCOME_DIVERGENCE,
    OUTCOME_EXIT,
    OUTCOME_EXIT_NONZERO,
    OUTCOME_HANG,
    OUTCOME_TRAP,
    ProgramBuilder,
    ProgramEvaluator,
    words_from_program,
)
from .feedback import EDGE_MAP_SIZE, FeedbackMap, TBEdgePlugin, edge_id
from .mutators import IsaMutator, MAX_BODY_WORDS
from .triage import FuzzFinding, TriageReport

__all__ = [
    "Corpus",
    "CorpusEntry",
    "EDGE_MAP_SIZE",
    "EvalResult",
    "FINDING_OUTCOMES",
    "FeedbackMap",
    "FuzzConfig",
    "FuzzEngine",
    "FuzzFinding",
    "FuzzResult",
    "IsaMutator",
    "MAX_BODY_WORDS",
    "OUTCOME_DIVERGENCE",
    "OUTCOME_EXIT",
    "OUTCOME_EXIT_NONZERO",
    "OUTCOME_HANG",
    "OUTCOME_TRAP",
    "ProgramBuilder",
    "ProgramEvaluator",
    "TBEdgePlugin",
    "TriageReport",
    "edge_id",
    "suite_seeds",
    "trivial_seed",
    "words_from_program",
]
