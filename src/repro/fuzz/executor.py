"""Program construction and evaluation for the fuzzer.

Fuzz inputs are tuples of raw instruction words (16-bit compressed or
32-bit).  :class:`ProgramBuilder` wraps a word list in a fixed prologue
(scratch-arena base pointer, a few seeded registers) and epilogue (exit
ecall) so every input is a complete runnable image, and
:class:`ProgramEvaluator` runs inputs on a single reused
:class:`~repro.vp.machine.Machine` — dirty-page snapshot/restore between
runs keeps per-execution state reset at O(pages touched) instead of
re-allocating a machine per input, while guaranteeing executions are
independent (no leftover RAM from a previous input can leak into the
next, which is what makes batch results order-independent and the
parallel engine bit-identical to the sequential one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..asm import Program
from ..coverage.collector import coverage_signature
from ..coverage.report import empty_report
from ..isa.decoder import Decoder, IsaConfig
from ..isa.encoder import encode
from ..vp.cpu import (
    STOP_EXIT,
    STOP_LIVELOCK,
    STOP_MAX_INSNS,
    STOP_WFI,
)
from ..vp.machine import Machine, MachineConfig, RAM_BASE, STOP_UNHANDLED_TRAP
from .feedback import InsnTypePlugin, TBEdgePlugin

#: Scratch arena for fuzzed memory instructions: 1 MiB into RAM, far from
#: the code at RAM_BASE, inside the default 4 MiB RAM.
SCRATCH_BASE = RAM_BASE + 0x0010_0000

# Triage outcome classes.
OUTCOME_EXIT = "exit"                  # clean guest exit, code 0
OUTCOME_EXIT_NONZERO = "exit_nonzero"  # clean guest exit, code != 0
OUTCOME_TRAP = "trap"                  # unhandled trap (finding)
OUTCOME_HANG = "hang"                  # budget exhausted / wfi-asleep (finding)
OUTCOME_DIVERGENCE = "divergence"      # lockstep oracle mismatch (finding)

#: Outcomes the triage layer treats as findings.
FINDING_OUTCOMES = (OUTCOME_TRAP, OUTCOME_HANG, OUTCOME_DIVERGENCE)


@dataclass(frozen=True)
class EvalResult:
    """Outcome of executing one fuzz input — plain picklable data."""

    signature: FrozenSet[tuple]
    outcome: str
    stop_reason: str
    exit_code: Optional[int]
    trap_cause: Optional[int]
    instructions: int

    def to_dict(self) -> dict:
        """JSON-serializable view; :meth:`from_dict` round-trips it.

        The signature frozenset is emitted as a sorted list of
        ``[tag, value]`` pairs so the wire form is canonical — two equal
        results serialize byte-identically, which is what lets cluster
        nodes ship evaluations back over JSON without perturbing the
        coordinator's corpus trajectory.
        """
        return {
            "signature": sorted([tag, value] for tag, value
                                in self.signature),
            "outcome": self.outcome,
            "stop_reason": self.stop_reason,
            "exit_code": self.exit_code,
            "trap_cause": self.trap_cause,
            "instructions": self.instructions,
        }

    @staticmethod
    def from_dict(data: dict) -> "EvalResult":
        return EvalResult(
            signature=frozenset((tag, value) for tag, value
                                in data["signature"]),
            outcome=data["outcome"],
            stop_reason=data["stop_reason"],
            exit_code=data["exit_code"],
            trap_cause=data["trap_cause"],
            instructions=data["instructions"],
        )


def _classify(stop_reason: str, exit_code: Optional[int]) -> str:
    if stop_reason == STOP_EXIT:
        return OUTCOME_EXIT if not exit_code else OUTCOME_EXIT_NONZERO
    if stop_reason == STOP_UNHANDLED_TRAP:
        return OUTCOME_TRAP
    if stop_reason in (STOP_MAX_INSNS, STOP_WFI, STOP_LIVELOCK):
        return OUTCOME_HANG
    return OUTCOME_HANG


class ProgramBuilder:
    """Wraps instruction-word lists into runnable :class:`Program` images."""

    def __init__(self, isa: IsaConfig) -> None:
        self.isa = isa
        self.decoder = Decoder(isa)
        enc = lambda name, *ops: encode(self.decoder, name, *ops)  # noqa: E731
        self.prologue: Tuple[int, ...] = (
            enc("lui", 8, SCRATCH_BASE >> 12),   # x8 -> scratch arena
            enc("addi", 5, 0, 1),
            enc("addi", 6, 0, -1),
            enc("addi", 7, 0, 0x7F),
            enc("addi", 9, 0, 42),
        )
        self.epilogue: Tuple[int, ...] = (
            enc("addi", 10, 0, 0),               # a0 = 0
            enc("addi", 17, 0, 93),              # a7 = exit
            enc("ecall"),
        )

    @staticmethod
    def encode_words(words: Sequence[int]) -> bytes:
        """Instruction words to code bytes (2 or 4 little-endian each)."""
        blob = bytearray()
        for word in words:
            if word & 0x3 == 0x3:
                blob += word.to_bytes(4, "little")
            else:
                blob += (word & 0xFFFF).to_bytes(2, "little")
        return bytes(blob)

    def build(self, words: Sequence[int]) -> Program:
        """A complete program image: prologue + ``words`` + epilogue."""
        blob = self.encode_words(self.prologue + tuple(words) + self.epilogue)
        return Program(segments=[(RAM_BASE, blob)], entry=RAM_BASE,
                       isa_name=self.isa.name)


def words_from_program(program: Program, isa: IsaConfig,
                       decoder: Optional[Decoder] = None,
                       limit: int = 1024) -> Tuple[int, ...]:
    """Decode a program's text segment back into an instruction-word list.

    This is how existing testgen suite programs become fuzzing seeds: the
    text is walked from the entry point and every decodable word is
    collected; the walk stops at the first undecodable word (data padding)
    or after ``limit`` instructions.
    """
    decoder = decoder or Decoder(isa)
    base, blob = program.text_segment
    offset = program.entry - base
    words: List[int] = []
    while offset + 2 <= len(blob) and len(words) < limit:
        halfword = int.from_bytes(blob[offset:offset + 2], "little")
        if halfword & 0x3 == 0x3:
            if offset + 4 > len(blob):
                break
            word = int.from_bytes(blob[offset:offset + 4], "little")
            size = 4
        else:
            word = halfword
            size = 2
        if decoder.try_decode(word) is None:
            break
        words.append(word)
        offset += size
    return tuple(words)


class ProgramEvaluator:
    """Runs fuzz inputs on one reused machine and reports their coverage.

    The machine is snapshotted pristine at construction; every
    :meth:`evaluate` restores that baseline (O(dirty pages)), loads the
    input, runs it under the instruction budget, and returns the combined
    :func:`~repro.coverage.coverage_signature` (instruction types +
    registers + TB edges) plus the triage classification.
    """

    def __init__(self, isa: IsaConfig, max_instructions: int = 5000,
                 backend: str = "fastpath") -> None:
        self.isa = isa
        self.max_instructions = max_instructions
        self.backend = backend
        self.builder = ProgramBuilder(isa)
        self.machine = Machine(MachineConfig(isa=isa, trace_registers=True,
                                             backend=backend))
        self._insns = InsnTypePlugin()
        self._edges = TBEdgePlugin()
        self.machine.add_plugin(self._insns)
        self.machine.add_plugin(self._edges)
        self._baseline = self.machine.snapshot()
        #: Reused report shell: only its hit-sets are rewritten per run.
        self._report = empty_report(isa)
        self.executions = 0

    def evaluate(self, words: Sequence[int]) -> EvalResult:
        """Execute one input and return its coverage + classification."""
        machine = self.machine
        machine.restore(self._baseline)
        machine.load(self.builder.build(words))
        machine.cpu.regs.clear_trace()
        machine.cpu.fregs.clear_trace()
        machine.cpu.csrs.clear_trace()
        self._insns.reset()
        self._edges.reset()
        result = machine.run(max_instructions=self.max_instructions)
        report = self._report
        report.insn_types = self._insns.insn_types
        report.gprs_read = set(machine.cpu.regs.reads)
        report.gprs_written = set(machine.cpu.regs.writes)
        report.fprs_read = set(machine.cpu.fregs.reads)
        report.fprs_written = set(machine.cpu.fregs.writes)
        report.csrs_accessed = (set(machine.cpu.csrs.reads)
                                | set(machine.cpu.csrs.writes))
        signature = coverage_signature(report, self._edges.edges)
        self.executions += 1
        return EvalResult(
            signature=signature,
            outcome=_classify(result.stop_reason, result.exit_code),
            stop_reason=result.stop_reason,
            exit_code=result.exit_code,
            trap_cause=result.trap_cause,
            instructions=result.instructions,
        )

    def check_divergence(self, words: Sequence[int]) -> Optional[str]:
        """Differential oracle: block cache on vs. off, lockstep-compared.

        Returns the divergence detail string, or ``None`` when both
        machines agree — the software analogue of the dual-core lockstep
        check, reusing :func:`repro.vp.lockstep.run_lockstep`.
        """
        from ..vp.lockstep import run_lockstep

        program = self.builder.build(words)
        primary = Machine(MachineConfig(isa=self.isa, backend=self.backend))
        secondary = Machine(MachineConfig(
            isa=self.isa, block_cache_enabled=False))
        outcome = run_lockstep(primary, secondary, program,
                               max_instructions=self.max_instructions,
                               raise_on_divergence=False)
        if outcome.diverged:
            return outcome.divergence.detail
        return None
