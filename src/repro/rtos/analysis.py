"""Schedulability reporting and QTA integration for the RTOS model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .model import (
    RtaResult,
    SimulationResult,
    TaskSpec,
    assign_priorities,
    response_time_analysis,
    simulate,
    total_utilization,
)


@dataclass
class SchedulabilityReport:
    """RTA bounds and simulated responses side by side."""

    tasks: List[TaskSpec]
    rta: RtaResult
    simulation: SimulationResult

    @property
    def utilization(self) -> float:
        return total_utilization(self.tasks)

    @property
    def consistent(self) -> bool:
        """RTA bound >= simulated max response for every bounded task."""
        for task in self.tasks:
            bound = self.rta.bound(task.name)
            observed = self.simulation.max_response.get(task.name, 0)
            if bound is not None and observed > bound:
                return False
        return True

    def table(self) -> str:
        ordered = assign_priorities(self.tasks)
        header = (f"{'task':<12} {'T':>7} {'C':>7} {'D':>7} {'U':>7} "
                  f"{'RTA bound':>10} {'sim max':>8} {'ok':>4}")
        lines = [header, "-" * len(header)]
        for task in ordered:
            bound = self.rta.bound(task.name)
            observed = self.simulation.max_response.get(task.name, 0)
            ok = bound is not None and bound <= task.effective_deadline
            lines.append(
                f"{task.name:<12} {task.period:>7} {task.wcet:>7} "
                f"{task.effective_deadline:>7} {task.utilization:>6.1%} "
                f"{bound if bound is not None else '---':>10} "
                f"{observed:>8} {'yes' if ok else 'NO':>4}"
            )
        lines.append(
            f"total utilization {self.utilization:.1%}; "
            f"RTA {'schedulable' if self.rta.schedulable else 'UNSCHEDULABLE'}; "
            f"simulation misses: {len(self.simulation.deadline_misses)}"
        )
        return "\n".join(lines)


def analyze_taskset(tasks: Sequence[TaskSpec],
                    horizon: Optional[int] = None) -> SchedulabilityReport:
    """RTA plus hyperperiod simulation for one task set."""
    task_list = list(tasks)
    return SchedulabilityReport(
        tasks=task_list,
        rta=response_time_analysis(task_list),
        simulation=simulate(task_list, horizon=horizon),
    )


def taskset_from_wcet_analyses(
    entries: Sequence[Tuple[str, "object", int]],
) -> List[TaskSpec]:
    """Build a task set from QTA analyses.

    ``entries`` is a sequence of ``(name, QtaAnalysis, period_cycles)``;
    each task's WCET is the analysis' static bound, so the schedulability
    verdict inherits the soundness of the WCET chain.
    """
    tasks = []
    for name, analysis, period in entries:
        tasks.append(TaskSpec(
            name=name,
            period=period,
            wcet=analysis.static_bound.cycles,
        ))
    return tasks
