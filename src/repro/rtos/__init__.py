"""Abstract RTOS model: task sets, response-time analysis, simulation."""

from .analysis import (
    SchedulabilityReport,
    analyze_taskset,
    taskset_from_wcet_analyses,
)
from .model import (
    RtaResult,
    SimulationResult,
    TaskSpec,
    assign_priorities,
    hyperperiod,
    response_time_analysis,
    simulate,
    total_utilization,
)

__all__ = [
    "RtaResult",
    "SchedulabilityReport",
    "SimulationResult",
    "TaskSpec",
    "analyze_taskset",
    "assign_priorities",
    "hyperperiod",
    "response_time_analysis",
    "simulate",
    "taskset_from_wcet_analyses",
    "total_utilization",
]
