"""Abstract real-time operating system model.

The Scale4Edge authors' long-running line of work models RTOS behaviour
abstractly (task set + scheduler) to evaluate real-time properties before
target software exists.  This module is that abstraction in Python: a
periodic fixed-priority preemptive task model with

* **response-time analysis** (RTA) — the classic fixed-point iteration
  giving each task's worst-case response bound, and
* a **discrete-event scheduler simulation** over the hyperperiod, giving
  observed response times and deadline misses.

The two are designed to bracket each other: for a schedulable task set the
RTA bound dominates every simulated response (the A8 experiment checks the
invariant), while the synchronous release at t=0 (the *critical instant*)
makes the simulation sharp.

Task WCETs plug in from anywhere — in this ecosystem, typically from a QTA
static bound (see ``examples/rtos_schedulability.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TaskSpec:
    """A periodic task: release every ``period``, run for up to ``wcet``.

    ``deadline`` defaults to the period (implicit deadlines).
    ``priority`` is optional; unset priorities are assigned rate-monotonic
    (shorter period = higher priority).  Larger numbers = higher priority.
    """

    name: str
    period: int
    wcet: int
    deadline: Optional[int] = None
    priority: Optional[int] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be positive")
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: wcet must be positive")
        if self.wcet > self.period:
            raise ValueError(
                f"{self.name}: wcet {self.wcet} exceeds period {self.period}"
            )
        if self.effective_deadline <= 0 or \
                self.effective_deadline > self.period:
            raise ValueError(
                f"{self.name}: deadline must be in (0, period]"
            )

    @property
    def effective_deadline(self) -> int:
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def assign_priorities(tasks: List[TaskSpec]) -> List[TaskSpec]:
    """Fill in missing priorities rate-monotonically.

    Returns new specs ordered by descending priority.  Explicit priorities
    are kept; ties broken by name for determinism.
    """
    explicit = [t for t in tasks if t.priority is not None]
    implicit = sorted((t for t in tasks if t.priority is None),
                      key=lambda t: (t.period, t.name))
    floor = min((t.priority for t in explicit), default=0)
    assigned = []
    for index, task in enumerate(implicit):
        assigned.append(TaskSpec(
            name=task.name, period=task.period, wcet=task.wcet,
            deadline=task.deadline,
            priority=floor - 1 - index,
        ))
    merged = explicit + assigned
    merged.sort(key=lambda t: (-t.priority, t.name))
    return merged


def total_utilization(tasks: List[TaskSpec]) -> float:
    """Sum of per-task utilizations (C_i / T_i)."""
    return sum(t.utilization for t in tasks)


# ---------------------------------------------------------------------------
# Response-time analysis
# ---------------------------------------------------------------------------

@dataclass
class RtaResult:
    """Analytical worst-case response bounds per task."""

    responses: Dict[str, Optional[int]]  # None = iteration diverged
    schedulable: bool

    def bound(self, name: str) -> Optional[int]:
        return self.responses[name]


def response_time_analysis(tasks: List[TaskSpec]) -> RtaResult:
    """Classic RTA for fixed-priority preemptive scheduling.

    ``R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j`` iterated to a
    fixed point; divergence past the deadline marks the task unschedulable.
    """
    ordered = assign_priorities(tasks)
    responses: Dict[str, Optional[int]] = {}
    schedulable = True
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        response = task.wcet
        while True:
            interference = sum(
                math.ceil(response / other.period) * other.wcet
                for other in higher
            )
            next_response = task.wcet + interference
            if next_response == response:
                break
            response = next_response
            if response > task.effective_deadline:
                response = None
                break
        responses[task.name] = response
        if response is None or response > task.effective_deadline:
            schedulable = False
    return RtaResult(responses=responses, schedulable=schedulable)


# ---------------------------------------------------------------------------
# Discrete-event simulation
# ---------------------------------------------------------------------------

@dataclass
class SimulationResult:
    """Observed behaviour over the simulated window."""

    horizon: int
    max_response: Dict[str, int]
    jobs_released: Dict[str, int]
    jobs_completed: Dict[str, int]
    deadline_misses: List[Tuple[str, int]]  # (task, release time)

    @property
    def missed(self) -> bool:
        return bool(self.deadline_misses)


def hyperperiod(tasks: List[TaskSpec], cap: int = 1_000_000) -> int:
    """LCM of the task periods, capped to keep simulations bounded."""
    value = 1
    for task in tasks:
        value = value * task.period // math.gcd(value, task.period)
        if value > cap:
            return cap
    return value


def simulate(tasks: List[TaskSpec], horizon: Optional[int] = None,
             max_misses: int = 100) -> SimulationResult:
    """Event-driven preemptive fixed-priority simulation.

    All tasks release synchronously at t=0 (the critical instant) and then
    strictly periodically.  The default horizon is one hyperperiod.
    """
    ordered = assign_priorities(tasks)
    if horizon is None:
        horizon = hyperperiod(ordered)

    # Per task state: next release time, remaining work of current job,
    # release time of current job (for response computation).
    next_release = {t.name: 0 for t in ordered}
    remaining = {t.name: 0 for t in ordered}
    release_of_job = {t.name: 0 for t in ordered}
    pending = {t.name: False for t in ordered}

    max_response = {t.name: 0 for t in ordered}
    jobs_released = {t.name: 0 for t in ordered}
    jobs_completed = {t.name: 0 for t in ordered}
    misses: List[Tuple[str, int]] = []

    by_priority = ordered  # already sorted descending
    now = 0
    while now < horizon and len(misses) < max_misses:
        # Release jobs due now.
        for task in by_priority:
            while next_release[task.name] <= now:
                if pending[task.name]:
                    # Previous job still running at its successor's
                    # release: definite deadline miss (implicit D <= T).
                    misses.append((task.name, release_of_job[task.name]))
                    pending[task.name] = False
                    remaining[task.name] = 0
                release_of_job[task.name] = next_release[task.name]
                remaining[task.name] = task.wcet
                pending[task.name] = True
                jobs_released[task.name] += 1
                next_release[task.name] += task.period
        # Pick the highest-priority pending job.
        running = next((t for t in by_priority if pending[t.name]), None)
        upcoming = min(next_release[t.name] for t in by_priority)
        if running is None:
            now = min(upcoming, horizon)
            continue
        # Run until completion or the next release, whichever is first.
        finish_at = now + remaining[running.name]
        if finish_at <= upcoming:
            now = finish_at
            pending[running.name] = False
            remaining[running.name] = 0
            jobs_completed[running.name] += 1
            response = now - release_of_job[running.name]
            max_response[running.name] = max(
                max_response[running.name], response)
            if response > running.effective_deadline:
                misses.append((running.name, release_of_job[running.name]))
        else:
            remaining[running.name] -= upcoming - now
            now = upcoming
    return SimulationResult(
        horizon=horizon,
        max_response=max_response,
        jobs_released=jobs_released,
        jobs_completed=jobs_completed,
        deadline_misses=misses,
    )
