"""WCET analysis and QTA co-simulation.

The pipeline mirrors the QEMU Timing Analyzer tool demo:

1. :func:`build_cfg` — reconstruct the control-flow graph from the binary.
2. :func:`run_ait_analysis` — static per-block timing (the synthetic aiT
   substitute) producing an :class:`AitReport`.
3. :func:`preprocess` (``ait2qta``) — the WCET-annotated CFG
   (:class:`WcetCfg`).
4. :func:`compute_wcet_bound` — the static IPET bound.
5. :class:`QtaPlugin` / :func:`analyze_program` — co-simulation of binary
   and annotated CFG on the virtual prototype.
"""

from .ait import AitBlock, AitEdge, AitReport, run_ait_analysis
from .ait2qta import WcetCfg, WcetNode, preprocess
from .bounds import AnnotationError, loop_bounds_from_source
from .cacheanalysis import CacheClassification, PersistentLoop, classify
from .dot import cfg_to_dot, wcet_cfg_to_dot
from .cfg import (
    BasicBlock,
    Cfg,
    CfgBuilder,
    CfgError,
    KIND_BRANCH,
    KIND_CALL,
    KIND_EXIT,
    KIND_FALLTHROUGH,
    KIND_INDIRECT,
    KIND_JUMP,
    KIND_RET,
    build_cfg,
)
from .ipet import WcetBound, WcetError, compute_wcet_bound
from .qta import QtaAnalysis, QtaError, QtaPlugin, QtaResult, analyze_program
from .report import render_block_table, render_full, render_summary

__all__ = [
    "AitBlock",
    "AitEdge",
    "AitReport",
    "AnnotationError",
    "BasicBlock",
    "CacheClassification",
    "Cfg",
    "PersistentLoop",
    "classify",
    "CfgBuilder",
    "CfgError",
    "KIND_BRANCH",
    "KIND_CALL",
    "KIND_EXIT",
    "KIND_FALLTHROUGH",
    "KIND_INDIRECT",
    "KIND_JUMP",
    "KIND_RET",
    "QtaAnalysis",
    "QtaError",
    "QtaPlugin",
    "QtaResult",
    "WcetBound",
    "WcetCfg",
    "WcetError",
    "WcetNode",
    "analyze_program",
    "build_cfg",
    "cfg_to_dot",
    "wcet_cfg_to_dot",
    "compute_wcet_bound",
    "loop_bounds_from_source",
    "preprocess",
    "render_block_table",
    "render_full",
    "render_summary",
    "run_ait_analysis",
]
