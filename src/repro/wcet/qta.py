"""The QEMU Timing Analyzer (QTA) plugin: co-simulation of a binary with
its WCET-annotated control-flow graph.

The plugin observes execution through the VP's version-independent plugin
API (the stand-in for QEMU's TCG plugin interface), tracks which annotated
CFG node the program is in, and accumulates the worst-case time along the
*actually executed* path.  This yields, per run:

* ``wcet_time`` — the simulated worst-case time of the executed path,
* per-node execution counts and the node path itself.

Invariants (checked by the test suite and the T3 benchmark):

``static IPET bound  >=  QTA path time  >=  actual VP cycles``

for trap-free programs, because every node's annotated WCET upper-bounds
its actual cost on the same timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..asm import Program
from ..telemetry.session import resolve as _resolve_telemetry
from ..vp.machine import Machine, MachineConfig
from ..vp.plugins import Plugin
from ..vp.timing import TimingModel
from .ait import run_ait_analysis
from .ait2qta import WcetCfg, preprocess
from .bounds import loop_bounds_from_source
from .cfg import build_cfg
from .ipet import WcetBound, compute_wcet_bound


class QtaError(Exception):
    """Execution left the annotated CFG (e.g. a trap or unmapped code)."""


@dataclass
class QtaResult:
    """Outcome of one timing-annotated simulation."""

    wcet_time: int              # worst-case time of the executed path
    actual_cycles: int          # cycles the VP actually consumed
    instructions: int
    node_path_length: int
    node_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def pessimism(self) -> float:
        """wcet_time / actual_cycles — how conservative the annotation is."""
        if self.actual_cycles == 0:
            return 1.0
        return self.wcet_time / self.actual_cycles


class QtaPlugin(Plugin):
    """Accumulates WCET-annotated time along the executed node path."""

    name = "qta"

    def __init__(self, wcet_cfg: WcetCfg, strict: bool = True,
                 record_path: bool = False) -> None:
        self.cfg = wcet_cfg
        self.strict = strict
        self.record_path = record_path
        self._starts = wcet_cfg.node_by_start
        self.current_node: Optional[int] = None
        self.wcet_time = 0
        self.node_counts: Dict[int, int] = {}
        self.path: List[int] = []
        self.path_length = 0
        self._finalized = False

    def reset(self) -> None:
        self.current_node = None
        self.wcet_time = 0
        self.node_counts = {}
        self.path = []
        self.path_length = 0
        self._finalized = False

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        node_id = self._starts.get(pc)
        if node_id is None:
            return
        if self.current_node is not None:
            edge = (self.current_node, node_id)
            time = self.cfg.edges.get(edge)
            if time is None:
                if self.strict:
                    raise QtaError(
                        f"executed transition node {self.current_node} -> "
                        f"{node_id} is not in the WCET-annotated CFG"
                    )
                time = self.cfg.nodes[self.current_node].wcet
            self.wcet_time += time
        self.current_node = node_id
        self.node_counts[node_id] = self.node_counts.get(node_id, 0) + 1
        self.path_length += 1
        if self.record_path:
            self.path.append(node_id)

    def finalize(self) -> int:
        """Charge the final node's WCET and return the total path time."""
        if not self._finalized and self.current_node is not None:
            self.wcet_time += self.cfg.nodes[self.current_node].wcet
            self._finalized = True
        return self.wcet_time


@dataclass
class QtaAnalysis:
    """End-to-end QTA flow for one program (see :func:`analyze_program`)."""

    program: Program
    wcet_cfg: WcetCfg
    static_bound: WcetBound
    result: QtaResult


def analyze_program(
    source_or_program,
    loop_bounds: Optional[Dict[int, int]] = None,
    isa=None,
    timing: Optional[TimingModel] = None,
    max_instructions: int = 10_000_000,
    name: str = "program",
    edge_sensitive: bool = False,
    icache=None,
    cache_analysis: bool = False,
    telemetry=None,
) -> QtaAnalysis:
    """Run the complete QTA tool-demo flow on one program.

    1. assemble (if given source) and extract ``@loopbound`` annotations,
    2. static analysis -> synthetic aiT report,
    3. ``ait2qta`` preprocessing -> WCET-annotated CFG,
    4. IPET static WCET bound,
    5. co-simulate binary + annotated CFG on the VP with the QTA plugin.

    When the resolved ``telemetry`` session is enabled, the flow records
    per-phase timers under ``wcet.qta.*``, runs the binary once more
    *without* the plugin to measure co-simulation overhead, and emits a
    ``qta.cosim`` summary event.
    """
    import time as _time

    from ..asm import assemble
    from ..isa.decoder import RV32IMC_ZICSR

    telemetry = _resolve_telemetry(telemetry)
    metrics = telemetry.metrics.namespace("wcet.qta")
    isa = isa or RV32IMC_ZICSR
    timing = timing or TimingModel()
    if isinstance(source_or_program, str):
        program = assemble(source_or_program, isa=isa)
        bounds = dict(loop_bounds_from_source(source_or_program, program))
        bounds.update(loop_bounds or {})
    else:
        program = source_or_program
        bounds = dict(loop_bounds or {})

    with metrics.timer("static_seconds"), \
            telemetry.events.span("qta.static_analysis", name=name):
        report = run_ait_analysis(program, loop_bounds=bounds, timing=timing,
                                  name=name, edge_sensitive=edge_sensitive,
                                  icache=icache,
                                  cache_analysis=cache_analysis)
        wcet_cfg = preprocess(report)
        static_bound = compute_wcet_bound(wcet_cfg)

    machine = Machine(MachineConfig(isa=isa, timing=timing, icache=icache))
    machine.load(program)
    plugin = QtaPlugin(wcet_cfg)
    machine.add_plugin(plugin)
    cosim_start = _time.perf_counter()
    with telemetry.events.span("qta.cosim", name=name):
        run = machine.run(max_instructions=max_instructions)
    cosim_seconds = _time.perf_counter() - cosim_start
    metrics.timer("cosim_seconds").observe(cosim_seconds)
    wcet_time = plugin.finalize()
    result = QtaResult(
        wcet_time=wcet_time,
        actual_cycles=run.cycles,
        instructions=run.instructions,
        node_path_length=plugin.path_length,
        node_counts=dict(plugin.node_counts),
    )
    if telemetry.enabled:
        # Co-simulation overhead vs. a plain run of the same binary on a
        # fresh machine — the QTA papers' "plugin cost" number.  Only
        # measured when telemetry is on; a plain run is not free.
        plain_machine = Machine(
            MachineConfig(isa=isa, timing=timing, icache=icache))
        plain_machine.load(program)
        plain_start = _time.perf_counter()
        plain_machine.run(max_instructions=max_instructions)
        plain_seconds = _time.perf_counter() - plain_start
        metrics.timer("plain_seconds").observe(plain_seconds)
        overhead = cosim_seconds / plain_seconds if plain_seconds > 0 else 0.0
        metrics.gauge("cosim_overhead").set(overhead)
        metrics.gauge("pessimism").set(result.pessimism)
        telemetry.events.emit(
            "qta.summary",
            name=name,
            static_bound=static_bound.cycles,
            wcet_time=wcet_time,
            actual_cycles=run.cycles,
            instructions=run.instructions,
            pessimism=round(result.pessimism, 4),
            cosim_seconds=round(cosim_seconds, 6),
            plain_seconds=round(plain_seconds, 6),
            cosim_overhead=round(overhead, 3),
        )
    return QtaAnalysis(program, wcet_cfg, static_bound, result)
