"""Synthetic aiT-style WCET reports.

The real QTA flow starts from an aiT (AbsInt) analysis report for the
binary.  aiT is proprietary, so this module implements the closest
open substitute (see DESIGN.md): a static per-block timing analysis over
the reconstructed CFG using the VP's own :class:`~repro.vp.timing.TimingModel`,
emitted in an aiT-like XML report.  The ``ait2qta`` preprocessor
(:mod:`repro.wcet.ait2qta`) consumes only this report — exactly as the real
preprocessor consumes only aiT's output — so the downstream pipeline is
format-faithful.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asm import Program
from ..vp.timing import TimingModel
from .cfg import Cfg, build_cfg


@dataclass
class AitBlock:
    """One analyzed basic block with its worst-case cycle count."""

    block_id: int
    start: int
    end: int
    wcet: int
    insn_count: int
    kind: str


@dataclass
class AitEdge:
    """Worst-case time to run from entering ``src`` until reaching ``dst``.

    ``kind`` distinguishes ordinary control flow ("cf") from interprocedural
    "call" and "return" edges, which the IPET solver constrains pairwise
    instead of treating as loops.
    """

    src: int
    dst: int
    time: int
    kind: str = "cf"


@dataclass
class AitCallRecord:
    """One call site: which rets may return to which site.

    Used by IPET to couple return-edge flow to call-edge flow
    (``sum of f(ret -> return_site) <= f(call -> callee)``).
    """

    call_block: int
    callee: int
    return_site: int
    ret_blocks: List[int] = field(default_factory=list)


@dataclass
class AitReport:
    """The analysis result: blocks, timed edges, loop bounds, metadata."""

    program_name: str
    isa_name: str
    entry_block: int
    blocks: List[AitBlock] = field(default_factory=list)
    edges: List[AitEdge] = field(default_factory=list)
    #: block_id of a loop header -> max iterations per loop entry
    loop_bounds: Dict[int, int] = field(default_factory=dict)
    call_records: List[AitCallRecord] = field(default_factory=list)

    def block_by_id(self, block_id: int) -> AitBlock:
        for block in self.blocks:
            if block.block_id == block_id:
                return block
        raise KeyError(f"no aiT block with id {block_id}")

    def block_by_start(self, addr: int) -> AitBlock:
        for block in self.blocks:
            if block.start == addr:
                return block
        raise KeyError(f"no aiT block starting at {addr:#x}")

    # -- XML (de)serialisation ------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("ait_report", {
            "program": self.program_name,
            "isa": self.isa_name,
            "entry": str(self.entry_block),
        })
        blocks_el = ET.SubElement(root, "blocks")
        for block in self.blocks:
            ET.SubElement(blocks_el, "block", {
                "id": str(block.block_id),
                "start": f"{block.start:#x}",
                "end": f"{block.end:#x}",
                "wcet": str(block.wcet),
                "instructions": str(block.insn_count),
                "kind": block.kind,
            })
        edges_el = ET.SubElement(root, "edges")
        for edge in self.edges:
            ET.SubElement(edges_el, "edge", {
                "src": str(edge.src),
                "dst": str(edge.dst),
                "time": str(edge.time),
                "kind": edge.kind,
            })
        calls_el = ET.SubElement(root, "calls")
        for record in self.call_records:
            ET.SubElement(calls_el, "call", {
                "block": str(record.call_block),
                "callee": str(record.callee),
                "return_site": str(record.return_site),
                "rets": ",".join(str(r) for r in record.ret_blocks),
            })
        bounds_el = ET.SubElement(root, "loop_bounds")
        for block_id, bound in sorted(self.loop_bounds.items()):
            ET.SubElement(bounds_el, "loop", {
                "header": str(block_id),
                "max_iterations": str(bound),
            })
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "AitReport":
        root = ET.fromstring(text)
        if root.tag != "ait_report":
            raise ValueError("not an aiT report")
        report = cls(
            program_name=root.attrib["program"],
            isa_name=root.attrib["isa"],
            entry_block=int(root.attrib["entry"]),
        )
        for el in root.find("blocks") or ():
            report.blocks.append(AitBlock(
                block_id=int(el.attrib["id"]),
                start=int(el.attrib["start"], 0),
                end=int(el.attrib["end"], 0),
                wcet=int(el.attrib["wcet"]),
                insn_count=int(el.attrib["instructions"]),
                kind=el.attrib["kind"],
            ))
        for el in root.find("edges") or ():
            report.edges.append(AitEdge(
                src=int(el.attrib["src"]),
                dst=int(el.attrib["dst"]),
                time=int(el.attrib["time"]),
                kind=el.attrib.get("kind", "cf"),
            ))
        calls = root.find("calls")
        if calls is not None:
            for el in calls:
                rets = el.attrib.get("rets", "")
                report.call_records.append(AitCallRecord(
                    call_block=int(el.attrib["block"]),
                    callee=int(el.attrib["callee"]),
                    return_site=int(el.attrib["return_site"]),
                    ret_blocks=[int(r) for r in rets.split(",") if r],
                ))
        bounds = root.find("loop_bounds")
        if bounds is not None:
            for el in bounds:
                report.loop_bounds[int(el.attrib["header"])] = \
                    int(el.attrib["max_iterations"])
        return report


def run_ait_analysis(
    program: Program,
    loop_bounds: Optional[Dict[int, int]] = None,
    timing: Optional[TimingModel] = None,
    name: str = "program",
    cfg: Optional[Cfg] = None,
    edge_sensitive: bool = False,
    icache=None,
    cache_analysis: bool = False,
) -> AitReport:
    """Statically analyze ``program`` and produce a synthetic aiT report.

    ``loop_bounds`` maps loop-header *addresses* to maximum iteration
    counts per loop entry (aiT gets these from annotations; so do we —
    see :func:`repro.wcet.bounds.loop_bounds_from_source`).

    With ``edge_sensitive=True`` the analysis exploits the "current
    execution context" part of the QTA edge semantics: a conditional
    branch's *fall-through* edge is not charged the taken-redirect
    penalty, which tightens both the QTA path time and the IPET bound on
    branchy code while remaining a sound per-edge upper bound.

    ``icache`` (an :class:`~repro.vp.icache.ICacheConfig`) enables the
    miss-always fetch abstraction: every execution of a block is charged a
    full miss for each cache line the block spans — a sound upper bound on
    any dynamic cache state, matching a VP configured with the same cache.
    With ``cache_analysis=True`` the loop-persistence analysis
    (:mod:`repro.wcet.cacheanalysis`) instead charges fitting loops once
    per loop *entry*, dramatically tightening hot loops while remaining
    sound.
    """
    timing = timing or TimingModel()
    cfg = cfg or build_cfg(program)
    loop_bounds = loop_bounds or {}

    block_ids: Dict[int, int] = {}
    for index, start in enumerate(sorted(cfg.blocks)):
        block_ids[start] = index

    report = AitReport(
        program_name=name,
        isa_name=program.isa_name,
        entry_block=block_ids[cfg.entry],
    )
    cache_classes = None
    if icache is not None and cache_analysis:
        from .cacheanalysis import classify
        cache_classes = classify(cfg, icache)

    block_wcet: Dict[int, int] = {}
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        wcet = sum(timing.worst_cost(d) for d in block.insns)
        if cache_classes is not None:
            wcet += cache_classes.block_fetch_cost(start, block.start,
                                                   block.end)
        elif icache is not None:
            # Miss-always: every line the block spans costs a full fill.
            wcet += icache.lines_spanned(block.start, block.end) \
                * icache.miss_penalty
        block_wcet[start] = wcet
        report.blocks.append(AitBlock(
            block_id=block_ids[start],
            start=block.start,
            end=block.end,
            wcet=wcet,
            insn_count=len(block),
            kind=block.kind,
        ))
    from .cfg import KIND_CALL, KIND_RET

    ret_blocks_of_function: Dict[int, List[int]] = {}
    for fentry, members in cfg.functions.items():
        ret_blocks_of_function[fentry] = [
            addr for addr in members
            if addr in cfg.blocks and cfg.blocks[addr].kind == KIND_RET
        ]
    from .cfg import KIND_BRANCH

    for src, dst in cfg.edges:
        # QTA edge semantics: worst-case time to run from the source block's
        # entry until control reaches the target block.
        src_block = cfg.blocks[src]
        if src_block.kind == KIND_CALL and dst == src_block.call_target:
            kind = "call"
        elif src_block.kind == KIND_RET:
            kind = "return"
        else:
            kind = "cf"
        time = block_wcet[src]
        if edge_sensitive and src_block.kind == KIND_BRANCH:
            terminator = src_block.terminator
            taken_target = (src_block.pcs[-1] + terminator.imm) & 0xFFFFFFFF
            if dst != taken_target:
                # Fall-through edge: the branch did not redirect, so the
                # taken penalty cannot have been paid on this edge.
                time = (block_wcet[src] - timing.worst_cost(terminator)
                        + timing.base_cost(terminator))
        if cache_classes is not None:
            # Persistent-loop fills are charged on the entry edges.
            time += cache_classes.edge_fetch_cost(src, dst)
        report.edges.append(AitEdge(
            src=block_ids[src],
            dst=block_ids[dst],
            time=time,
            kind=kind,
        ))
    for src in sorted(cfg.blocks):
        block = cfg.blocks[src]
        if block.kind != KIND_CALL or block.call_target is None \
                or block.return_site is None:
            continue
        rets = ret_blocks_of_function.get(block.call_target, [])
        report.call_records.append(AitCallRecord(
            call_block=block_ids[src],
            callee=block_ids[block.call_target],
            return_site=block_ids[block.return_site],
            ret_blocks=sorted(block_ids[r] for r in rets),
        ))
    for addr, bound in loop_bounds.items():
        if addr not in block_ids:
            raise ValueError(
                f"loop bound given for {addr:#x}, which is not a block start"
            )
        report.loop_bounds[block_ids[addr]] = bound
    return report
