"""The ``ait2qta`` preprocessor and the QTA intermediate CFG format.

The tool-demo flow: *"In the preprocessing of the aiT report a
WCET-annotated control-flow graph is produced.  Nodes in the CFG correspond
to the aiT blocks and the edges to the worst-case time consumption to run
the program from the source to the target block in the current execution
context."*  This module is that preprocessor plus the line-oriented
intermediate format (the "Kontrollflusszwischenformat") that QEMU/QTA — here
:class:`repro.wcet.qta.QtaPlugin` — loads alongside the binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ait import AitCallRecord, AitReport


@dataclass
class WcetNode:
    """A node of the WCET-annotated CFG (one aiT block)."""

    node_id: int
    start: int
    end: int
    wcet: int
    kind: str = "fallthrough"

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class WcetCfg:
    """The WCET-annotated CFG consumed by the QTA plugin."""

    entry: int  # node id
    nodes: Dict[int, WcetNode] = field(default_factory=dict)
    #: (src id, dst id) -> worst-case transition time
    edges: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: (src id, dst id) -> "cf" | "call" | "return"
    edge_kinds: Dict[Tuple[int, int], str] = field(default_factory=dict)
    #: loop-header node id -> max iterations per entry
    loop_bounds: Dict[int, int] = field(default_factory=dict)
    call_records: List[AitCallRecord] = field(default_factory=list)
    name: str = "program"

    def edge_kind(self, edge: Tuple[int, int]) -> str:
        return self.edge_kinds.get(edge, "cf")

    def node_at(self, addr: int) -> Optional[WcetNode]:
        for node in self.nodes.values():
            if node.contains(addr):
                return node
        return None

    @property
    def node_by_start(self) -> Dict[int, int]:
        return {node.start: node.node_id for node in self.nodes.values()}

    def successors(self, node_id: int) -> List[int]:
        return [dst for (src, dst) in self.edges if src == node_id]

    def total_wcet_of_path(self, node_ids: List[int]) -> int:
        """Worst-case time of a concrete node path (QTA accumulation rule).

        Each edge contributes its annotated transition time; the final node
        contributes its own WCET (execution must still leave it).
        """
        if not node_ids:
            return 0
        total = 0
        for src, dst in zip(node_ids, node_ids[1:]):
            try:
                total += self.edges[(src, dst)]
            except KeyError:
                raise KeyError(
                    f"path uses edge {src}->{dst} absent from the WCET CFG"
                ) from None
        return total + self.nodes[node_ids[-1]].wcet

    # ------------------------------------------------------------------
    # The line-oriented intermediate format:
    #
    #   qta-cfg v1 <name>
    #   entry <node id>
    #   node <id> <start hex> <end hex> <wcet> <kind>
    #   edge <src> <dst> <time>
    #   loop <header id> <max iterations>
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        lines = [f"qta-cfg v1 {self.name}", f"entry {self.entry}"]
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            lines.append(
                f"node {node.node_id} {node.start:#x} {node.end:#x} "
                f"{node.wcet} {node.kind}"
            )
        for (src, dst), time in sorted(self.edges.items()):
            kind = self.edge_kind((src, dst))
            lines.append(f"edge {src} {dst} {time} {kind}")
        for header, bound in sorted(self.loop_bounds.items()):
            lines.append(f"loop {header} {bound}")
        for record in self.call_records:
            rets = ",".join(str(r) for r in record.ret_blocks) or "-"
            lines.append(
                f"call {record.call_block} {record.callee} "
                f"{record.return_site} {rets}"
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "WcetCfg":
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or not lines[0].startswith("qta-cfg v1"):
            raise ValueError("not a QTA intermediate CFG")
        cfg = cls(entry=0, name=lines[0].split(None, 2)[2]
                  if len(lines[0].split(None, 2)) > 2 else "program")
        for line in lines[1:]:
            parts = line.split()
            if parts[0] == "entry":
                cfg.entry = int(parts[1])
            elif parts[0] == "node":
                node = WcetNode(
                    node_id=int(parts[1]),
                    start=int(parts[2], 0),
                    end=int(parts[3], 0),
                    wcet=int(parts[4]),
                    kind=parts[5] if len(parts) > 5 else "fallthrough",
                )
                cfg.nodes[node.node_id] = node
            elif parts[0] == "edge":
                key = (int(parts[1]), int(parts[2]))
                cfg.edges[key] = int(parts[3])
                if len(parts) > 4:
                    cfg.edge_kinds[key] = parts[4]
            elif parts[0] == "loop":
                cfg.loop_bounds[int(parts[1])] = int(parts[2])
            elif parts[0] == "call":
                rets = [] if parts[4] == "-" else \
                    [int(r) for r in parts[4].split(",")]
                cfg.call_records.append(AitCallRecord(
                    call_block=int(parts[1]),
                    callee=int(parts[2]),
                    return_site=int(parts[3]),
                    ret_blocks=rets,
                ))
            else:
                raise ValueError(f"unknown record {parts[0]!r}")
        if cfg.entry not in cfg.nodes:
            raise ValueError("entry node missing from CFG")
        return cfg


def preprocess(report: AitReport) -> WcetCfg:
    """``ait2qta``: turn an aiT report into the WCET-annotated CFG."""
    cfg = WcetCfg(entry=report.entry_block, name=report.program_name)
    for block in report.blocks:
        cfg.nodes[block.block_id] = WcetNode(
            node_id=block.block_id,
            start=block.start,
            end=block.end,
            wcet=block.wcet,
            kind=block.kind,
        )
    for edge in report.edges:
        if edge.src not in cfg.nodes or edge.dst not in cfg.nodes:
            raise ValueError(
                f"aiT edge {edge.src}->{edge.dst} references unknown blocks"
            )
        cfg.edges[(edge.src, edge.dst)] = edge.time
        cfg.edge_kinds[(edge.src, edge.dst)] = edge.kind
    cfg.loop_bounds = dict(report.loop_bounds)
    cfg.call_records = list(report.call_records)
    return cfg
