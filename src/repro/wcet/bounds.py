"""Loop-bound annotations.

aiT reads flow facts from annotation files; the equivalent here is a
source-level annotation comment next to the loop label::

    loop:                 # @loopbound 100
        addi t0, t0, 1
        blt t0, t1, loop

The bound states the maximum number of times the *header block* (the block
the label starts) executes per entry into the loop.  Annotations are
extracted from the assembly text and resolved to addresses through the
assembled program's symbol table.
"""

from __future__ import annotations

import re
from typing import Dict

from ..asm import Program

_ANNOTATION_RE = re.compile(
    r"^\s*([A-Za-z_.$][\w.$]*):.*#\s*@loopbound\s+(\d+)\s*$"
)
_STANDALONE_RE = re.compile(
    r"^\s*#\s*@loopbound\s+([A-Za-z_.$][\w.$]*)\s+(\d+)\s*$"
)


class AnnotationError(Exception):
    """An annotation references an unknown label or is malformed."""


def loop_bounds_from_source(source: str, program: Program) -> Dict[int, int]:
    """Extract ``@loopbound`` annotations and resolve them to addresses.

    Two forms are recognised::

        label:  ...        # @loopbound N     (attached to the label line)
        # @loopbound label N                  (standalone)

    Returns a mapping from loop-header address to iteration bound, ready
    for :func:`repro.wcet.ait.run_ait_analysis`.
    """
    bounds: Dict[int, int] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        attached = _ANNOTATION_RE.match(line)
        if attached:
            label, bound = attached.group(1), int(attached.group(2))
        else:
            standalone = _STANDALONE_RE.match(line)
            if not standalone:
                continue
            label, bound = standalone.group(1), int(standalone.group(2))
        if bound < 1:
            raise AnnotationError(
                f"line {line_no}: loop bound must be >= 1, got {bound}"
            )
        if label not in program.symbols:
            raise AnnotationError(
                f"line {line_no}: @loopbound references unknown label "
                f"{label!r}"
            )
        bounds[program.symbols[label]] = bound
    return bounds
