"""Control-flow graph reconstruction from program binaries.

The CFG builder performs recursive-traversal disassembly from the entry
point, splits code at *leaders* (branch targets, post-terminator addresses),
and classifies every block terminator.  Calls (``jal``/``jalr`` writing a
link register) are handled interprocedurally: each function (the program
entry plus every call target) is partitioned intraprocedurally, and a
``ret`` block's successors are the return sites of all calls into its
function — a sound overapproximation for context-insensitive analysis.

The result is the substrate for both the synthetic aiT analysis
(:mod:`repro.wcet.ait`) and the IPET bound (:mod:`repro.wcet.ipet`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..asm import Program
from ..isa import Decoded, Decoder, IllegalInstructionError, IsaConfig

# Terminator kinds.
KIND_BRANCH = "branch"          # conditional: taken target + fallthrough
KIND_JUMP = "jump"              # unconditional direct jump
KIND_CALL = "call"              # jal/jalr with a link register
KIND_RET = "ret"                # jalr zero, ra, 0
KIND_INDIRECT = "indirect"      # computed jump we cannot resolve
KIND_EXIT = "exit"              # ecall/ebreak/wfi: leaves the program
KIND_FALLTHROUGH = "fallthrough"

LINK_REGS = (1, 5)  # ra and t5 per the RISC-V calling convention


class CfgError(Exception):
    """Raised when a binary cannot be turned into an analyzable CFG."""


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    insns: List[Decoded] = field(default_factory=list)
    pcs: List[int] = field(default_factory=list)
    kind: str = KIND_FALLTHROUGH
    #: Interprocedural successors: calls go to the callee entry, rets to
    #: every return site of the function's callers.
    successors: List[int] = field(default_factory=list)
    #: For KIND_CALL: the callee entry (None for indirect calls).
    call_target: Optional[int] = None
    #: For KIND_CALL: where execution resumes after the callee returns.
    return_site: Optional[int] = None

    @property
    def end(self) -> int:
        """First address after the block."""
        return self.pcs[-1] + self.insns[-1].spec.length

    @property
    def terminator(self) -> Decoded:
        return self.insns[-1]

    def __len__(self) -> int:
        return len(self.insns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BasicBlock({self.start:#x}..{self.end:#x}, {self.kind}, "
                f"succ={[hex(s) for s in self.successors]})")


@dataclass
class Cfg:
    """A whole-program CFG with function partitioning."""

    entry: int
    blocks: Dict[int, BasicBlock]
    #: function entry address -> set of block start addresses
    functions: Dict[int, Set[int]]
    symbols: Dict[str, int] = field(default_factory=dict)

    def block_at(self, addr: int) -> BasicBlock:
        try:
            return self.blocks[addr]
        except KeyError:
            raise CfgError(f"no basic block starts at {addr:#x}") from None

    def block_containing(self, addr: int) -> BasicBlock:
        for block in self.blocks.values():
            if block.start <= addr < block.end:
                return block
        raise CfgError(f"address {addr:#x} not in any block")

    @property
    def edges(self) -> List[Tuple[int, int]]:
        out = []
        for block in self.blocks.values():
            for succ in block.successors:
                out.append((block.start, succ))
        return out

    def successors_of(self, addr: int) -> List[int]:
        return list(self.block_at(addr).successors)

    def predecessors_of(self, addr: int) -> List[int]:
        return [b.start for b in self.blocks.values() if addr in b.successors]

    def function_of(self, block_addr: int) -> Optional[int]:
        for entry, members in self.functions.items():
            if block_addr in members:
                return entry
        return None

    def back_edges(self) -> List[Tuple[int, int]]:
        """Edges (u, v) where v dominates u — natural-loop back edges.

        Uses a simple iterative dominator computation over the whole graph
        (call/return edges included), which is what the loop-bound
        constraints in IPET key on.
        """
        dominators = self._dominators()
        return [
            (u, v) for u, v in self.edges
            if v in dominators.get(u, set())
        ]

    def _dominators(self) -> Dict[int, Set[int]]:
        nodes = set(self.blocks)
        preds: Dict[int, List[int]] = {n: [] for n in nodes}
        for u, v in self.edges:
            if v in preds:
                preds[v].append(u)
        dom: Dict[int, Set[int]] = {n: set(nodes) for n in nodes}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node == self.entry:
                    continue
                pred_doms = [dom[p] for p in preds[node]]
                new = set.intersection(*pred_doms) if pred_doms else set()
                new = new | {node}
                if new != dom[node]:
                    dom[node] = new
                    changed = True
        return dom


def _is_ret(d: Decoded) -> bool:
    return (d.spec.name in ("jalr", "c.jr") and d.rd == 0
            and d.rs1 == 1 and d.imm == 0)


def _classify(d: Decoded) -> str:
    spec = d.spec
    if spec.is_branch:
        return KIND_BRANCH
    if spec.name in ("jal", "c.jal", "c.j"):
        return KIND_CALL if d.rd in LINK_REGS else KIND_JUMP
    if spec.name in ("jalr", "c.jr", "c.jalr"):
        if _is_ret(d):
            return KIND_RET
        if d.rd in LINK_REGS:
            return KIND_CALL
        return KIND_INDIRECT
    if spec.name in ("ecall", "ebreak", "c.ebreak", "wfi"):
        return KIND_EXIT
    if spec.name == "mret":
        return KIND_INDIRECT
    return KIND_FALLTHROUGH


class CfgBuilder:
    """Builds a :class:`Cfg` from a :class:`~repro.asm.Program`."""

    def __init__(self, program: Program, isa: Optional[IsaConfig] = None) -> None:
        self.program = program
        isa = isa or IsaConfig.from_string(program.isa_name)
        self.decoder = Decoder(isa)
        addr, blob = program.text_segment
        self._text_base = addr
        self._text = blob

    # -- instruction fetch over the image ------------------------------

    def _decode_at(self, pc: int) -> Decoded:
        offset = pc - self._text_base
        if offset < 0 or offset + 2 > len(self._text):
            raise CfgError(f"pc {pc:#x} outside text segment")
        low = int.from_bytes(self._text[offset:offset + 2], "little")
        word = low
        if low & 0x3 == 0x3:
            if offset + 4 > len(self._text):
                raise CfgError(f"truncated instruction at {pc:#x}")
            word = int.from_bytes(self._text[offset:offset + 4], "little")
        try:
            return self.decoder.decode(word, pc)
        except IllegalInstructionError as exc:
            raise CfgError(str(exc)) from None

    # -- main build ------------------------------------------------------

    def build(self) -> Cfg:
        entry = self.program.entry
        insns = self._discover(entry)
        leaders = self._find_leaders(entry, insns)
        blocks = self._partition(insns, leaders)
        self._link(blocks)
        functions = self._partition_functions(entry, blocks)
        self._resolve_returns(blocks, functions)
        return Cfg(entry=entry, blocks=blocks, functions=functions,
                   symbols=dict(self.program.symbols))

    def _discover(self, entry: int) -> Dict[int, Decoded]:
        """Reachable instructions via recursive traversal."""
        insns: Dict[int, Decoded] = {}
        worklist = [entry]
        ret_sites_needed: List[int] = []
        while worklist:
            pc = worklist.pop()
            while pc not in insns:
                decoded = self._decode_at(pc)
                insns[pc] = decoded
                kind = _classify(decoded)
                if kind == KIND_BRANCH:
                    worklist.append((pc + decoded.imm) & 0xFFFFFFFF)
                    pc += decoded.spec.length
                elif kind == KIND_JUMP:
                    pc = (pc + decoded.imm) & 0xFFFFFFFF
                elif kind == KIND_CALL:
                    if decoded.spec.name in ("jal", "c.jal"):
                        worklist.append((pc + decoded.imm) & 0xFFFFFFFF)
                    pc += decoded.spec.length  # return site
                elif kind in (KIND_RET, KIND_INDIRECT, KIND_EXIT):
                    break
                else:
                    pc += decoded.spec.length
        return insns

    def _find_leaders(self, entry: int, insns: Dict[int, Decoded]) -> Set[int]:
        leaders = {entry}
        for pc, decoded in insns.items():
            kind = _classify(decoded)
            after = pc + decoded.spec.length
            if kind == KIND_BRANCH:
                leaders.add((pc + decoded.imm) & 0xFFFFFFFF)
                leaders.add(after)
            elif kind == KIND_JUMP:
                leaders.add((pc + decoded.imm) & 0xFFFFFFFF)
                if after in insns:
                    leaders.add(after)
            elif kind == KIND_CALL:
                if decoded.spec.name in ("jal", "c.jal"):
                    leaders.add((pc + decoded.imm) & 0xFFFFFFFF)
                leaders.add(after)  # return site
            elif kind in (KIND_RET, KIND_INDIRECT, KIND_EXIT):
                if after in insns:
                    leaders.add(after)
        return {pc for pc in leaders if pc in insns}

    def _partition(self, insns: Dict[int, Decoded],
                   leaders: Set[int]) -> Dict[int, BasicBlock]:
        blocks: Dict[int, BasicBlock] = {}
        for leader in sorted(leaders):
            block = BasicBlock(start=leader)
            pc = leader
            while pc in insns:
                decoded = insns[pc]
                block.insns.append(decoded)
                block.pcs.append(pc)
                kind = _classify(decoded)
                next_pc = pc + decoded.spec.length
                if kind != KIND_FALLTHROUGH:
                    block.kind = kind
                    break
                if next_pc in leaders:
                    block.kind = KIND_FALLTHROUGH
                    break
                pc = next_pc
            blocks[leader] = block
        return blocks

    def _link(self, blocks: Dict[int, BasicBlock]) -> None:
        for block in blocks.values():
            term = block.terminator
            term_pc = block.pcs[-1]
            after = term_pc + term.spec.length
            kind = block.kind
            if kind == KIND_BRANCH:
                target = (term_pc + term.imm) & 0xFFFFFFFF
                block.successors = [target, after]
            elif kind == KIND_JUMP:
                block.successors = [(term_pc + term.imm) & 0xFFFFFFFF]
            elif kind == KIND_CALL:
                if term.spec.name in ("jal", "c.jal"):
                    block.call_target = (term_pc + term.imm) & 0xFFFFFFFF
                block.return_site = after if after in blocks else None
                # Interprocedural edge: control flows into the callee; the
                # return site is reached through the callee's ret blocks.
                if block.call_target is not None:
                    block.successors = [block.call_target]
            elif kind == KIND_FALLTHROUGH:
                if after in blocks:
                    block.successors = [after]
            # ret successors resolved later; indirect/exit have none.

    def _partition_functions(self, entry: int,
                             blocks: Dict[int, BasicBlock]) -> Dict[int, Set[int]]:
        func_entries = {entry}
        for block in blocks.values():
            if block.kind == KIND_CALL and block.call_target is not None:
                func_entries.add(block.call_target)
        functions: Dict[int, Set[int]] = {}
        for fentry in func_entries:
            members: Set[int] = set()
            stack = [fentry]
            while stack:
                addr = stack.pop()
                if addr in members or addr not in blocks:
                    continue
                members.add(addr)
                block = blocks[addr]
                # Intraprocedural view: a call continues at its return
                # site (never inside the callee); a ret ends the function.
                if block.kind == KIND_CALL:
                    if block.return_site is not None:
                        stack.append(block.return_site)
                elif block.kind != KIND_RET:
                    stack.extend(block.successors)
            functions[fentry] = members
        return functions

    def _resolve_returns(self, blocks: Dict[int, BasicBlock],
                         functions: Dict[int, Set[int]]) -> None:
        # Return sites per callee function.
        return_sites: Dict[int, List[int]] = {}
        for block in blocks.values():
            if block.kind == KIND_CALL and block.call_target is not None \
                    and block.return_site is not None:
                return_sites.setdefault(
                    block.call_target, []).append(block.return_site)
        for block in blocks.values():
            if block.kind != KIND_RET:
                continue
            func = None
            for fentry, members in functions.items():
                if block.start in members:
                    func = fentry
                    break
            block.successors = sorted(set(return_sites.get(func, [])))


def build_cfg(program: Program, isa: Optional[IsaConfig] = None) -> Cfg:
    """Build the control-flow graph of ``program``."""
    return CfgBuilder(program, isa).build()
