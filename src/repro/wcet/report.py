"""Human-readable rendering of WCET analyses.

Formats a :class:`~repro.wcet.qta.QtaAnalysis` the way the tool demo
presents its results: the per-block table (address range, WCET, static
execution-count witness vs. observed count, contribution to the bound)
followed by the bound/path/actual summary.
"""

from __future__ import annotations

from typing import Optional

from .qta import QtaAnalysis


def render_block_table(analysis: QtaAnalysis) -> str:
    """Per-block breakdown of where the WCET bound comes from."""
    cfg = analysis.wcet_cfg
    counts = analysis.static_bound.block_counts
    observed = analysis.result.node_counts
    header = (f"{'node':>5} {'address range':<24} {'wcet':>6} "
              f"{'bound count':>12} {'observed':>9} {'contribution':>13}")
    lines = [header, "-" * len(header)]
    total = 0.0
    for node_id in sorted(cfg.nodes):
        node = cfg.nodes[node_id]
        bound_count = counts.get(node_id, 0.0)
        contribution = node.wcet * bound_count
        total += contribution
        marker = " *" if node_id in cfg.loop_bounds else ""
        lines.append(
            f"{node_id:>5} {node.start:#010x}..{node.end:#010x}{'':<2} "
            f"{node.wcet:>6} {bound_count:>12.1f} "
            f"{observed.get(node_id, 0):>9} {contribution:>13.1f}{marker}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'':>5} {'(* = annotated loop header)':<24} "
                 f"{'':>6} {'':>12} {'total':>9} {total:>13.1f}")
    return "\n".join(lines)


def render_summary(analysis: QtaAnalysis, name: str = "program") -> str:
    """One-paragraph summary: bound, path time, actual cycles, pessimism."""
    bound = analysis.static_bound
    result = analysis.result
    lines = [
        f"WCET analysis: {name}",
        f"  static bound ({bound.method}): {bound.cycles} cycles",
        f"  QTA path time:                {result.wcet_time} cycles",
        f"  actual cycles:                {result.actual_cycles}",
        f"  instructions executed:        {result.instructions}",
        f"  pessimism (path/actual):      {result.pessimism:.2f}x",
    ]
    if result.actual_cycles:
        lines.append(
            f"  pessimism (bound/actual):     "
            f"{bound.cycles / result.actual_cycles:.2f}x"
        )
    return "\n".join(lines)


def render_full(analysis: QtaAnalysis, name: str = "program") -> str:
    """Summary plus the per-block breakdown table."""
    return render_summary(analysis, name) + "\n\n" + \
        render_block_table(analysis)
