"""Graphviz DOT export of control-flow graphs.

Renders either a plain :class:`~repro.wcet.cfg.Cfg` (with disassembly in
the node bodies) or a WCET-annotated :class:`~repro.wcet.ait2qta.WcetCfg`
(with per-node WCETs and per-edge transition times), ready for
``dot -Tsvg``.  Available from the CLI via ``repro wcet --emit-dot``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.disasm import disassemble
from .ait2qta import WcetCfg
from .cfg import Cfg

_KIND_COLORS = {
    "branch": "lightblue",
    "jump": "lightyellow",
    "call": "lightgreen",
    "ret": "lightpink",
    "exit": "lightgray",
    "indirect": "orange",
    "fallthrough": "white",
    "cf": "white",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(cfg: Cfg, max_insns_per_node: int = 8,
               name: str = "cfg") -> str:
    """DOT text for a reconstructed CFG with disassembled node bodies."""
    symbols_by_addr: Dict[int, str] = {}
    for sym, addr in cfg.symbols.items():
        symbols_by_addr.setdefault(addr, sym)
    lines = [f'digraph "{_escape(name)}" {{',
             '  node [shape=box, fontname="monospace", fontsize=9];']
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        rows = []
        label = symbols_by_addr.get(start)
        if label:
            rows.append(f"<{label}>")
        rows.append(f"{block.start:#010x}..{block.end:#010x} [{block.kind}]")
        for pc, decoded in list(zip(block.pcs, block.insns))[
                :max_insns_per_node]:
            rows.append(f"{pc:#x}: {disassemble(decoded)}")
        if len(block.insns) > max_insns_per_node:
            rows.append(f"... (+{len(block.insns) - max_insns_per_node})")
        color = _KIND_COLORS.get(block.kind, "white")
        lines.append(
            f'  n{start:x} [label="{_escape(chr(10).join(rows))}", '
            f'style=filled, fillcolor={color}];'
        )
    for src, dst in cfg.edges:
        style = ""
        src_block = cfg.blocks[src]
        if src_block.kind == "call" and dst == src_block.call_target:
            style = ' [style=dashed, color=darkgreen]'
        elif src_block.kind == "ret":
            style = ' [style=dashed, color=purple]'
        lines.append(f"  n{src:x} -> n{dst:x}{style};")
    lines.append("}")
    return "\n".join(lines)


def wcet_cfg_to_dot(cfg: WcetCfg, name: Optional[str] = None) -> str:
    """DOT text for a WCET-annotated CFG (nodes show WCETs, edges times)."""
    lines = [f'digraph "{_escape(name or cfg.name)}" {{',
             '  node [shape=box, fontname="monospace", fontsize=9];']
    for node_id in sorted(cfg.nodes):
        node = cfg.nodes[node_id]
        rows = [f"node {node_id} [{node.kind}]",
                f"{node.start:#010x}..{node.end:#010x}",
                f"wcet = {node.wcet}"]
        if node_id in cfg.loop_bounds:
            rows.append(f"loop bound = {cfg.loop_bounds[node_id]}")
        color = "khaki" if node_id in cfg.loop_bounds else \
            _KIND_COLORS.get(node.kind, "white")
        shape = ", peripheries=2" if node_id == cfg.entry else ""
        lines.append(
            f'  n{node_id} [label="{_escape(chr(10).join(rows))}", '
            f'style=filled, fillcolor={color}{shape}];'
        )
    for (src, dst), time in sorted(cfg.edges.items()):
        kind = cfg.edge_kind((src, dst))
        style = ""
        if kind == "call":
            style = ", style=dashed, color=darkgreen"
        elif kind == "return":
            style = ", style=dashed, color=purple"
        lines.append(f'  n{src} -> n{dst} [label="{time}"{style}];')
    lines.append("}")
    return "\n".join(lines)
