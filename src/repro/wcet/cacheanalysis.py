"""Static instruction-cache persistence analysis.

The miss-always abstraction (every block execution misses every line it
spans) is sound but brutally pessimistic for hot loops — experiment A6
measures pessimism growing linearly with the miss penalty.  This module
implements the classic tightening: **loop persistence**.  For a natural
loop whose instruction lines all fit in the cache (per set, at most
``ways`` lines), no line of the loop can be evicted while execution stays
inside it; each line therefore misses at most once per *loop entry*, not
once per iteration.

The analysis:

1. find natural loops on the ordinary-control-flow subgraph of the CFG
   (call/return edges excluded; loops containing calls are disqualified —
   the callee's fetches could evict loop lines),
2. per loop, collect the cache lines its blocks span and check the per-set
   fit criterion,
3. assign every block to its innermost persistent loop (if any).

Integration with the WCET pipeline (:func:`repro.wcet.ait.run_ait_analysis`
with ``cache_analysis=True``): blocks inside a persistent loop carry *no*
per-execution fetch cost; instead the loop's full fill cost is charged on
every edge *entering* the loop from outside.  Soundness: between two loop
entries anything may have been evicted (the entry recharges everything),
and within one entry the fit criterion rules out eviction, so actual
misses per entry never exceed the charged fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..vp.icache import ICacheConfig
from .cfg import Cfg, KIND_CALL, KIND_RET


@dataclass
class PersistentLoop:
    """A loop whose instruction lines are never evicted while inside."""

    header: int                      # block start address
    body: FrozenSet[int]             # block start addresses
    lines: FrozenSet[int]            # cache line numbers
    fill_cost: int                   # cycles to fault in every line once
    entry_edges: Tuple[Tuple[int, int], ...]  # (src, dst) from outside


@dataclass
class CacheClassification:
    """Result of the persistence analysis for one program + cache."""

    icache: ICacheConfig
    loops: List[PersistentLoop] = field(default_factory=list)
    #: block start -> innermost persistent loop (index into ``loops``)
    block_loop: Dict[int, int] = field(default_factory=dict)

    def block_fetch_cost(self, block_start: int, start: int, end: int) -> int:
        """Per-execution fetch cost of a block under the classification."""
        if block_start in self.block_loop:
            return 0  # charged at the loop entry instead
        return self.icache.lines_spanned(start, end) * self.icache.miss_penalty

    def edge_fetch_cost(self, src: int, dst: int) -> int:
        """Extra fetch cost charged on edge (src, dst): loop fills."""
        extra = 0
        for loop in self.loops:
            if (src, dst) in loop.entry_edges:
                extra += loop.fill_cost
        return extra


def _cf_edges(cfg: Cfg) -> List[Tuple[int, int]]:
    edges = []
    for block in cfg.blocks.values():
        if block.kind in (KIND_CALL, KIND_RET):
            continue
        for succ in block.successors:
            edges.append((block.start, succ))
    return edges


def _dominators(cfg: Cfg, edges: List[Tuple[int, int]]) -> Dict[int, Set[int]]:
    nodes = set(cfg.blocks)
    preds: Dict[int, List[int]] = {n: [] for n in nodes}
    for src, dst in edges:
        if dst in preds:
            preds[dst].append(src)
    dom: Dict[int, Set[int]] = {n: set(nodes) for n in nodes}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == cfg.entry:
                continue
            pred_doms = [dom[p] for p in preds[node]]
            new = (set.intersection(*pred_doms) if pred_doms else set()) \
                | {node}
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def _natural_loop(header: int, tail: int,
                  preds: Dict[int, List[int]]) -> Set[int]:
    """Blocks of the natural loop of back edge (tail -> header)."""
    body = {header, tail}
    stack = [tail]
    while stack:
        node = stack.pop()
        if node == header:
            continue
        for pred in preds.get(node, ()):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def _loop_lines(cfg: Cfg, body: Set[int], icache: ICacheConfig) -> Set[int]:
    lines: Set[int] = set()
    for addr in body:
        block = cfg.blocks[addr]
        first = block.start // icache.line_size
        last = (block.end - 1) // icache.line_size
        lines.update(range(first, last + 1))
    return lines


def _fits(lines: Set[int], icache: ICacheConfig) -> bool:
    per_set: Dict[int, int] = {}
    for line in lines:
        index = line % icache.num_sets
        per_set[index] = per_set.get(index, 0) + 1
        if per_set[index] > icache.ways:
            return False
    return True


def classify(cfg: Cfg, icache: ICacheConfig) -> CacheClassification:
    """Run the persistence analysis for ``cfg`` under ``icache``."""
    edges = _cf_edges(cfg)
    preds: Dict[int, List[int]] = {}
    for src, dst in edges:
        preds.setdefault(dst, []).append(src)
    dom = _dominators(cfg, edges)
    back = [(src, dst) for src, dst in edges if dst in dom.get(src, set())]

    # Merge natural loops sharing a header.
    bodies: Dict[int, Set[int]] = {}
    for tail, header in back:
        body = _natural_loop(header, tail, preds)
        bodies.setdefault(header, set()).update(body)

    classification = CacheClassification(icache=icache)
    for header, body in sorted(bodies.items(), key=lambda kv: len(kv[1])):
        # Disqualify loops that leave ordinary control flow: callee code
        # could evict loop lines.
        if any(cfg.blocks[addr].kind in (KIND_CALL, KIND_RET)
               for addr in body):
            continue
        lines = _loop_lines(cfg, body, icache)
        if not _fits(lines, icache):
            continue
        entry_edges = tuple(
            (src, dst) for src, dst in cfg.edges
            if dst == header and src not in body
        )
        if not entry_edges:
            continue  # unreachable or entry-header loop; keep miss-always
        loop_index = len(classification.loops)
        classification.loops.append(PersistentLoop(
            header=header,
            body=frozenset(body),
            lines=frozenset(lines),
            fill_cost=len(lines) * icache.miss_penalty,
            entry_edges=entry_edges,
        ))
        # Innermost wins: bodies are processed smallest-first, so only
        # blocks not yet claimed are assigned.
        for addr in body:
            classification.block_loop.setdefault(addr, loop_index)
    return classification
