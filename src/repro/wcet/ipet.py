"""Static WCET bound via implicit path enumeration (IPET).

The classic formulation: maximise the sum of block WCETs weighted by block
execution counts, subject to flow conservation and loop-bound constraints.
Acyclic graphs are solved exactly with a topological longest-path pass;
cyclic graphs use the LP relaxation via :func:`scipy.optimize.linprog`.
The LP optimum dominates the ILP optimum, so the reported bound remains a
*sound* (if occasionally slightly pessimistic) WCET estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ait2qta import WcetCfg


class WcetError(Exception):
    """Raised when no finite WCET bound exists (e.g. unbounded loop)."""


@dataclass
class WcetBound:
    """The computed bound plus the witnessing block execution counts."""

    cycles: int
    block_counts: Dict[int, float] = field(default_factory=dict)
    method: str = "ipet-lp"

    def __int__(self) -> int:
        return self.cycles


def _virtual_edges(cfg: WcetCfg):
    """All edges plus a virtual source edge and sink edges for exits."""
    edges: List[Tuple[Optional[int], Optional[int]]] = [(None, cfg.entry)]
    exits = [
        node_id for node_id in cfg.nodes
        if not cfg.successors(node_id)
    ]
    if not exits:
        raise WcetError("CFG has no exit node: the program never terminates")
    edges.extend(cfg.edges.keys())
    edges.extend((node_id, None) for node_id in exits)
    return edges


def _back_edges(cfg: WcetCfg) -> Set[Tuple[int, int]]:
    """Ordinary-control-flow edges whose destination dominates their source.

    Call and return edges are excluded: cycles through the call graph are
    handled by the per-call coupling constraints, not by loop bounds.
    """
    nodes = set(cfg.nodes)
    cf_edges = [e for e in cfg.edges if cfg.edge_kind(e) == "cf"]
    preds: Dict[int, List[int]] = {n: [] for n in nodes}
    for src, dst in cfg.edges:
        preds[dst].append(src)
    dom: Dict[int, Set[int]] = {n: set(nodes) for n in nodes}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == cfg.entry:
                continue
            pred_doms = [dom[p] for p in preds[node]]
            new = (set.intersection(*pred_doms) if pred_doms else set()) | {node}
            if new != dom[node]:
                dom[node] = new
                changed = True
    return {(src, dst) for src, dst in cf_edges if dst in dom[src]}


def _longest_path_dag(cfg: WcetCfg) -> WcetBound:
    """Exact longest path for acyclic CFGs (no LP needed)."""
    order: List[int] = []
    visiting: Set[int] = set()
    visited: Set[int] = set()

    def visit(node: int) -> None:
        if node in visited:
            return
        if node in visiting:
            raise WcetError("internal: cycle reached DAG solver")
        visiting.add(node)
        for succ in cfg.successors(node):
            visit(succ)
        visiting.discard(node)
        visited.add(node)
        order.append(node)

    visit(cfg.entry)
    best: Dict[int, int] = {}
    best_succ: Dict[int, Optional[int]] = {}
    for node in order:  # reverse-topological
        succs = cfg.successors(node)
        if not succs:
            # QTA accumulation: the final node contributes its own WCET.
            best[node] = cfg.nodes[node].wcet
            best_succ[node] = None
        else:
            # Inner nodes contribute through their outgoing edge times
            # (which may be outcome-sensitive, see run_ait_analysis).
            choice = max(succs,
                         key=lambda s: cfg.edges[(node, s)] + best[s])
            best[node] = cfg.edges[(node, choice)] + best[choice]
            best_succ[node] = choice
    counts: Dict[int, float] = {n: 0.0 for n in cfg.nodes}
    node: Optional[int] = cfg.entry
    while node is not None:
        counts[node] = 1.0
        node = best_succ[node]
    return WcetBound(best[cfg.entry], counts, method="dag-longest-path")


def compute_wcet_bound(cfg: WcetCfg) -> WcetBound:
    """Compute the IPET WCET bound for a WCET-annotated CFG.

    Raises :class:`WcetError` when a loop has no bound annotation or the
    program cannot terminate.  Unbounded recursion surfaces as LP
    unboundedness (real executions are always feasible points of the LP,
    so any finite optimum remains a sound bound).
    """
    back = _back_edges(cfg)
    has_interproc = any(kind != "cf" for kind in cfg.edge_kinds.values())
    if not back and not has_interproc:
        if _has_cycle(cfg):
            raise WcetError(
                "irreducible cycle without a dominating header; "
                "cannot bound without annotations"
            )
        return _longest_path_dag(cfg)
    headers = {dst for _src, dst in back}
    unbounded = headers - set(cfg.loop_bounds)
    if unbounded:
        names = ", ".join(f"node {h} @ {cfg.nodes[h].start:#x}"
                          for h in sorted(unbounded))
        raise WcetError(f"loop headers without bound annotations: {names}")
    return _solve_lp(cfg, back)


def _has_cycle(cfg: WcetCfg) -> bool:
    color: Dict[int, int] = {}

    def dfs(node: int) -> bool:
        color[node] = 1
        for succ in cfg.successors(node):
            state = color.get(succ, 0)
            if state == 1:
                return True
            if state == 0 and dfs(succ):
                return True
        color[node] = 2
        return False

    return dfs(cfg.entry)


def _solve_lp(cfg: WcetCfg, back: Set[Tuple[int, int]]) -> WcetBound:
    try:
        import numpy as np
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy is a hard dep here
        raise WcetError(f"IPET LP solver needs scipy/numpy: {exc}") from exc

    edges = _virtual_edges(cfg)
    index = {edge: i for i, edge in enumerate(edges)}
    n_vars = len(edges)
    in_edges: Dict[int, List[int]] = {n: [] for n in cfg.nodes}
    out_edges: Dict[int, List[int]] = {n: [] for n in cfg.nodes}
    for edge, i in index.items():
        src, dst = edge
        if dst is not None:
            in_edges[dst].append(i)
        if src is not None:
            out_edges[src].append(i)

    # Equality: flow conservation per node, plus unit source flow.
    rows_eq = []
    rhs_eq = []
    for node in cfg.nodes:
        row = np.zeros(n_vars)
        for i in in_edges[node]:
            row[i] += 1.0
        for i in out_edges[node]:
            row[i] -= 1.0
        rows_eq.append(row)
        rhs_eq.append(0.0)
    source_row = np.zeros(n_vars)
    source_row[index[(None, cfg.entry)]] = 1.0
    rows_eq.append(source_row)
    rhs_eq.append(1.0)

    # Inequality: per bounded header, back-in flow <= (B-1) * non-back-in.
    rows_ub = []
    rhs_ub = []
    # Call/return coupling: each call site's returns cannot outnumber its
    # calls — sum of f(ret -> return_site) <= f(call -> callee).  This is
    # what keeps call-graph "cycles" from being treated as free loops.
    for record in cfg.call_records:
        call_edge = (record.call_block, record.callee)
        if call_edge not in index:
            continue
        row = np.zeros(n_vars)
        row[index[call_edge]] -= 1.0
        present = False
        for ret in record.ret_blocks:
            ret_edge = (ret, record.return_site)
            if ret_edge in index:
                row[index[ret_edge]] += 1.0
                present = True
        if present:
            rows_ub.append(row)
            rhs_ub.append(0.0)
    for header, bound in cfg.loop_bounds.items():
        if bound < 1:
            raise WcetError(f"loop bound for node {header} must be >= 1")
        row = np.zeros(n_vars)
        for edge, i in index.items():
            src, dst = edge
            if dst != header:
                continue
            if (src, dst) in back:
                row[i] += 1.0
            else:
                row[i] -= float(bound - 1)
        rows_ub.append(row)
        rhs_ub.append(0.0)

    # Objective: maximise the QTA path-time accumulation — edge times on
    # every real edge plus the final node's own WCET (carried by the
    # virtual sink edge).  With uniform edge times (= source-node WCET)
    # this is exactly the classic node-count formulation.
    cost = np.zeros(n_vars)
    for edge, i in index.items():
        src, dst = edge
        if src is None:
            continue  # virtual entry edge costs nothing
        if dst is None:
            cost[i] += float(cfg.nodes[src].wcet)  # exit node's own time
        else:
            cost[i] += float(cfg.edges[edge])

    result = linprog(
        c=-cost,
        A_eq=np.vstack(rows_eq),
        b_eq=np.array(rhs_eq),
        A_ub=np.vstack(rows_ub) if rows_ub else None,
        b_ub=np.array(rhs_ub) if rows_ub else None,
        bounds=(0, None),
        method="highs",
    )
    if result.status == 3:
        raise WcetError("IPET problem unbounded: a loop lacks an effective bound")
    if not result.success:
        raise WcetError(f"IPET LP failed: {result.message}")
    counts = {
        node: float(sum(result.x[i] for i in in_edges[node]))
        for node in cfg.nodes
    }
    # Round up: LP arithmetic may sit epsilon under the true integral
    # optimum, and a WCET bound must never round down.
    import math
    cycles = int(math.ceil(-result.fun - 1e-6))
    return WcetBound(cycles, counts, method="ipet-lp")
