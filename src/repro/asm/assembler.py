"""A two-pass RISC-V assembler targeting the :class:`~repro.asm.Program`
image format.

Supported surface:

* all instructions of the configured :class:`~repro.isa.IsaConfig`
  (including compressed mnemonics and registered extensions),
* the standard pseudo-instructions (``li``, ``la``, ``mv``, ``call``,
  ``ret``, ``beqz`` ...),
* labels, ``.text``/``.data`` sections, data directives (``.word``,
  ``.half``, ``.byte``, ``.ascii``, ``.asciz``, ``.zero``, ``.space``,
  ``.align``), constants via ``.equ``/``.set``,
* expressions with ``+``/``-``, ``%hi()``/``%lo()``, character literals.

Branch/jump operands that mention a symbol are pc-relative targets; bare
numeric operands are raw offsets (matching GNU as behaviour for ``beq x1,
x2, 12``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.csr import CSR_ADDRS
from ..isa.decoder import Decoder, IsaConfig, RV32IMC_ZICSR
from ..isa.encoder import EncodingError, encode, operand_roles
from ..isa.registers import parse_fpr, parse_gpr
from .program import Program

DEFAULT_TEXT_BASE = 0x8000_0000

_MEM_SYNTAXES = frozenset({
    "LOAD", "STORE", "FLOAD", "FSTORE",
    "CLOAD", "CSTORE", "CFLOAD", "CFSTORE",
})
_SP_MEM_SYNTAXES = frozenset({"CLSP", "CSSP", "CFLSP", "CFSSP"})
_PCREL_SYNTAXES = frozenset({"BRANCH", "J", "CJ", "CBZ"})

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_IDENT_RE = re.compile(r"[A-Za-z_.$][\w.$]*")


class AsmError(Exception):
    """An assembly-time error, annotated with the source line."""

    def __init__(self, message: str, line_no: Optional[int] = None,
                 line: str = "") -> None:
        location = f"line {line_no}: " if line_no is not None else ""
        suffix = f"\n    {line.strip()}" if line else ""
        super().__init__(f"{location}{message}{suffix}")
        self.line_no = line_no


@dataclass
class _Item:
    """One assembled unit: an instruction or a data directive."""

    kind: str                      # insn | word | half | byte | bytes | zero | align
    section: str
    line_no: int
    line: str
    mnemonic: str = ""
    args: List[str] = field(default_factory=list)
    exprs: List[str] = field(default_factory=list)
    blob: bytes = b""
    count: int = 0                 # for zero / align
    size: int = 0                  # filled in pass 1
    addr: int = 0                  # filled in pass 1


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas (parens protected)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        in_string = False
        result = []
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == '"':
                in_string = not in_string
            if not in_string and line.startswith(marker, i):
                return "".join(result)
            result.append(ch)
            i += 1
        line = "".join(result)
    return line


def _parse_string_literal(text: str, line_no: int, line: str) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AsmError("expected a double-quoted string", line_no, line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34}
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body) or body[i] not in escapes:
                raise AsmError(f"bad escape in string: \\{body[i:i+1]}",
                               line_no, line)
            out.append(escapes[body[i]])
        else:
            out.append(ord(ch))
        i += 1
    return bytes(out)


class Assembler:
    """Assembles source text for one ISA configuration.

    The instance is reusable; each :meth:`assemble` call is independent.
    """

    def __init__(
        self,
        isa: IsaConfig = RV32IMC_ZICSR,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: Optional[int] = None,
    ) -> None:
        self.isa = isa
        self.decoder = Decoder(isa)
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        items, labels_by_item, constants = self._parse(source)
        symbols = self._layout(items, labels_by_item, constants)
        segments = self._emit(items, symbols)
        entry = symbols.get("_start", self.text_base)
        return Program(segments, entry, symbols, self.isa.name)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    def _parse(self, source: str):
        items: List[_Item] = []
        pending_labels: List[str] = []
        labels_by_item: List[Tuple[str, int, str]] = []  # (label, item index, section)
        constants: Dict[str, int] = {}
        section = "text"

        def flush_labels() -> None:
            for label in pending_labels:
                labels_by_item.append((label, len(items), section))
            pending_labels.clear()

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                pending_labels.append(match.group(1))
                line = line[match.end():].strip()
            if not line:
                continue
            head, _, rest = line.partition(" ")
            head = head.strip()
            rest = rest.strip()
            if head.startswith("."):
                handled = self._parse_directive(
                    head, rest, line_no, raw, items, constants,
                    section, flush_labels,
                )
                if handled == "text" or handled == "data":
                    section = handled
                continue
            flush_labels()
            for mnemonic, args in self._expand_pseudo(head.lower(), rest,
                                                      line_no, raw):
                items.append(_Item(
                    kind="insn", section=section, line_no=line_no, line=raw,
                    mnemonic=mnemonic, args=args,
                ))
        # Labels at end of file attach to the end address.
        for label in pending_labels:
            labels_by_item.append((label, len(items), section))
        return items, labels_by_item, constants

    def _parse_directive(self, head, rest, line_no, raw, items, constants,
                         section, flush_labels) -> Optional[str]:
        name = head.lower()
        if name == ".text":
            flush_labels()
            return "text"
        if name in (".data", ".bss", ".rodata", ".section"):
            flush_labels()
            return "text" if ".text" in rest else "data" \
                if name == ".section" else "data"
        if name in (".globl", ".global", ".type", ".size", ".option",
                    ".file", ".attribute", ".p2align"):
            return None  # accepted and ignored
        if name in (".equ", ".set"):
            parts = _split_operands(rest)
            if len(parts) != 2:
                raise AsmError(f"{name} needs `name, value`", line_no, raw)
            constants[parts[0]] = self._eval(parts[1], constants, None,
                                             line_no, raw)
            return None
        flush_labels()
        if name in (".word", ".half", ".byte"):
            items.append(_Item(kind=name[1:], section=section,
                               line_no=line_no, line=raw,
                               exprs=_split_operands(rest)))
        elif name in (".ascii", ".asciz", ".string"):
            blob = _parse_string_literal(rest, line_no, raw)
            if name in (".asciz", ".string"):
                blob += b"\x00"
            items.append(_Item(kind="bytes", section=section,
                               line_no=line_no, line=raw, blob=blob))
        elif name in (".zero", ".space"):
            count = self._eval(rest, constants, None, line_no, raw)
            if count < 0:
                raise AsmError(f"negative {name} count", line_no, raw)
            items.append(_Item(kind="zero", section=section, line_no=line_no,
                               line=raw, count=count))
        elif name in (".align", ".balign"):
            value = self._eval(rest, constants, None, line_no, raw)
            boundary = value if name == ".balign" else (1 << value)
            items.append(_Item(kind="align", section=section,
                               line_no=line_no, line=raw, count=boundary))
        else:
            raise AsmError(f"unknown directive {head}", line_no, raw)
        return None

    # ------------------------------------------------------------------
    # Pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _expand_pseudo(self, name: str, rest: str, line_no: int,
                       raw: str) -> List[Tuple[str, List[str]]]:
        args = _split_operands(rest) if rest else []

        def need(count: int) -> None:
            if len(args) != count:
                raise AsmError(f"{name} expects {count} operands", line_no, raw)

        simple = {
            "nop": [("addi", ["zero", "zero", "0"])],
            "ret": [("jalr", ["zero", "ra", "0"])],
        }
        if name in simple:
            need(0)
            return simple[name]
        if name == "li":
            need(2)
            return self._expand_li(args[0], args[1])
        if name == "la":
            need(2)
            return [
                ("lui", [args[0], f"%hi({args[1]})"]),
                ("addi", [args[0], args[0], f"%lo({args[1]})"]),
            ]
        if name == "mv":
            need(2)
            return [("addi", [args[0], args[1], "0"])]
        if name == "not":
            need(2)
            return [("xori", [args[0], args[1], "-1"])]
        if name == "neg":
            need(2)
            return [("sub", [args[0], "zero", args[1]])]
        if name == "seqz":
            need(2)
            return [("sltiu", [args[0], args[1], "1"])]
        if name == "snez":
            need(2)
            return [("sltu", [args[0], "zero", args[1]])]
        if name == "sltz":
            need(2)
            return [("slt", [args[0], args[1], "zero"])]
        if name == "sgtz":
            need(2)
            return [("slt", [args[0], "zero", args[1]])]
        branch_zero = {
            "beqz": ("beq", False), "bnez": ("bne", False),
            "bgez": ("bge", False), "bltz": ("blt", False),
            "blez": ("bge", True), "bgtz": ("blt", True),
        }
        if name in branch_zero:
            need(2)
            base, swapped = branch_zero[name]
            ops = (["zero", args[0]] if swapped else [args[0], "zero"])
            return [(base, ops + [args[1]])]
        branch_swap = {
            "bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu",
        }
        if name in branch_swap:
            need(3)
            return [(branch_swap[name], [args[1], args[0], args[2]])]
        if name == "j":
            need(1)
            return [("jal", ["zero", args[0]])]
        if name == "jal" and len(args) == 1:
            return [("jal", ["ra", args[0]])]
        if name == "jr":
            need(1)
            return [("jalr", ["zero", args[0], "0"])]
        if name == "jalr" and len(args) == 1:
            return [("jalr", ["ra", args[0], "0"])]
        if name == "call":
            need(1)
            return [("jal", ["ra", args[0]])]
        if name == "tail":
            need(1)
            return [("jal", ["zero", args[0]])]
        if name == "csrr":
            need(2)
            return [("csrrs", [args[0], args[1], "zero"])]
        if name in ("csrw", "csrs", "csrc"):
            need(2)
            base = {"csrw": "csrrw", "csrs": "csrrs", "csrc": "csrrc"}[name]
            return [(base, ["zero", args[0], args[1]])]
        if name in ("csrwi", "csrsi", "csrci"):
            need(2)
            base = {"csrwi": "csrrwi", "csrsi": "csrrsi",
                    "csrci": "csrrci"}[name]
            return [(base, ["zero", args[0], args[1]])]
        if name in ("rdcycle", "rdtime", "rdinstret"):
            need(1)
            return [("csrrs", [args[0], name[2:], "zero"])]
        if name == "fmv.s":
            need(2)
            return [("fsgnj.s", [args[0], args[1], args[1]])]
        # Not a pseudo: must be a real mnemonic of the configured ISA.
        if name not in self.decoder.spec_by_name:
            raise AsmError(
                f"unknown mnemonic {name!r} for {self.isa.name}", line_no, raw
            )
        return [(name, args)]

    def _expand_li(self, rd: str, expr: str) -> List[Tuple[str, List[str]]]:
        try:
            value = int(expr, 0)
        except ValueError:
            # Symbolic: always the full two-instruction form.
            return [
                ("lui", [rd, f"%hi({expr})"]),
                ("addi", [rd, rd, f"%lo({expr})"]),
            ]
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value >= (1 << 31) else value
        if -2048 <= signed < 2048:
            return [("addi", [rd, "zero", str(signed)])]
        hi = ((value + 0x800) >> 12) & 0xFFFFF
        lo = value - ((hi << 12) & 0xFFFFFFFF)
        lo = lo - (1 << 32) if lo >= (1 << 31) else lo
        return [
            ("lui", [rd, str(hi)]),
            ("addi", [rd, rd, str(lo)]),
        ]

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------

    def _item_size(self, item: _Item, addr: int) -> int:
        if item.kind == "insn":
            spec = self.decoder.spec_by_name[item.mnemonic]
            return spec.length
        if item.kind == "word":
            return 4 * len(item.exprs)
        if item.kind == "half":
            return 2 * len(item.exprs)
        if item.kind == "byte":
            return len(item.exprs)
        if item.kind == "bytes":
            return len(item.blob)
        if item.kind == "zero":
            return item.count
        if item.kind == "align":
            boundary = item.count
            if boundary <= 0 or boundary & (boundary - 1):
                raise AsmError("alignment must be a power of two",
                               item.line_no, item.line)
            return (-addr) % boundary
        raise AsmError(f"internal: unknown item kind {item.kind}",
                       item.line_no, item.line)

    def _layout(self, items: List[_Item], labels_by_item, constants):
        text_addr = self.text_base
        for item in items:
            if item.section != "text":
                continue
            item.addr = text_addr
            item.size = self._item_size(item, text_addr)
            text_addr += item.size
        data_addr = self.data_base
        if data_addr is None:
            data_addr = (text_addr + 15) & ~15
        for item in items:
            if item.section != "data":
                continue
            item.addr = data_addr
            item.size = self._item_size(item, data_addr)
            data_addr += item.size
        end_addr = {"text": text_addr, "data": data_addr}
        symbols = dict(constants)
        for label, index, section in labels_by_item:
            if label in symbols:
                raise AsmError(f"duplicate label {label!r}")
            for item in items[index:]:
                if item.section == section:
                    symbols[label] = item.addr
                    break
            else:
                symbols[label] = end_addr[section]
        return symbols

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, text: str, symbols: Dict[str, int], pc: Optional[int],
              line_no: int, line: str) -> int:
        return self._eval_inner(text.strip(), symbols, pc, line_no, line)

    def _eval_inner(self, text, symbols, pc, line_no, line) -> int:
        if not text:
            raise AsmError("empty expression", line_no, line)
        lowered = text.lower()
        if lowered.startswith("%hi(") and text.endswith(")"):
            value = self._eval_inner(text[4:-1], symbols, pc, line_no, line)
            return ((value + 0x800) >> 12) & 0xFFFFF
        if lowered.startswith("%lo(") and text.endswith(")"):
            value = self._eval_inner(text[4:-1], symbols, pc, line_no, line)
            lo = value & 0xFFF
            return lo - 0x1000 if lo >= 0x800 else lo
        # Binary +/- at top level, left-associative: scan from the right so
        # "a-b+c" parses as (a-b)+c.
        depth = 0
        for i in range(len(text) - 1, 0, -1):
            ch = text[i]
            if ch == ")":
                depth += 1
            elif ch == "(":
                depth -= 1
            elif depth == 0 and ch in "+-" and text[i - 1] not in "+-*(":
                left = text[:i].strip()
                right = text[i + 1:].strip()
                if left and not left.endswith("%"):
                    lhs = self._eval_inner(left, symbols, pc, line_no, line)
                    rhs = self._eval_inner(right, symbols, pc, line_no, line)
                    return lhs + rhs if ch == "+" else lhs - rhs
        if text == ".":
            if pc is None:
                raise AsmError("`.` not allowed here", line_no, line)
            return pc
        if len(text) == 3 and text[0] == "'" and text[-1] == "'":
            return ord(text[1])
        try:
            return int(text, 0)
        except ValueError:
            pass
        if _IDENT_RE.fullmatch(text):
            if text in symbols:
                return symbols[text]
            raise AsmError(f"undefined symbol {text!r}", line_no, line)
        raise AsmError(f"cannot evaluate expression {text!r}", line_no, line)

    @staticmethod
    def _mentions_symbol(text: str) -> bool:
        stripped = re.sub(r"%(hi|lo)\(", "(", text)
        for token in _IDENT_RE.findall(stripped):
            if not re.fullmatch(r"0[xXbBoO]?\w*|\d\w*", token):
                return True
        return False

    # ------------------------------------------------------------------
    # Pass 2: emission
    # ------------------------------------------------------------------

    def _encode_insn(self, item: _Item, symbols: Dict[str, int]) -> bytes:
        spec = self.decoder.spec_by_name[item.mnemonic]
        roles = operand_roles(spec)
        args = list(item.args)
        syntax = spec.syntax
        # Re-split memory operands: "imm(rs1)" -> imm, rs1.
        if syntax in _MEM_SYNTAXES and len(args) == len(roles) - 1:
            match = re.fullmatch(r"(.*)\((\s*[\w$.]+\s*)\)", args[-1].strip())
            if not match:
                raise AsmError(f"{item.mnemonic} needs `reg, imm(base)`",
                               item.line_no, item.line)
            offset = match.group(1).strip() or "0"
            args = args[:-1] + [offset, match.group(2).strip()]
        if syntax in _SP_MEM_SYNTAXES:
            match = re.fullmatch(r"(.*)\(\s*(?:sp|x2)\s*\)", args[-1].strip())
            if match:
                args = args[:-1] + [match.group(1).strip() or "0"]
        if len(args) != len(roles):
            raise AsmError(
                f"{item.mnemonic} expects operands {roles}, got {args}",
                item.line_no, item.line,
            )
        values: List[int] = []
        for role, arg in zip(roles, args):
            if role in ("rd", "rs1", "rs2"):
                try:
                    values.append(parse_gpr(arg))
                except KeyError as exc:
                    raise AsmError(str(exc), item.line_no, item.line) from None
            elif role in ("frd", "frs1", "frs2"):
                try:
                    values.append(parse_fpr(arg))
                except KeyError as exc:
                    raise AsmError(str(exc), item.line_no, item.line) from None
            elif role == "csr":
                if arg.lower() in CSR_ADDRS:
                    values.append(CSR_ADDRS[arg.lower()])
                else:
                    values.append(self._eval(arg, symbols, item.addr,
                                             item.line_no, item.line))
            elif role == "imm":
                value = self._eval(arg, symbols, item.addr,
                                   item.line_no, item.line)
                if (syntax in _PCREL_SYNTAXES or spec.name == "jal") and \
                        self._mentions_symbol(arg):
                    value -= item.addr
                values.append(value)
            else:
                raise AsmError(f"internal: unknown role {role}",
                               item.line_no, item.line)
        try:
            word = encode(self.decoder, item.mnemonic, *values)
        except EncodingError as exc:
            raise AsmError(str(exc), item.line_no, item.line) from None
        return word.to_bytes(spec.length, "little")

    def _emit(self, items: List[_Item], symbols) -> List[Tuple[int, bytes]]:
        chunks: Dict[str, bytearray] = {"text": bytearray(), "data": bytearray()}
        bases: Dict[str, Optional[int]] = {"text": None, "data": None}
        for item in items:
            buf = chunks[item.section]
            if bases[item.section] is None:
                bases[item.section] = item.addr
            if item.kind == "insn":
                buf += self._encode_insn(item, symbols)
            elif item.kind in ("word", "half", "byte"):
                width = {"word": 4, "half": 2, "byte": 1}[item.kind]
                for expr in item.exprs:
                    value = self._eval(expr, symbols, item.addr,
                                       item.line_no, item.line)
                    buf += (value & ((1 << (8 * width)) - 1)).to_bytes(
                        width, "little")
            elif item.kind == "bytes":
                buf += item.blob
            elif item.kind in ("zero", "align"):
                buf += bytes(item.size)
        segments = []
        for section, buf in chunks.items():
            if buf:
                segments.append((bases[section], bytes(buf)))
        return segments


def assemble(source: str, isa: IsaConfig = RV32IMC_ZICSR,
             text_base: int = DEFAULT_TEXT_BASE,
             data_base: Optional[int] = None) -> Program:
    """Convenience one-shot assembly."""
    return Assembler(isa, text_base, data_base).assemble(source)
