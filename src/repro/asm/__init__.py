"""Assembler and program image format."""

from .assembler import AsmError, Assembler, DEFAULT_TEXT_BASE, assemble
from .listing import render_listing
from .program import Program

__all__ = ["AsmError", "Assembler", "DEFAULT_TEXT_BASE", "Program",
           "assemble", "render_listing"]
