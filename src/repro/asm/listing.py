"""Disassembly listings — an ``objdump``-style view of program images.

Renders a :class:`~repro.asm.Program` as an annotated listing: symbols as
section headers, one line per instruction with address, raw encoding, and
disassembly; data segments as hex dumps.  Used by the CLI's ``disasm``
command and handy when debugging generated programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.decoder import Decoder, IllegalInstructionError, IsaConfig
from ..isa.disasm import disassemble
from .program import Program


def _symbols_by_address(program: Program) -> Dict[int, List[str]]:
    table: Dict[int, List[str]] = {}
    for name, addr in sorted(program.symbols.items()):
        table.setdefault(addr, []).append(name)
    return table


def disassemble_segment(addr: int, blob: bytes, decoder: Decoder,
                        symbols: Dict[int, List[str]]) -> List[str]:
    """Instruction listing for one code segment."""
    lines: List[str] = []
    offset = 0
    while offset < len(blob):
        pc = addr + offset
        for name in symbols.get(pc, ()):
            lines.append(f"\n{pc:08x} <{name}>:")
        low = int.from_bytes(blob[offset:offset + 2], "little")
        if low & 0x3 == 0x3 and offset + 4 <= len(blob):
            word = int.from_bytes(blob[offset:offset + 4], "little")
            length = 4
            encoding = f"{word:08x}"
        else:
            word = low
            length = 2
            encoding = f"    {word:04x}"
        try:
            text = disassemble(decoder.decode(word, pc), pc=pc)
        except IllegalInstructionError:
            text = f".word {word:#x}" if length == 4 else f".half {word:#x}"
        lines.append(f"  {pc:08x}:  {encoding}    {text}")
        offset += length
    return lines


def hexdump_segment(addr: int, blob: bytes,
                    symbols: Dict[int, List[str]]) -> List[str]:
    """Hex dump for a data segment, 16 bytes per row with ASCII gutter."""
    lines: List[str] = []
    for row_start in range(0, len(blob), 16):
        row = blob[row_start:row_start + 16]
        pc = addr + row_start
        for i in range(len(row)):
            for name in symbols.get(pc + i, ()):
                lines.append(f"\n{pc + i:08x} <{name}>:")
        hex_part = " ".join(f"{b:02x}" for b in row)
        ascii_part = "".join(chr(b) if 32 <= b < 127 else "." for b in row)
        lines.append(f"  {pc:08x}:  {hex_part:<47}  |{ascii_part}|")
    return lines


def render_listing(program: Program,
                   isa: Optional[IsaConfig] = None) -> str:
    """Full listing of ``program``: code disassembled, data hex-dumped."""
    isa = isa or IsaConfig.from_string(program.isa_name)
    decoder = Decoder(isa)
    symbols = _symbols_by_address(program)
    text_addr, _text_blob = program.text_segment
    lines = [
        f"program image: entry {program.entry:#010x}, isa {program.isa_name}",
    ]
    for addr, blob in program.segments:
        kind = "code" if addr == text_addr else "data"
        lines.append(f"\nsegment {addr:#010x}..{addr + len(blob):#010x} "
                     f"({len(blob)} bytes, {kind}):")
        if kind == "code":
            lines.extend(disassemble_segment(addr, blob, decoder, symbols))
        else:
            lines.extend(hexdump_segment(addr, blob, symbols))
    return "\n".join(lines)
