"""The program image format produced by the assembler and consumed by the
machine loader, the CFG builder, and the fault-injection mutant generator.

A :class:`Program` is a small, self-describing replacement for an ELF file:
load segments, an entry point, and a symbol table.  It deliberately stays a
plain in-memory object with a trivial (de)serialisation, because every
Scale4Edge tool in this repo wants cheap structural access to the code
bytes (mutation, disassembly, CFG reconstruction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Program:
    """An executable image.

    Attributes:
        segments: list of ``(load_address, bytes)`` pairs, sorted by address.
        entry: initial pc.
        symbols: label -> address map.
        isa_name: the ISA configuration string the program was built for.
    """

    segments: List[Tuple[int, bytes]]
    entry: int
    symbols: Dict[str, int] = field(default_factory=dict)
    isa_name: str = "RV32I"

    def __post_init__(self) -> None:
        self.segments = sorted(
            [(addr, bytes(blob)) for addr, blob in self.segments],
            key=lambda seg: seg[0],
        )
        for (a_addr, a_blob), (b_addr, _) in zip(self.segments, self.segments[1:]):
            if a_addr + len(a_blob) > b_addr:
                raise ValueError(
                    f"overlapping segments at {a_addr:#x} and {b_addr:#x}"
                )

    # ------------------------------------------------------------------

    @property
    def text_segment(self) -> Tuple[int, bytes]:
        """The segment containing the entry point (the code segment)."""
        for addr, blob in self.segments:
            if addr <= self.entry < addr + len(blob):
                return addr, blob
        raise ValueError(f"entry {self.entry:#x} not inside any segment")

    @property
    def total_size(self) -> int:
        return sum(len(blob) for _addr, blob in self.segments)

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise KeyError(f"undefined symbol {symbol!r}") from None

    def byte_at(self, addr: int) -> int:
        for base, blob in self.segments:
            if base <= addr < base + len(blob):
                return blob[addr - base]
        raise ValueError(f"address {addr:#x} not inside any segment")

    def with_patch(self, addr: int, patch: bytes) -> "Program":
        """A copy with ``patch`` overwriting bytes at ``addr``.

        Used by the fault-injection mutant generator to flip bits in the
        binary without touching the original image.
        """
        new_segments: List[Tuple[int, bytes]] = []
        patched = False
        for base, blob in self.segments:
            if base <= addr and addr + len(patch) <= base + len(blob):
                offset = addr - base
                mutable = bytearray(blob)
                mutable[offset:offset + len(patch)] = patch
                new_segments.append((base, bytes(mutable)))
                patched = True
            else:
                new_segments.append((base, blob))
        if not patched:
            raise ValueError(f"patch at {addr:#x} not inside any segment")
        return Program(new_segments, self.entry, dict(self.symbols), self.isa_name)

    # ------------------------------------------------------------------
    # (De)serialisation — a JSON header plus hex-encoded segment payloads.
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "format": "repro-program-v1",
            "entry": self.entry,
            "isa": self.isa_name,
            "symbols": self.symbols,
            "segments": [
                {"addr": addr, "data": blob.hex()}
                for addr, blob in self.segments
            ],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Program":
        payload = json.loads(text)
        if payload.get("format") != "repro-program-v1":
            raise ValueError("not a repro program image")
        return cls(
            segments=[
                (seg["addr"], bytes.fromhex(seg["data"]))
                for seg in payload["segments"]
            ],
            entry=payload["entry"],
            symbols={name: addr for name, addr in payload["symbols"].items()},
            isa_name=payload.get("isa", "RV32I"),
        )
