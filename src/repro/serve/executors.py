"""Job-kind registry: JSON payloads onto the library entry points.

Each executor is a plain function ``(payload: dict, ctx: JobContext) ->
dict`` — JSON in, JSON out — so jobs can cross the HTTP boundary and be
shipped to spawn-started worker processes unchanged.  Executors call
``ctx.check()`` at natural yield points to honour cooperative
cancellation and run timeouts; all simulation work is additionally
bounded by instruction budgets.

Built-in kinds:

================ =====================================================
``vp_run``       assemble + run on the VP (UART output, stop reason)
``fault_campaign`` coverage-guided mutant campaign, the CLI's default
                 mutant mix; results byte-identical to a direct
                 :meth:`FaultCampaign.run`
``coverage``     instruction/register coverage of one program
``wcet``         full QTA flow: static bound + co-simulation
``fuzz``         coverage-guided fuzzing session (``repro fuzz``)
``verify``       differential verification campaign (``repro verify``):
                 corpus x configuration matrix with lockstep escalation
``fault_campaign_shard`` one deterministic slice of a campaign's fault
                 list (cluster work unit; see :mod:`repro.cluster`)
``fuzz_eval``    evaluate a batch of fuzz inputs and return their
                 signatures/classifications (cluster work unit)
``verify_shard`` one contiguous program range of a verify campaign
                 (cluster work unit)
================ =====================================================

The ``*_shard``/``*_eval`` kinds are the cluster fabric's work
units: a coordinator decomposes a campaign or fuzz job into them with a
plan derived *only* from the job spec, so however many nodes execute
them the order-restored merge is byte-identical to a single-process
run.  Third-party code registers new kinds with
:func:`register_executor`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from .jobs import JobContext, null_context

__all__ = [
    "ExecutorError",
    "execute_job",
    "execute_job_traced",
    "job_kinds",
    "register_executor",
]


class ExecutorError(Exception):
    """A job payload the executor cannot act on (bad request, not a bug)."""


_EXECUTORS: Dict[str, Callable[[Dict[str, Any], JobContext],
                               Dict[str, Any]]] = {}


def register_executor(kind: str):
    """Decorator: register ``fn`` as the executor for ``kind``."""
    def decorator(fn):
        _EXECUTORS[kind] = fn
        return fn
    return decorator


def job_kinds() -> List[str]:
    """The registered job kinds, sorted."""
    return sorted(_EXECUTORS)


def execute_job(kind: str, payload: Dict[str, Any],
                ctx: Optional[JobContext] = None) -> Dict[str, Any]:
    """Execute one job synchronously and return its JSON result.

    This is the single entry point used by worker threads, worker
    processes, and tests — the service never executes work any other
    way, which is what makes service results identical to direct calls.
    """
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise ExecutorError(
            f"unknown job kind {kind!r}; known kinds: {job_kinds()}")
    return executor(payload, ctx if ctx is not None else null_context())


def execute_job_traced(kind: str, payload: Dict[str, Any],
                       trace: Optional[Dict[str, Any]] = None,
                       job_id: Optional[str] = None,
                       ctx: Optional[JobContext] = None) -> Dict[str, Any]:
    """Execute one job while collecting its telemetry events.

    Runs the executor under a fresh thread-local telemetry session so
    the job's VP/campaign/fuzz events are captured in isolation, tags
    every record with the trace context, the job id, and this process's
    pid, and returns ``{"result", "events", "pid", "origin"}``.

    ``origin`` is the event log's monotonic-clock zero; since
    ``CLOCK_MONOTONIC`` is system-wide on Linux, a parent process can
    rebase the events onto its own log by shifting each ``ts_us`` by
    ``(origin - parent_origin) * 1e6``.  Module-level and JSON-in /
    JSON-out, so ``pool.apply_async`` can ship it to spawn-started
    worker processes unchanged.
    """
    import os

    from ..telemetry import Telemetry, thread_telemetry_session

    session = Telemetry()
    with thread_telemetry_session(session):
        result = execute_job(kind, payload, ctx)
    tags: Dict[str, Any] = {"pid": os.getpid()}
    if job_id is not None:
        tags["job"] = job_id
    if trace:
        tags.update({key: value for key, value in trace.items()
                     if value is not None})
    events = [{**record, **tags} for record in session.events]
    return {
        "result": result,
        "events": events,
        "pid": tags["pid"],
        "origin": session.events.origin,
    }


# ----------------------------------------------------------------------
# Payload helpers
# ----------------------------------------------------------------------

def _isa_for(payload: Dict[str, Any]):
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)
    from ..isa.decoder import IsaConfig

    return IsaConfig.from_string(payload.get("isa", "rv32imc_zicsr"))


def _program_for(payload: Dict[str, Any], isa):
    from ..asm import assemble

    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ExecutorError("payload needs a non-empty 'source' string")
    try:
        return assemble(source, isa=isa)
    except Exception as exc:
        raise ExecutorError(f"assembly failed: {exc}") from exc


def _int_field(payload: Dict[str, Any], name: str, default: int,
               minimum: int = 0) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ExecutorError(f"payload field {name!r} must be an integer "
                            f">= {minimum}")
    return value


def _backend_field(payload: Dict[str, Any]) -> str:
    from ..vp.backends import BACKEND_NAMES

    value = payload.get("backend", "fastpath")
    if value not in BACKEND_NAMES:
        raise ExecutorError(
            f"payload field 'backend' must be one of {BACKEND_NAMES}")
    return value


# ----------------------------------------------------------------------
# Built-in executors
# ----------------------------------------------------------------------

@register_executor("vp_run")
def run_vp_job(payload: Dict[str, Any], ctx: JobContext) -> Dict[str, Any]:
    """Assemble and run one program on the VP.

    When an enabled telemetry session is ambient (a ``--stats`` CLI run,
    or a traced service job collecting events on a worker), the phases
    show up as ``vp.assemble`` / ``vp.load`` spans and the machine emits
    its ``run.started`` / ``run.finished`` lifecycle events.
    """
    from ..telemetry.session import current_telemetry
    from ..vp.machine import Machine, MachineConfig

    telemetry = current_telemetry()
    isa = _isa_for(payload)
    with telemetry.events.span("vp.assemble", isa=isa.name):
        program = _program_for(payload, isa)
    budget = _int_field(payload, "max_instructions", 10_000_000, minimum=1)
    ctx.check()
    machine = Machine(MachineConfig(isa=isa, backend=_backend_field(payload)))
    if telemetry.enabled:
        machine.telemetry = telemetry
    with telemetry.events.span("vp.load"):
        machine.load(program)
    result = machine.run(max_instructions=budget)
    out = {
        "stop_reason": result.stop_reason,
        "exit_code": result.exit_code,
        "trap_cause": result.trap_cause,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "uart_output": machine.uart.output,
    }
    jit = machine.jit_stats()
    if jit is not None:
        out["jit"] = jit
    return out


def campaign_session_from_payload(payload: Dict[str, Any]):
    """Build the (campaign, golden, faults) triple a ``fault_campaign``
    payload describes.

    One shared code path for the whole-campaign executor, the
    per-shard executor, and the cluster coordinator's merge validation —
    sharing it is what makes a sharded campaign byte-identical to a
    single-process one (same program, same deterministic fault list).
    """
    from ..faultsim import FaultCampaign, default_campaign_mutants

    isa = _isa_for(payload)
    program = _program_for(payload, isa)
    mutants = _int_field(payload, "mutants", 100, minimum=1)
    seed = _int_field(payload, "seed", 0)
    checkpoints = bool(payload.get("checkpoints", True))
    digest_interval = payload.get("digest_interval")
    if digest_interval is not None:
        digest_interval = _int_field(payload, "digest_interval", 0, minimum=1)
    campaign = FaultCampaign(program, isa=isa, checkpoints=checkpoints,
                             digest_interval=digest_interval,
                             backend=_backend_field(payload))
    golden = campaign.golden()
    faults = default_campaign_mutants(
        program, isa=isa, mutants=mutants, seed=seed,
        golden_instructions=golden.instructions)
    return campaign, golden, faults


def campaign_result_dict(golden_dict: Dict[str, Any],
                         campaign_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The ``fault_campaign`` result envelope from its parts.

    Used by the whole-campaign executor below and by the cluster merge —
    both must emit the exact same envelope for shard parity to hold."""
    from ..faultsim import CampaignResult

    result = CampaignResult.from_dict(campaign_dict)
    return {
        "golden": {
            "exit_code": golden_dict["exit_code"],
            "instructions": golden_dict["instructions"],
            "cycles": golden_dict["cycles"],
        },
        "mutants": result.total,
        "counts": result.counts,
        "normal_termination_fraction": result.normal_termination_fraction,
        "elapsed_seconds": round(campaign_dict["elapsed_seconds"], 6),
        "campaign": campaign_dict,
    }


def shard_bounds(total: int, shard_count: int, shard_index: int
                 ) -> "Tuple[int, int]":
    """The ``[lo, hi)`` slice of ``total`` items shard ``shard_index``
    of ``shard_count`` owns — contiguous, balanced, and a pure function
    of its arguments (never of cluster shape or arrival order)."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard_index {shard_index} out of range for "
                         f"{shard_count} shards")
    base, extra = divmod(total, shard_count)
    lo = shard_index * base + min(shard_index, extra)
    hi = lo + base + (1 if shard_index < extra else 0)
    return lo, hi


@register_executor("fault_campaign")
def run_fault_campaign_job(payload: Dict[str, Any],
                           ctx: JobContext) -> Dict[str, Any]:
    """Coverage-guided fault campaign; the full classified result rides
    along under ``campaign`` (``CampaignResult.to_dict()``)."""
    # jobs=1 keeps a service job single-process (the pool provides the
    # concurrency); jobs=0 auto-detects CPUs, jobs>1 pins a count.
    jobs = _int_field(payload, "jobs", 1, minimum=0)
    campaign, golden, faults = campaign_session_from_payload(payload)
    ctx.check()

    def on_progress(progress):
        ctx.check()

    result = campaign.run(faults, jobs=jobs, on_progress=on_progress,
                          progress_interval=0.2)
    from dataclasses import asdict

    return campaign_result_dict(asdict(golden), result.to_dict())


@register_executor("fault_campaign_shard")
def run_fault_campaign_shard(payload: Dict[str, Any],
                             ctx: JobContext) -> Dict[str, Any]:
    """One deterministic slice of a fault campaign (cluster work unit).

    The payload is a whole ``fault_campaign`` payload plus
    ``shard_index`` / ``shard_count``; the node rebuilds the same
    campaign and the same seeded fault list, then classifies only its
    ``[lo, hi)`` slice.  Mutant classifications are independent of each
    other (pinned by the PR 2/4 parity suites), so a coordinator
    concatenating the shard slices in index order reproduces the
    single-process ``CampaignResult.results`` byte-for-byte.
    """
    from dataclasses import asdict

    shard_count = _int_field(payload, "shard_count", 1, minimum=1)
    shard_index = _int_field(payload, "shard_index", 0)
    if shard_index >= shard_count:
        raise ExecutorError(f"shard_index {shard_index} out of range for "
                            f"shard_count {shard_count}")
    campaign, golden, faults = campaign_session_from_payload(payload)
    lo, hi = shard_bounds(len(faults), shard_count, shard_index)
    ctx.check()

    def on_progress(progress):
        ctx.check()

    result = campaign.run(faults[lo:hi], on_progress=on_progress,
                          progress_interval=0.2)
    return {
        "shard_index": shard_index,
        "shard_count": shard_count,
        "lo": lo,
        "hi": hi,
        "golden": asdict(golden),
        "results": result.to_dict()["results"],
        "elapsed_seconds": round(result.elapsed_seconds, 6),
    }


def fuzz_session_from_payload(payload: Dict[str, Any]):
    """The ``(isa, config, seeds)`` triple a ``fuzz`` payload describes.

    Shared by the single-process ``fuzz`` executor and the cluster
    coordinator's distributed fuzz driver, so both fuzz the exact same
    session — same config, same seed corpus — and byte-identical final
    corpora follow from the engine's determinism contract.
    """
    from ..fuzz import FuzzConfig, suite_seeds, trivial_seed

    isa = _isa_for(payload)
    config = FuzzConfig(
        iterations=_int_field(payload, "iterations", 2000, minimum=1),
        seed=_int_field(payload, "seed", 0),
        # jobs=1 keeps a service job single-process (the service pool
        # provides the concurrency); jobs=0 auto-detects CPUs.
        jobs=_int_field(payload, "jobs", 1, minimum=0),
        batch_size=_int_field(payload, "batch_size", 32, minimum=1),
        max_instructions=_int_field(payload, "max_instructions", 5000,
                                    minimum=1),
        minimize=bool(payload.get("minimize", True)),
        lockstep=bool(payload.get("lockstep", False)),
        backend=_backend_field(payload),
    )
    kind = payload.get("seeds", "suites")
    if kind == "trivial":
        seeds = trivial_seed(isa)
    elif kind == "suites":
        seeds = suite_seeds(isa, seed=config.seed)
    else:
        raise ExecutorError(
            "payload field 'seeds' must be 'suites' or 'trivial'")
    return isa, config, seeds


@register_executor("fuzz")
def run_fuzz_job(payload: Dict[str, Any], ctx: JobContext) -> Dict[str, Any]:
    """Coverage-guided fuzzing session; returns ``FuzzResult.to_dict()``.

    Unlike the other kinds, ``source`` is optional — the seed corpus
    defaults to the generated testgen suites (``seeds: "suites"``) or a
    single trivial instruction (``seeds: "trivial"``).  Same ``seed`` ⇒
    identical ``corpus_signatures``, whatever ``jobs`` is.
    """
    from ..fuzz import FuzzEngine

    isa, config, seeds = fuzz_session_from_payload(payload)
    ctx.check()
    engine = FuzzEngine(isa, config)

    def on_progress(progress):
        ctx.check()

    result = engine.run(seeds, on_progress=on_progress,
                        progress_interval=0.2)
    return result.to_dict()


#: Per-process cache of fuzz evaluators, keyed on the evaluation spec.
#: A node serving a stream of ``fuzz_eval`` work items for one session
#: rebuilds nothing: the evaluator restores its pristine snapshot
#: between inputs, which is exactly what guarantees batch results are
#: independent of which node (or which order) evaluated them.  The
#: machine itself is NOT thread-safe, so each cached evaluator carries a
#: lock — two worker nodes hosted in one process (tests, `repro node
#: --capacity`) must serialize on it or their interleaved execution
#: corrupts both results.
_FUZZ_EVALUATORS: Dict[Tuple[str, int, str], Any] = {}
_FUZZ_EVALUATOR_CACHE_MAX = 4
_FUZZ_EVALUATOR_GUARD = threading.Lock()


def _fuzz_evaluator_for(isa_name: str, max_instructions: int, backend: str):
    from ..fuzz import ProgramEvaluator
    from ..isa.decoder import IsaConfig

    key = (isa_name, max_instructions, backend)
    with _FUZZ_EVALUATOR_GUARD:
        entry = _FUZZ_EVALUATORS.get(key)
        if entry is None:
            if len(_FUZZ_EVALUATORS) >= _FUZZ_EVALUATOR_CACHE_MAX:
                _FUZZ_EVALUATORS.clear()
            entry = (ProgramEvaluator(
                IsaConfig.from_string(isa_name),
                max_instructions=max_instructions, backend=backend),
                threading.Lock())
            _FUZZ_EVALUATORS[key] = entry
    return entry


@register_executor("fuzz_eval")
def run_fuzz_eval(payload: Dict[str, Any], ctx: JobContext) -> Dict[str, Any]:
    """Evaluate a batch of fuzz inputs (cluster work unit).

    The payload carries plain instruction-word lists; the result carries
    one serialized :class:`~repro.fuzz.executor.EvalResult` per input,
    in submission order.  Evaluations are pure and independent, so a
    coordinator can shard a fuzz batch across nodes and reassemble the
    results into submission order with no effect on the corpus
    trajectory.
    """
    inputs = payload.get("inputs")
    if not isinstance(inputs, list) or not inputs or not all(
            isinstance(words, list) and all(
                isinstance(word, int) and not isinstance(word, bool)
                for word in words)
            for words in inputs):
        raise ExecutorError("payload field 'inputs' must be a non-empty "
                            "list of instruction-word lists")
    isa_name = payload.get("isa", "rv32imc_zicsr")
    max_instructions = _int_field(payload, "max_instructions", 5000,
                                  minimum=1)
    backend = _backend_field(payload)
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)

    try:
        evaluator, guard = _fuzz_evaluator_for(isa_name, max_instructions,
                                               backend)
    except Exception as exc:
        raise ExecutorError(f"cannot build evaluator: {exc}") from exc
    results = []
    with guard:
        for words in inputs:
            ctx.check()
            results.append(evaluator.evaluate(tuple(words)).to_dict())
    return {"results": results, "count": len(results)}


def verify_session_from_payload(payload: Dict[str, Any]):
    """The :class:`~repro.verify.DiffCampaign` a ``verify`` payload
    describes.

    Shared by the whole-campaign executor, the per-shard executor, and
    the cluster merge's validation — campaigns are pure functions of
    ``(isa, config)``, so one shared construction path is what makes the
    sharded report byte-identical to a single-process run.
    """
    from ..verify import DiffCampaign, VerifyCampaignConfig

    isa = _isa_for(payload)
    corpus = payload.get("corpus", "suites")
    matrix = payload.get("matrix", "backends")
    for name, value in (("corpus", corpus), ("matrix", matrix)):
        if not isinstance(value, str) or not value.strip():
            raise ExecutorError(
                f"payload field {name!r} must be a non-empty string")
    config = VerifyCampaignConfig(
        corpus=corpus,
        matrix=matrix,
        seed=_int_field(payload, "seed", 0),
        max_instructions=_int_field(payload, "max_instructions", 20_000,
                                    minimum=1),
        repeats=_int_field(payload, "repeats", 4, minimum=1),
        checkpoint_split=_int_field(payload, "checkpoint_split", 200,
                                    minimum=1),
        minimize_evals=_int_field(payload, "minimize_evals", 24),
        # jobs=1 keeps a service job single-process (the pool provides
        # the concurrency); jobs=0 auto-detects CPUs.
        jobs=_int_field(payload, "jobs", 1, minimum=0),
    )
    try:
        campaign = DiffCampaign(isa, config)
        campaign.corpus()  # surface bad corpus specs as bad requests
    except (ValueError, OSError) as exc:
        raise ExecutorError(str(exc)) from exc
    return campaign


@register_executor("verify")
def run_verify_job(payload: Dict[str, Any], ctx: JobContext) -> Dict[str, Any]:
    """Differential verification campaign; returns the canonical report
    (:func:`repro.verify.verify_report_dict`).  Like ``fuzz``, no
    ``source`` — the corpus spec names the programs."""
    campaign = verify_session_from_payload(payload)
    ctx.check()

    def on_progress(done):
        ctx.check()

    return campaign.run(on_progress=on_progress,
                        progress_interval=0.2).to_dict()


@register_executor("verify_shard")
def run_verify_shard(payload: Dict[str, Any],
                     ctx: JobContext) -> Dict[str, Any]:
    """One contiguous program range of a verify campaign (cluster work
    unit).

    The payload is a whole ``verify`` payload plus ``shard_index`` /
    ``shard_count``; the node rebuilds the same seeded corpus and
    matrix, then verifies only its ``[lo, hi)`` programs.  Per-program
    comparisons are independent, so concatenating shard escalation lists
    in index order reproduces the single-process campaign exactly.
    """
    import time

    shard_count = _int_field(payload, "shard_count", 1, minimum=1)
    shard_index = _int_field(payload, "shard_index", 0)
    if shard_index >= shard_count:
        raise ExecutorError(f"shard_index {shard_index} out of range for "
                            f"shard_count {shard_count}")
    campaign = verify_session_from_payload(payload)
    lo, hi = shard_bounds(len(campaign.corpus()), shard_count, shard_index)
    ctx.check()
    started = time.perf_counter()

    def on_progress(done):
        ctx.check()

    escalations = campaign.run_range(lo, hi, on_progress=on_progress)
    return {
        "shard_index": shard_index,
        "shard_count": shard_count,
        "lo": lo,
        "hi": hi,
        "meta": campaign.meta(),
        "escalations": escalations,
        "elapsed_seconds": round(time.perf_counter() - started, 6),
    }


@register_executor("coverage")
def run_coverage_job(payload: Dict[str, Any],
                     ctx: JobContext) -> Dict[str, Any]:
    """Instruction-type and register coverage of one program."""
    from ..coverage import measure_coverage

    isa = _isa_for(payload)
    program = _program_for(payload, isa)
    budget = _int_field(payload, "max_instructions", 1_000_000, minimum=1)
    ctx.check()
    report = measure_coverage(program, isa=isa, max_instructions=budget)
    return {
        "isa": report.isa_name,
        "insn_coverage": round(report.insn_coverage, 6),
        "gpr_coverage": round(report.gpr_coverage, 6),
        "insn_types_executed": len(report.insn_types),
        "insn_universe": len(report.insn_universe),
        "missed_insn_types": sorted(report.missed_insn_types()),
    }


@register_executor("wcet")
def run_wcet_job(payload: Dict[str, Any], ctx: JobContext) -> Dict[str, Any]:
    """Full QTA flow: static IPET bound + timing-annotated co-simulation."""
    from ..wcet import analyze_program

    isa = _isa_for(payload)
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ExecutorError("payload needs a non-empty 'source' string")
    budget = _int_field(payload, "max_instructions", 10_000_000, minimum=1)
    edge_sensitive = bool(payload.get("edge_sensitive", False))
    ctx.check()
    try:
        analysis = analyze_program(source, isa=isa, max_instructions=budget,
                                   edge_sensitive=edge_sensitive)
    except Exception as exc:
        raise ExecutorError(f"WCET analysis failed: {exc}") from exc
    result = analysis.result
    return {
        "static_bound_cycles": analysis.static_bound.cycles,
        "method": analysis.static_bound.method,
        "wcet_time": result.wcet_time,
        "actual_cycles": result.actual_cycles,
        "instructions": result.instructions,
        "pessimism": round(result.pessimism, 6),
    }
