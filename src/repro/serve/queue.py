"""Admission-controlled bounded priority queue with backpressure.

The queue is the service's **admission controller**: a hard capacity
bound is enforced at :meth:`AdmissionQueue.put` time, and a full queue
raises :class:`QueueFull` immediately instead of blocking — the HTTP
layer maps that to a 429 response so clients back off.  Ordering is

1. **priority** (larger first),
2. **deadline** (earlier first; no deadline sorts last),
3. **submission order** (FIFO tiebreak).

so a late-arriving urgent job overtakes queued bulk work.  The queue is
thread-safe; consumers block in :meth:`get` until a job, a timeout, or
:meth:`close`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from typing import List, Optional, Tuple

from .jobs import Job

__all__ = ["AdmissionQueue", "QueueClosed", "QueueFull"]


class QueueFull(Exception):
    """Admission rejected: the queue is at capacity (HTTP 429)."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"queue full ({limit} jobs queued); retry later")
        self.limit = limit


class QueueClosed(Exception):
    """The queue no longer accepts work (service shutting down)."""


class AdmissionQueue:
    """A bounded, closable priority queue of :class:`Job` objects."""

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._heap: List[Tuple[Tuple[int, float, int], Job]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def _key(self, job: Job) -> Tuple[int, float, int]:
        deadline = job.deadline_at
        return (-job.spec.priority,
                deadline if deadline is not None else math.inf,
                next(self._seq))

    def put(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`QueueFull` / :class:`QueueClosed`.

        Never blocks: backpressure is the caller's problem by design.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._heap) >= self.limit:
                raise QueueFull(self.limit)
            heapq.heappush(self._heap, (self._key(job), job))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the best job; ``None`` on timeout or when closed and empty.

        Jobs that resolved while queued (cancelled via the API) are
        skipped and never returned.
        """
        with self._not_empty:
            while True:
                while self._heap:
                    _, job = heapq.heappop(self._heap)
                    if not job.done:
                        return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def depth(self) -> int:
        """Number of queued jobs still waiting to run."""
        with self._lock:
            return sum(1 for _, job in self._heap if not job.done)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admitting; wake every blocked consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> List[Job]:
        """Remove and return every queued job (used by non-drain shutdown)."""
        with self._lock:
            jobs = [job for _, job in self._heap if not job.done]
            self._heap.clear()
            return jobs

    def __len__(self) -> int:
        return self.depth()
