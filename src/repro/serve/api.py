"""Stdlib HTTP/JSON front end for the batch service.

Endpoints (all JSON; no third-party dependencies)::

    GET  /v1/health            liveness + queue/worker stats
    GET  /v1/stats             service stats + telemetry metrics snapshot
    GET  /v1/kinds             registered job kinds
    GET  /metrics              Prometheus text exposition (0.0.4)
    GET  /v1/events?since=N    incremental event tail (cursor = "next")
    GET  /v1/fuzz/frontier     live fuzz coverage-frontier snapshot
    POST /v1/jobs              submit a job  -> 202 (429 when queue full)
    GET  /v1/jobs              list job statuses (?state= filter)
    GET  /v1/jobs/<id>         one job's status
    GET  /v1/jobs/<id>/result  the result     -> 409 until resolved
    GET  /v1/jobs/<id>/events  a traced job's merged event records
    POST /v1/jobs/<id>/cancel  cooperative cancel
    POST /v1/shutdown          graceful shutdown (body: {"drain": bool})

Backpressure is surfaced exactly as web services do it: a full admission
queue answers **429 Too Many Requests** with a ``Retry-After`` hint, and
a draining service answers **503**.  The server itself is a
``ThreadingHTTPServer`` — handlers only touch the thread-safe service
object, the real work happens on the service's worker pool.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .executors import ExecutorError, job_kinds
from .jobs import JobSpec
from .queue import QueueFull
from .service import BatchService, ServiceClosed

__all__ = ["ServiceServer", "make_handler"]

MAX_BODY_BYTES = 8 * 1024 * 1024  # plenty for assembly sources


def make_handler(service: BatchService, quiet: bool = True,
                 on_shutdown=None):
    """Build the request-handler class bound to ``service``.

    ``on_shutdown`` (if given) runs after a ``POST /v1/shutdown``
    finished draining the service — the server uses it to stop the HTTP
    loop so a foreground ``repro serve`` process exits cleanly.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1.0"

        # -- plumbing ---------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002
            if not quiet:
                super().log_message(format, *args)

        def _send_json(self, status: int, body: dict,
                       headers: Optional[dict] = None) -> None:
            blob = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(blob)

        def _error(self, status: int, message: str,
                   headers: Optional[dict] = None) -> None:
            self._send_json(status, {"error": message}, headers)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ValueError(f"request body exceeds {MAX_BODY_BYTES} "
                                 "bytes")
            if length == 0:
                return {}
            blob = self.rfile.read(length)
            try:
                body = json.loads(blob)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON body: {exc}") from exc
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
            return body

        def _route(self) -> Tuple[str, ...]:
            path = self.path.split("?", 1)[0].strip("/")
            return tuple(part for part in path.split("/") if part)

        def _query(self) -> dict:
            if "?" not in self.path:
                return {}
            from urllib.parse import parse_qs

            raw = parse_qs(self.path.split("?", 1)[1])
            return {key: values[-1] for key, values in raw.items()}

        def _send_text(self, status: int, text: str,
                       content_type: str) -> None:
            blob = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        # -- GET --------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            route = self._route()
            if route == ("metrics",):
                from ..telemetry.prometheus import (CONTENT_TYPE,
                                                    render_prometheus)

                stats = service.stats()
                log_stats = stats["events"]
                extra = {
                    "repro_serve_queue_depth_live": stats["queue_depth"],
                    "repro_serve_running_live": stats["running"],
                    "repro_events_dropped": log_stats["dropped_events"],
                    "repro_events_overflowed":
                        1 if log_stats["overflowed"] else 0,
                    "repro_events_appended": log_stats["total_appended"],
                }
                text = render_prometheus(
                    service.telemetry.metrics.to_dict(), extra_gauges=extra)
                return self._send_text(200, text, CONTENT_TYPE)
            if route == ("v1", "events"):
                query = self._query()
                try:
                    since = int(query.get("since", "0"))
                    tail = service.telemetry.events.tail(since)
                except ValueError as exc:
                    return self._error(400, str(exc))
                return self._send_json(200, tail)
            if route == ("v1", "fuzz", "frontier"):
                from ..observe.frontier import frontier_from_events

                events = list(service.telemetry.events)
                return self._send_json(200, frontier_from_events(events))
            if route == ("v1", "health"):
                stats = service.stats()
                status = "ok" if stats["accepting"] else "draining"
                return self._send_json(200, {"status": status, **stats})
            if route == ("v1", "stats"):
                return self._send_json(200, {
                    "service": service.stats(),
                    "metrics": service.telemetry.metrics.to_dict(),
                })
            if route == ("v1", "kinds"):
                return self._send_json(200, {"kinds": job_kinds()})
            if route == ("v1", "jobs"):
                state = self._query().get("state")
                jobs = [job.to_dict() for job in
                        list(service.jobs.values())
                        if state is None or job.state == state]
                return self._send_json(200, {"jobs": jobs,
                                             "total": len(jobs)})
            if len(route) == 3 and route[:2] == ("v1", "jobs"):
                job = service.get_job(route[2])
                if job is None:
                    return self._error(404, f"no such job: {route[2]}")
                return self._send_json(200, job.to_dict())
            if len(route) == 4 and route[:2] == ("v1", "jobs") \
                    and route[3] == "result":
                job = service.get_job(route[2])
                if job is None:
                    return self._error(404, f"no such job: {route[2]}")
                if not job.done:
                    return self._error(
                        409, f"job {job.id} is {job.state}; result not "
                        "available yet", {"Retry-After": "1"})
                return self._send_json(200, job.to_dict(with_result=True))
            if len(route) == 4 and route[:2] == ("v1", "jobs") \
                    and route[3] == "events":
                job = service.get_job(route[2])
                if job is None:
                    return self._error(404, f"no such job: {route[2]}")
                events = sorted(list(job.trace_events),
                                key=lambda e: e.get("ts_us", 0))
                return self._send_json(200, {
                    "id": job.id,
                    "state": job.state,
                    "traced": job.spec.trace is not None,
                    "events": events,
                })
            return self._error(404, f"unknown endpoint: {self.path}")

        # -- POST -------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            route = self._route()
            try:
                body = self._read_body()
            except ValueError as exc:
                return self._error(400, str(exc))
            if route == ("v1", "jobs"):
                return self._submit(body)
            if len(route) == 4 and route[:2] == ("v1", "jobs") \
                    and route[3] == "cancel":
                job = service.get_job(route[2])
                if job is None:
                    return self._error(404, f"no such job: {route[2]}")
                changed = service.cancel(job.id)
                return self._send_json(200, {"id": job.id,
                                             "cancelled": changed,
                                             "state": job.state})
            if route == ("v1", "shutdown"):
                drain = bool(body.get("drain", True))

                def stop():
                    service.shutdown(drain=drain)
                    if on_shutdown is not None:
                        on_shutdown()

                threading.Thread(target=stop, daemon=True).start()
                return self._send_json(202, {"status": "shutting down",
                                             "drain": drain})
            return self._error(404, f"unknown endpoint: {self.path}")

        def _submit(self, body: dict) -> None:
            try:
                spec = JobSpec.from_dict(body)
                job = service.submit(spec)
            except QueueFull as exc:
                return self._error(429, str(exc), {"Retry-After": "1"})
            except ServiceClosed as exc:
                return self._error(503, str(exc))
            except (ExecutorError, ValueError, TypeError) as exc:
                return self._error(400, str(exc))
            return self._send_json(202, job.to_dict())

    return Handler


class ServiceServer:
    """The HTTP server + its service, ready to run in the background.

    ::

        server = ServiceServer(service, port=0)   # 0 = ephemeral port
        server.start()
        ...  # submit via repro.serve.client.ServiceClient(server.url)
        server.close()                            # drains by default
    """

    def __init__(self, service: BatchService, host: str = "127.0.0.1",
                 port: int = 8972, quiet: bool = True) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer(
            (host, port),
            make_handler(service, quiet=quiet,
                         on_shutdown=lambda: self.httpd.shutdown()))
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._close_lock = threading.Lock()
        self._closed = False

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="serve-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run in the foreground (the ``repro serve`` entry point)."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.close()

    def install_signal_handlers(self) -> None:
        """SIGTERM and SIGINT both drain gracefully.

        Containerized shutdowns send SIGTERM; without this handler the
        process dies mid-job and in-flight work is lost.  The handler
        only asks the HTTP loop to stop — ``serve_forever``'s ``finally``
        then drains the service and flushes final stats exactly as a
        ``KeyboardInterrupt`` would.  Must be called from the main
        thread (a no-op request elsewhere would raise).
        """
        def handle(signum, frame):  # pragma: no cover - signal path
            # shutdown() blocks until serve_forever returns, so hop to a
            # helper thread; the signal handler itself must not block.
            threading.Thread(target=self.httpd.shutdown,
                             daemon=True).start()

        signal.signal(signal.SIGTERM, handle)
        signal.signal(signal.SIGINT, handle)

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests, then shut the service down.

        Idempotent: signal handlers, ``serve_forever``'s cleanup, and
        explicit calls may race, and every path after the first is a
        no-op.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.shutdown(drain=drain)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
