"""The job model: specs, lifecycle states, deadlines, retry/timeout policy.

A **job** is one unit of simulation work (a VP run, a fault campaign, a
coverage collection, a WCET analysis) described by a JSON-serializable
:class:`JobSpec` and tracked by a mutable :class:`Job`.  The lifecycle::

    pending ──▶ running ──▶ succeeded
       │           │    ├──▶ failed      (executor error, retries exhausted)
       │           │    ├──▶ timeout     (cooperative run timeout)
       │           └────┴──▶ cancelled   (cooperative cancel mid-run)
       ├──▶ cancelled                    (cancel while queued)
       └──▶ timeout                      (deadline expired before dispatch)

A failed attempt whose spec still has retry budget left goes back to
``pending`` and is re-queued by the scheduler.  Timeouts and cancellation
are **cooperative**: executors receive a :class:`JobContext` and call
:meth:`JobContext.check` at natural yield points (between mutants, after
a run).  Simulation work is additionally bounded by instruction budgets,
so even an executor that never checks terminates.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "FINAL_STATES",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobSpec",
    "JobTimeout",
    "STATES",
    "STATE_CANCELLED",
    "STATE_FAILED",
    "STATE_PENDING",
    "STATE_RUNNING",
    "STATE_SUCCEEDED",
    "STATE_TIMEOUT",
]

STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_SUCCEEDED = "succeeded"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
STATE_TIMEOUT = "timeout"

STATES = (STATE_PENDING, STATE_RUNNING, STATE_SUCCEEDED, STATE_FAILED,
          STATE_CANCELLED, STATE_TIMEOUT)

#: States a job never leaves; entering one resolves the job's result.
FINAL_STATES = frozenset(
    {STATE_SUCCEEDED, STATE_FAILED, STATE_CANCELLED, STATE_TIMEOUT})

_JOB_IDS = itertools.count(1)


class JobCancelled(Exception):
    """Raised by :meth:`JobContext.check` when the job was cancelled."""


class JobTimeout(Exception):
    """Raised by :meth:`JobContext.check` when the run timeout elapsed."""


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to execute one job — plain JSON-friendly data.

    ``priority``: larger values dispatch sooner (default 0).
    ``deadline_seconds``: relative queue deadline; a job still pending
    when it expires is resolved as ``timeout`` without running.  Among
    equal priorities the scheduler dispatches earliest-deadline-first.
    ``timeout_seconds``: cooperative run timeout, enforced at executor
    checkpoints.  ``max_retries``: additional attempts granted after an
    executor *error* (timeouts and cancellations are never retried).
    ``trace``: an optional trace context (the ``to_dict()`` of a
    :class:`repro.observe.trace.TraceContext`) minted by the submitter;
    when present, the service collects the job's execution events —
    including from pool worker processes — tagged onto that trace so one
    Chrome-trace file shows submit → queue → worker → VP.
    ``tenant``: an accounting label; the cluster coordinator enforces
    per-tenant quotas on it (a single-process :class:`BatchService`
    carries it through unchanged).  ``shards``: how many work shards a
    cluster coordinator may split this job into (campaign / fuzz kinds
    only; 1 = never shard).  Shard planning is a pure function of the
    spec, never of the cluster shape, so results are byte-identical to a
    single-node run whatever executes the shards.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    deadline_seconds: Optional[float] = None
    timeout_seconds: Optional[float] = None
    max_retries: int = 0
    trace: Optional[Dict[str, Any]] = None
    tenant: Optional[str] = None
    shards: int = 1

    def validate(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError("job kind must be a non-empty string")
        if not isinstance(self.payload, dict):
            raise ValueError("job payload must be a JSON object")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for name in ("deadline_seconds", "timeout_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when given")
        if self.tenant is not None and (
                not isinstance(self.tenant, str) or not self.tenant):
            raise ValueError("tenant must be a non-empty string when given")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 1:
            raise ValueError(f"shards must be an integer >= 1, "
                             f"got {self.shards!r}")
        if self.trace is not None:
            from ..observe.trace import TraceContext

            TraceContext.from_dict(self.trace)  # raises on malformed

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "payload": self.payload,
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "timeout_seconds": self.timeout_seconds,
            "max_retries": self.max_retries,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.shards != 1:
            data["shards"] = self.shards
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        known = {name: data[name] for name in
                 ("kind", "payload", "priority", "deadline_seconds",
                  "timeout_seconds", "max_retries", "trace", "tenant",
                  "shards")
                 if name in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        spec = cls(**known)
        spec.validate()
        return spec

    def to_json(self) -> str:
        """The wire form (``POST /v1/jobs`` body, pool-process handoff)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "JobSpec":
        import json

        data = json.loads(blob)
        if not isinstance(data, dict):
            raise ValueError("job spec JSON must be an object")
        return cls.from_dict(data)


class Job:
    """One tracked job: spec + mutable lifecycle state.

    All state transitions go through the methods below and are guarded by
    a per-job lock, so the scheduler, workers, and API handlers can race
    freely.  ``result`` holds the executor's JSON-serializable return
    value once the job succeeded; ``error`` a human-readable failure
    description otherwise.
    """

    def __init__(self, spec: JobSpec, job_id: Optional[str] = None,
                 clock=time.monotonic) -> None:
        spec.validate()
        self.spec = spec
        self.id = job_id if job_id is not None else f"job-{next(_JOB_IDS)}"
        self._clock = clock
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._finalized = False
        self.cancel_event = threading.Event()
        self.state = STATE_PENDING
        self.attempts = 0
        self.submitted_at = clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.worker: Optional[str] = None
        #: Execution events collected for traced jobs (``spec.trace``),
        #: merged from the worker thread/process and served on
        #: ``GET /v1/jobs/<id>/events``.
        self.trace_events: list = []

    # -- derived --------------------------------------------------------

    @property
    def deadline_at(self) -> Optional[float]:
        if self.spec.deadline_seconds is None:
            return None
        return self.submitted_at + self.spec.deadline_seconds

    def deadline_expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline_at
        if deadline is None:
            return False
        return (now if now is not None else self._clock()) >= deadline

    @property
    def done(self) -> bool:
        return self.state in FINAL_STATES

    # -- transitions ----------------------------------------------------

    def mark_running(self, worker: str) -> bool:
        """pending → running; returns False if the job already resolved."""
        with self._lock:
            if self.state != STATE_PENDING:
                return False
            self.state = STATE_RUNNING
            self.worker = worker
            self.attempts += 1
            if self.started_at is None:
                self.started_at = self._clock()
            return True

    def _resolve(self, state: str, result=None, error=None) -> bool:
        with self._lock:
            if self.state in FINAL_STATES:
                return False
            self.state = state
            self.result = result
            self.error = error
            self.finished_at = self._clock()
        self._done.set()
        return True

    def mark_succeeded(self, result: Dict[str, Any]) -> bool:
        return self._resolve(STATE_SUCCEEDED, result=result)

    def mark_failed(self, error: str) -> bool:
        return self._resolve(STATE_FAILED, error=error)

    def mark_timeout(self, error: str = "timeout") -> bool:
        return self._resolve(STATE_TIMEOUT, error=error)

    def mark_cancelled(self, error: str = "cancelled") -> bool:
        return self._resolve(STATE_CANCELLED, error=error)

    def mark_retrying(self, error: str) -> bool:
        """running → pending for the next attempt (retry budget permitting)."""
        with self._lock:
            if self.state != STATE_RUNNING:
                return False
            if self.attempts > self.spec.max_retries:
                return False
            self.state = STATE_PENDING
            self.error = error
            self.worker = None
            return True

    def cancel(self) -> bool:
        """Request cancellation.

        A pending job resolves immediately; a running job gets its
        ``cancel_event`` set and resolves at the executor's next
        checkpoint.  Returns whether the request did anything.
        """
        self.cancel_event.set()
        with self._lock:
            if self.state in FINAL_STATES:
                return False
            pending = self.state == STATE_PENDING
        if pending:
            return self.mark_cancelled()
        return True

    def finalize_once(self) -> bool:
        """True exactly once after the job resolved — accounting guard
        so completion metrics/events fire once however many paths race
        (worker, cancel API, scheduler deadline check)."""
        with self._lock:
            if self.state not in FINAL_STATES or self._finalized:
                return False
            self._finalized = True
            return True

    # -- waiting / inspection -------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job resolves; returns ``job.done``."""
        self._done.wait(timeout)
        return self.done

    def queue_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def run_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, with_result: bool = False) -> Dict[str, Any]:
        """Status view served by the HTTP API (result only on request)."""
        with self._lock:
            view = {
                "id": self.id,
                "kind": self.spec.kind,
                "state": self.state,
                "priority": self.spec.priority,
                "attempts": self.attempts,
                "max_retries": self.spec.max_retries,
                "deadline_seconds": self.spec.deadline_seconds,
                "timeout_seconds": self.spec.timeout_seconds,
                "error": self.error,
                "worker": self.worker,
            }
            if self.spec.trace is not None:
                view["trace"] = self.spec.trace
            if self.spec.tenant is not None:
                view["tenant"] = self.spec.tenant
            if self.spec.shards != 1:
                view["shards"] = self.spec.shards
            if self.started_at is not None:
                view["queue_seconds"] = round(
                    self.started_at - self.submitted_at, 6)
            if self.started_at is not None and self.finished_at is not None:
                view["run_seconds"] = round(
                    self.finished_at - self.started_at, 6)
            if with_result:
                view["result"] = self.result
        return view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.id}, {self.spec.kind}, {self.state})"


class JobContext:
    """Execution context handed to executors for cooperative control.

    ``check()`` raises :class:`JobCancelled` / :class:`JobTimeout` when
    the job should stop; executors call it at natural yield points.
    """

    __slots__ = ("job", "_deadline", "_clock")

    def __init__(self, job: Job, clock=time.monotonic) -> None:
        self.job = job
        self._clock = clock
        timeout = job.spec.timeout_seconds
        self._deadline = None if timeout is None else clock() + timeout

    @property
    def cancelled(self) -> bool:
        return self.job.cancel_event.is_set()

    @property
    def timed_out(self) -> bool:
        return self._deadline is not None and self._clock() >= self._deadline

    def check(self) -> None:
        if self.cancelled:
            raise JobCancelled(self.job.id)
        if self.timed_out:
            raise JobTimeout(self.job.id)


#: A context that never cancels — for direct `execute_job` calls.
class _NullJob:
    __slots__ = ("spec", "id", "cancel_event")

    def __init__(self) -> None:
        self.spec = JobSpec(kind="direct")
        self.id = "direct"
        self.cancel_event = threading.Event()


def null_context() -> JobContext:
    """A context with no cancellation and no timeout."""
    return JobContext(_NullJob())
