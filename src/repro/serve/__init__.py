"""Batch simulation service: job queue, scheduler, worker pool, HTTP API.

The service turns every one-shot workload in the reproduction — VP runs,
fault-injection campaigns, coverage collection, QTA/WCET analyses — into
a submittable **job** executed by a long-lived process:

* :mod:`repro.serve.jobs` — the job model: specs, states, priorities,
  deadlines, retry/timeout policy,
* :mod:`repro.serve.queue` — an admission-controlled bounded priority
  queue with backpressure (:class:`QueueFull` maps to HTTP 429),
* :mod:`repro.serve.executors` — the job-kind registry mapping JSON
  payloads onto the existing library entry points,
* :mod:`repro.serve.service` — the scheduler + persistent worker pool
  (threads by default, spawn-safe worker processes on request),
* :mod:`repro.serve.api` — a stdlib HTTP/JSON front end
  (``python -m repro serve``),
* :mod:`repro.serve.client` — a thin :mod:`urllib`-based client used by
  ``python -m repro submit``.

A job executed through the service produces results identical to the
direct library call (byte-identical ``CampaignResult.to_json()`` for
fault campaigns).  Telemetry flows through the shared
:mod:`repro.telemetry` registry under the ``serve.*`` namespace, so
``repro serve --stats`` / ``--events-out`` / ``--trace-out`` work exactly
like the one-shot commands.
"""

from .executors import ExecutorError, execute_job, job_kinds, register_executor
from .jobs import (
    FINAL_STATES,
    Job,
    JobCancelled,
    JobContext,
    JobSpec,
    JobTimeout,
    STATES,
    STATE_CANCELLED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    STATE_TIMEOUT,
)
from .queue import AdmissionQueue, QueueClosed, QueueFull
from .service import BatchService, ServiceClosed, resolve_workers

__all__ = [
    "AdmissionQueue",
    "BatchService",
    "ExecutorError",
    "FINAL_STATES",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobSpec",
    "JobTimeout",
    "QueueClosed",
    "QueueFull",
    "STATES",
    "STATE_CANCELLED",
    "STATE_FAILED",
    "STATE_PENDING",
    "STATE_RUNNING",
    "STATE_SUCCEEDED",
    "STATE_TIMEOUT",
    "ServiceClosed",
    "execute_job",
    "job_kinds",
    "register_executor",
    "resolve_workers",
]
