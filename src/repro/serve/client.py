"""Thin stdlib client for the batch-service HTTP API.

Used by ``python -m repro submit`` and by tests; only
:mod:`urllib.request`, no third-party dependencies::

    client = ServiceClient("http://127.0.0.1:8972")
    job = client.submit("fault_campaign", {"source": src, "mutants": 50})
    done = client.wait(job["id"], timeout=120)
    print(done["result"]["counts"])

HTTP error responses become typed exceptions: a 429 raises
:class:`BackpressureError` (retry later, honoring ``retry_after`` when
the server sent a ``Retry-After`` header), everything else a
:class:`ServiceError` carrying the status code and the server's
``error`` message.

Transient socket errors — the server accepting the connection but
resetting it mid-exchange (``ECONNRESET``/``EPIPE``/an abruptly closed
keep-alive socket) — are retried with bounded exponential backoff
instead of surfacing as raw exceptions to ``repro submit --wait``.
Requests against this service are idempotent or safely repeatable (a
re-submitted job enqueues once per successful server read; a reset
before the response means the server may or may not have seen it, the
same at-least-once contract every HTTP client has), so a handful of
retries is strictly an availability win.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["BackpressureError", "ServiceClient", "ServiceError"]

#: Socket-level errors worth retrying: the TCP exchange died mid-flight.
_TRANSIENT_ERRORS = (ConnectionResetError, BrokenPipeError,
                     ConnectionAbortedError, http.client.RemoteDisconnected,
                     http.client.BadStatusLine)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, _TRANSIENT_ERRORS):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(getattr(exc, "reason", None), _TRANSIENT_ERRORS)
    return False


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackpressureError(ServiceError):
    """HTTP 429 — the admission queue is full; retry after a delay.

    ``retry_after`` is the server's ``Retry-After`` hint in seconds when
    it sent one, else ``None``.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


def _retry_after_from(headers: Any) -> Optional[float]:
    try:
        value = headers.get("Retry-After") if headers is not None else None
        return float(value) if value is not None else None
    except (TypeError, ValueError):
        return None


class ServiceClient:
    """A small synchronous client for one service endpoint."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, retry_base_delay: float = 0.05) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Extra attempts after a transient socket error (0 disables).
        self.retries = retries
        #: First backoff sleep; doubles per attempt (0.05, 0.1, 0.2, ...).
        self.retry_base_delay = retry_base_delay

    # -- transport ------------------------------------------------------

    def _open(self, request: urllib.request.Request) -> bytes:
        """One urlopen with transient-error retry; returns the body."""
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return response.read()
            except Exception as exc:
                if isinstance(exc, urllib.error.HTTPError):
                    raise
                if not _is_transient(exc) or attempt >= self.retries:
                    raise
                time.sleep(self.retry_base_delay * (2 ** attempt))
                attempt += 1

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            return json.loads(self._open(request) or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get(
                    "error", exc.reason)
            except (json.JSONDecodeError, ValueError):
                message = str(exc.reason)
            if exc.code == 429:
                raise BackpressureError(
                    exc.code, message,
                    retry_after=_retry_after_from(exc.headers)) from None
            raise ServiceError(exc.code, message) from None

    def _request_text(self, path: str) -> str:
        url = f"{self.base_url}{path}"
        request = urllib.request.Request(url, method="GET")
        try:
            return self._open(request).decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, str(exc.reason)) from None

    # -- API surface ----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` Prometheus exposition."""
        return self._request_text("/metrics")

    def events(self, since: int = 0) -> Dict[str, Any]:
        """One incremental tail; feed ``["next"]`` back as ``since``."""
        return self._request("GET", f"/v1/events?since={since}")

    def frontier(self) -> Dict[str, Any]:
        """The live fuzz coverage-frontier snapshot."""
        return self._request("GET", "/v1/fuzz/frontier")

    def job_events(self, job_id: str) -> Dict[str, Any]:
        """A traced job's merged event records."""
        return self._request("GET", f"/v1/jobs/{job_id}/events")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def kinds(self) -> list:
        return self._request("GET", "/v1/kinds")["kinds"]

    def submit(self, kind: str, payload: Dict[str, Any],
               priority: int = 0,
               deadline_seconds: Optional[float] = None,
               timeout_seconds: Optional[float] = None,
               max_retries: int = 0,
               trace: Optional[Dict[str, Any]] = None,
               tenant: Optional[str] = None,
               shards: int = 1) -> Dict[str, Any]:
        """Submit one job; returns its status view (with the ``id``).

        ``trace`` is a serialized :class:`repro.observe.TraceContext`;
        the service then collects the job's execution events onto that
        trace (fetch them with :meth:`job_events`).  ``tenant`` and
        ``shards`` feed the cluster coordinator's quota and shard
        planning; a single-process service carries them through.
        """
        body: Dict[str, Any] = {"kind": kind, "payload": payload,
                                "priority": priority,
                                "max_retries": max_retries}
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        if timeout_seconds is not None:
            body["timeout_seconds"] = timeout_seconds
        if trace is not None:
            body["trace"] = trace
        if tenant is not None:
            body["tenant"] = tenant
        if shards != 1:
            body["shards"] = shards
        return self._request("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self, state: Optional[str] = None) -> list:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The resolved job including ``result``; 409 while running."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {"drain": drain})

    # -- convenience ----------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_interval: float = 0.2) -> Dict[str, Any]:
        """Poll until the job resolves; returns the result view.

        Raises :class:`TimeoutError` if the job is still unresolved when
        ``timeout`` elapses (the job itself keeps running).
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServiceError as exc:
                if exc.status != 409:
                    raise
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} unresolved after {timeout}s")
            time.sleep(poll_interval)

    def submit_and_wait(self, kind: str, payload: Dict[str, Any],
                        timeout: float = 300.0,
                        **submit_kwargs) -> Dict[str, Any]:
        job = self.submit(kind, payload, **submit_kwargs)
        return self.wait(job["id"], timeout=timeout)
