"""The batch service core: scheduler + persistent worker pool.

:class:`BatchService` owns the three moving parts:

* the **admission queue** (:class:`~repro.serve.queue.AdmissionQueue`) —
  bounded, priority-ordered, rejecting when full;
* the **scheduler thread** — pops the best queued job whenever a worker
  slot is free, resolves queue-deadline expiry, and hands the job to the
  pool (so a late-arriving high-priority job overtakes queued bulk work
  right up to the moment of dispatch);
* the **worker pool** — persistent worker threads that execute jobs via
  :func:`repro.serve.executors.execute_job`.  With ``mode="process"``
  each execution is proxied to a long-lived ``multiprocessing`` pool
  whose workers are seeded spawn-safely (plain JSON payloads, an
  initializer that registers optional ISA modules) exactly like the
  fault-campaign engine in :mod:`repro.faultsim.parallel`.

Telemetry lands in the shared registry under ``serve.*``: queue-depth /
running gauges, submitted/rejected/completed counters, queue-wait and
job-duration histograms, and per-job ``job`` spans that export to Chrome
trace.  :meth:`BatchService.shutdown` drains by default: admission stops,
queued and in-flight jobs complete, then the workers exit.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional
from queue import SimpleQueue

from ..telemetry.session import resolve as _resolve_telemetry
from .executors import (ExecutorError, _EXECUTORS, execute_job,
                        execute_job_traced)
from .jobs import (FINAL_STATES, Job, JobCancelled, JobContext, JobSpec,
                   JobTimeout, STATES, STATE_PENDING, STATE_RUNNING)
from .queue import AdmissionQueue, QueueClosed, QueueFull

__all__ = ["BatchService", "ServiceClosed", "resolve_workers"]


class ServiceClosed(Exception):
    """Submission rejected: the service is shutting down."""


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a worker-count flag: ``0``/``None`` auto-detects CPUs."""
    import os

    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _pool_init() -> None:
    """Process-pool initializer — the same spawn-safe seeding as
    :func:`repro.faultsim.parallel._worker_init`."""
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)


def _trace_fields(trace: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The non-None entries of a serialized trace context (event tags)."""
    if not trace:
        return {}
    return {key: value for key, value in trace.items() if value is not None}


class BatchService:
    """A long-lived scheduler + worker pool over the simulation workloads.

    ::

        service = BatchService(workers=8, queue_limit=64)
        service.start()
        job = service.submit(JobSpec(kind="vp_run", payload={...}))
        job.wait()
        service.shutdown()          # drains queued + in-flight jobs
    """

    def __init__(self, workers: Optional[int] = None, queue_limit: int = 64,
                 mode: str = "thread", telemetry=None) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.workers = resolve_workers(workers)
        self.mode = mode
        self.queue = AdmissionQueue(queue_limit)
        self.jobs: Dict[str, Job] = {}
        # A service is long-lived and observable by design: when the
        # ambient session is disabled, run on a private enabled session
        # so /v1/stats and queue gauges are always live.  An explicit
        # or CLI-installed session (``repro serve --stats``) is reused,
        # which is what routes service runs into ``repro stats`` and
        # Chrome-trace export.
        resolved = _resolve_telemetry(telemetry)
        if not resolved.enabled:
            from ..telemetry import Telemetry
            resolved = Telemetry()
        self.telemetry = resolved
        self._metrics = self.telemetry.metrics.namespace("serve")
        self._lock = threading.Lock()
        self._accepting = False
        self._started = False
        self._stopped = False
        self._running = 0
        self._feed: SimpleQueue = SimpleQueue()
        self._slots = threading.Semaphore(self.workers)
        self._threads: List[threading.Thread] = []
        self._scheduler: Optional[threading.Thread] = None
        self._pool = None
        self._idle = threading.Condition(self._lock)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "BatchService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._accepting = True
        if self.mode == "process":
            self._pool = self._start_pool()
        self._metrics.gauge("workers").set(self.workers)
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "serve.started", workers=self.workers, mode=self.mode,
                queue_limit=self.queue.limit)
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      args=(f"worker-{index}",),
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        return self

    def _start_pool(self):
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        return ctx.Pool(processes=self.workers, initializer=_pool_init)

    def __enter__(self) -> "BatchService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service.

        ``drain=True`` (the default) stops admission, lets every queued
        job dispatch and every in-flight job finish, then retires the
        workers.  ``drain=False`` cancels queued jobs immediately and
        waits only for the in-flight ones.  ``timeout`` bounds the total
        wait per joined thread.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._accepting = False
        if not drain:
            for job in self.queue.drain():
                job.mark_cancelled("service shutdown")
                self._job_finished(job)
        # Closing the queue stops get() from blocking but still hands out
        # whatever is queued — the scheduler keeps dispatching until the
        # backlog is empty, then retires the workers with sentinels.
        self.queue.close()
        if self._scheduler is not None:
            self._scheduler.join(timeout)
        for thread in self._threads:
            thread.join(timeout)
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self.telemetry.enabled:
            self.telemetry.events.emit("serve.stopped",
                                       drained=drain,
                                       jobs_total=len(self.jobs))

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; True when idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while any(not job.done for job in list(self.jobs.values())):
                remaining = 0.2
                if deadline is not None:
                    remaining = min(0.2, deadline - time.monotonic())
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    # -- submission / inspection ----------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; raises :class:`QueueFull` under backpressure,
        :class:`ServiceClosed` after shutdown began, and
        :class:`~repro.serve.executors.ExecutorError` for unknown kinds."""
        if not self._started:
            raise RuntimeError("service not started")
        spec.validate()
        if spec.kind not in _EXECUTORS:
            raise ExecutorError(
                f"unknown job kind {spec.kind!r}; known kinds: "
                f"{sorted(_EXECUTORS)}")
        job = Job(spec)
        with self._lock:
            if not self._accepting:
                raise ServiceClosed("service is shutting down")
            try:
                self.queue.put(job)
            except QueueFull:
                self._metrics.counter("rejected").inc()
                if self.telemetry.enabled:
                    self.telemetry.events.emit(
                        "job.rejected", kind=spec.kind,
                        queue_depth=self.queue.limit)
                raise
            except QueueClosed:
                raise ServiceClosed("service is shutting down") from None
            self.jobs[job.id] = job
        self._metrics.counter("submitted").inc()
        self._metrics.gauge("queue_depth").set(self.queue.depth())
        if self.telemetry.enabled:
            self.telemetry.events.emit("job.submitted", id=job.id,
                                       kind=spec.kind,
                                       priority=spec.priority,
                                       **_trace_fields(spec.trace))
        return job

    def get_job(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; running jobs stop at their next checkpoint."""
        job = self.jobs.get(job_id)
        if job is None:
            return False
        changed = job.cancel()
        if changed and job.done:
            self._job_finished(job)
        return changed

    def stats(self) -> Dict[str, Any]:
        tally = {state: 0 for state in STATES}
        for job in list(self.jobs.values()):
            tally[job.state] += 1
        return {
            "workers": self.workers,
            "mode": self.mode,
            "accepting": self._accepting,
            "queue_depth": self.queue.depth(),
            "queue_limit": self.queue.limit,
            "running": self._running,
            "jobs": tally,
            "events": self.telemetry.events.stats(),
        }

    # -- scheduler ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        dispatch_timer = self._metrics.timer("queue_wait_seconds")
        while True:
            # Claim a worker slot *first* so the job popped next is the
            # best choice at the moment a worker is actually free.
            self._slots.acquire()
            job = self.queue.get(timeout=None)
            if job is None:  # closed and drained: retire the workers
                self._slots.release()
                for _ in self._threads:
                    self._feed.put(None)
                return
            if job.deadline_expired():
                job.mark_timeout("deadline expired before dispatch")
                self._job_finished(job)
                self._slots.release()
                continue
            wait = time.monotonic() - job.submitted_at
            dispatch_timer.observe(wait)
            self._metrics.gauge("queue_depth").set(self.queue.depth())
            if self.telemetry.enabled:
                self.telemetry.events.emit(
                    "job.dispatched", id=job.id, kind=job.spec.kind,
                    queue_seconds=round(wait, 6))
            self._feed.put(job)

    # -- workers --------------------------------------------------------

    def _worker_loop(self, name: str) -> None:
        while True:
            job = self._feed.get()
            if job is None:
                return
            try:
                self._execute(job, name)
            finally:
                self._slots.release()

    def _execute(self, job: Job, worker: str) -> None:
        if not job.mark_running(worker):
            # Resolved (cancelled) between dispatch and pickup.
            self._job_finished(job)
            return
        with self._lock:
            self._running += 1
        self._metrics.gauge("running").set(self._running)
        ctx = JobContext(job)
        job_timer = self._metrics.timer("job_seconds")
        started = time.monotonic()
        exec_trace = None
        if job.spec.trace is not None:
            from ..observe.trace import TraceContext

            root = TraceContext.from_dict(job.spec.trace)
            self._emit_queue_span(job, root)
            exec_trace = root.child()
        span_fields: Dict[str, Any] = dict(
            id=job.id, kind=job.spec.kind, worker=worker,
            attempt=job.attempts)
        if exec_trace is not None:
            span_fields.update(exec_trace.fields())
        span = self.telemetry.events.span("job", **span_fields)
        retried = False
        try:
            with span:
                if exec_trace is not None:
                    result = self._execute_traced(job, ctx, exec_trace)
                elif self.mode == "process":
                    result = self._execute_remote(job, ctx)
                else:
                    result = execute_job(job.spec.kind, job.spec.payload, ctx)
        except JobCancelled:
            job.mark_cancelled("cancelled while running")
        except JobTimeout:
            job.mark_timeout(
                f"run timeout after {job.spec.timeout_seconds}s")
        except ExecutorError as exc:
            # Deterministic payload problem: retrying cannot help.
            job.mark_failed(str(exc))
        except Exception as exc:  # noqa: BLE001 — worker must survive
            error = f"attempt {job.attempts} failed: {exc!r}"
            if job.mark_retrying(error):
                retried = True
                self._metrics.counter("retries").inc()
                if self.telemetry.enabled:
                    self.telemetry.events.emit("job.retrying", id=job.id,
                                               attempt=job.attempts,
                                               error=str(exc))
                try:
                    self.queue.put(job)
                except (QueueFull, QueueClosed) as requeue_exc:
                    retried = False
                    job.mark_failed(f"{error}; requeue failed: "
                                    f"{requeue_exc}")
            else:
                job.mark_failed(error)
        else:
            job.mark_succeeded(result)
        finally:
            finished = time.monotonic()
            job_timer.observe(finished - started)
            if exec_trace is not None:
                # Mirror the worker span into the job's own trace so
                # ``GET /v1/jobs/<id>/events`` is self-contained even
                # after the service ring evicts old records.
                log = self.telemetry.events
                job.trace_events.append({
                    "type": "job",
                    "ts_us": int((started - log.origin) * 1_000_000),
                    "dur_us": int((finished - started) * 1_000_000),
                    "id": job.id, "kind": job.spec.kind, "worker": worker,
                    "state": job.state, "attempt": job.attempts,
                    **exec_trace.fields(),
                })
            with self._lock:
                self._running -= 1
            self._metrics.gauge("running").set(self._running)
            if not retried:
                self._job_finished(job)
            with self._idle:
                self._idle.notify_all()

    def _execute_remote(self, job: Job, ctx: JobContext) -> Dict[str, Any]:
        """Proxy one execution to the persistent process pool.

        The parent polls so cooperative cancel/timeout still resolve the
        job promptly; the worker process finishes its (budget-bounded)
        task in the background and stays warm for the next job.
        """
        from multiprocessing import TimeoutError as PoolTimeout

        handle = self._pool.apply_async(
            execute_job, (job.spec.kind, job.spec.payload))
        while True:
            try:
                return handle.get(timeout=0.1)
            except PoolTimeout:
                ctx.check()

    # -- trace propagation ----------------------------------------------

    def _emit_queue_span(self, job: Job, root) -> None:
        """Record the already-elapsed queue wait as a complete span.

        ``submitted_at``/``started_at`` and the event log share the
        monotonic clock, so the span is placed at the true submission
        time relative to the log's origin.
        """
        queue_ctx = root.child()
        log = self.telemetry.events
        started_at = job.started_at or job.submitted_at
        record = {
            "type": "job.queue_wait",
            "ts_us": int((job.submitted_at - log.origin) * 1_000_000),
            "dur_us": int((started_at - job.submitted_at) * 1_000_000),
            "id": job.id,
            "kind": job.spec.kind,
            **queue_ctx.fields(),
        }
        log.extend([record])
        job.trace_events.append(record)

    def _execute_traced(self, job: Job, ctx: JobContext,
                        exec_trace) -> Dict[str, Any]:
        """Run one traced job, collecting its events onto the trace.

        Thread mode runs :func:`execute_job_traced` in-process (a
        thread-local telemetry session isolates the job's events from
        sibling workers); process mode ships it to the pool and polls,
        exactly like :meth:`_execute_remote`.  Either way the worker's
        events come back with their own monotonic origin and are rebased
        onto this service's event log before merging.
        """
        run_ctx = exec_trace.child()
        if self.mode == "process" and self._pool is not None:
            from multiprocessing import TimeoutError as PoolTimeout

            handle = self._pool.apply_async(
                execute_job_traced,
                (job.spec.kind, job.spec.payload, run_ctx.to_dict(),
                 job.id))
            while True:
                try:
                    bundle = handle.get(timeout=0.1)
                    break
                except PoolTimeout:
                    ctx.check()
        else:
            bundle = execute_job_traced(job.spec.kind, job.spec.payload,
                                        run_ctx.to_dict(), job.id, ctx)
        self._merge_worker_events(job, bundle)
        return bundle["result"]

    def _merge_worker_events(self, job: Job, bundle: Dict[str, Any]) -> None:
        events = bundle.get("events") or []
        if not events:
            return
        # CLOCK_MONOTONIC is system-wide on Linux, so the worker's log
        # origin and ours are directly comparable readings.
        shift_us = int((bundle.get("origin", 0.0)
                        - self.telemetry.events.origin) * 1_000_000)
        merged = [{**event, "ts_us": event.get("ts_us", 0) + shift_us}
                  for event in events]
        job.trace_events.extend(merged)
        self.telemetry.events.extend(merged)

    def _job_finished(self, job: Job) -> None:
        if not job.finalize_once():
            return
        self._metrics.counter(f"completed.{job.state}").inc()
        if self.telemetry.enabled:
            record = {"id": job.id, "kind": job.spec.kind,
                      "state": job.state, "attempts": job.attempts}
            run_seconds = job.run_seconds()
            if run_seconds is not None:
                record["run_seconds"] = round(run_seconds, 6)
            if job.error:
                record["error"] = job.error
            self.telemetry.events.emit("job.finished", **record)
