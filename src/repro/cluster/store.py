"""Append-only JSONL job store — jobs survive coordinator restarts.

Two record types, one per line::

    {"type": "job",      "id": "job-3", "spec": {...}, "submitted_at": ...}
    {"type": "resolved", "id": "job-3", "state": "succeeded",
     "result": {...}, "error": null, ...}

On startup :meth:`JobStore.replay` folds the log: jobs with no matching
``resolved`` record are *unresolved* and get re-queued (their shard plans
are re-derived from the spec — pure functions, so the re-run is
byte-identical to what the lost run would have produced); resolved jobs
are rebuilt as finished :class:`~repro.serve.jobs.Job` objects so their
results stay fetchable over ``GET /v1/jobs/<id>/result``.  Appends are
flushed line-at-a-time; a torn final line (crash mid-write) is skipped
on replay.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["JobStore", "ReplayedJobs"]


class ReplayedJobs:
    """What a log replay recovered."""

    def __init__(self) -> None:
        #: ``(job_id, spec_dict)`` in submission order, not yet resolved.
        self.unresolved: List[Tuple[str, Dict[str, Any]]] = []
        #: ``job_id -> {"spec": ..., "state": ..., "result": ...,
        #: "error": ...}`` for jobs that already finished.
        self.resolved: Dict[str, Dict[str, Any]] = {}
        #: Highest numeric ``job-N`` suffix seen — new IDs start above it.
        self.max_job_number = 0
        #: Lines that failed to parse (torn tail writes).
        self.skipped_lines = 0


def _job_number(job_id: str) -> int:
    if job_id.startswith("job-"):
        try:
            return int(job_id[4:])
        except ValueError:
            pass
    return 0


class JobStore:
    """One JSONL file of job submissions and resolutions."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")  # noqa: SIM115

    # -- writes ---------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def append_job(self, job_id: str, spec: Dict[str, Any]) -> None:
        self._append({"type": "job", "id": job_id, "spec": spec,
                      "submitted_at": time.time()})

    def append_resolved(self, job_id: str, state: str,
                        result: Optional[Dict[str, Any]] = None,
                        error: Optional[str] = None) -> None:
        self._append({"type": "resolved", "id": job_id, "state": state,
                      "result": result, "error": error,
                      "resolved_at": time.time()})

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- replay ---------------------------------------------------------

    @staticmethod
    def replay(path: str) -> ReplayedJobs:
        """Fold an existing log; missing file ⇒ empty recovery."""
        recovered = ReplayedJobs()
        if not os.path.exists(path):
            return recovered
        specs: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    recovered.skipped_lines += 1
                    continue
                kind = record.get("type")
                job_id = record.get("id")
                if not isinstance(job_id, str):
                    recovered.skipped_lines += 1
                    continue
                if kind == "job" and isinstance(record.get("spec"), dict):
                    if job_id not in specs:
                        order.append(job_id)
                    specs[job_id] = record["spec"]
                    recovered.max_job_number = max(
                        recovered.max_job_number, _job_number(job_id))
                elif kind == "resolved":
                    recovered.resolved[job_id] = {
                        "state": record.get("state", "failed"),
                        "result": record.get("result"),
                        "error": record.get("error"),
                    }
                else:
                    recovered.skipped_lines += 1
        for job_id in order:
            if job_id in recovered.resolved:
                recovered.resolved[job_id]["spec"] = specs[job_id]
            else:
                recovered.unresolved.append((job_id, specs[job_id]))
        # Resolutions whose submission record was lost are unfetchable
        # without a spec — drop them rather than serve half a job.
        recovered.resolved = {
            job_id: data for job_id, data in recovered.resolved.items()
            if "spec" in data
        }
        return recovered
