"""Work items, leases, and the node registry.

The coordinator's unit of dispatch is a :class:`WorkItem` — one shard of
one job.  Nodes *pull*: a lease marks the item as owned by a node until
it completes or the lease expires.  Work survives node death by
re-queueing: heartbeat loss or lease expiry returns the item to the
pending pool and another node picks it up.  Because every work item is a
pure function of the job spec (see :mod:`repro.cluster.shards`), a
re-dispatched item produces the same bytes the dead node would have —
retry is invisible in the merged result.

:class:`LeaseTable` and :class:`NodeRegistry` are plain thread-safe
state machines; the coordinator owns the policy (timeouts, finalize).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["LeaseTable", "NodeInfo", "NodeRegistry", "WorkItem",
           "WORK_DONE", "WORK_FAILED", "WORK_LEASED", "WORK_PENDING"]

WORK_PENDING = "pending"
WORK_LEASED = "leased"
WORK_DONE = "done"
WORK_FAILED = "failed"

#: States a work item never leaves.
WORK_FINAL = frozenset({WORK_DONE, WORK_FAILED})


@dataclass
class WorkItem:
    """One shard of one job, tracked through lease/retry/completion."""

    id: str
    job_id: str
    kind: str
    payload: Dict[str, Any]
    shard_index: int = 0
    shard_count: int = 1
    state: str = WORK_PENDING
    attempts: int = 0
    node: Optional[str] = None
    leased_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_dict(self, with_payload: bool = False) -> Dict[str, Any]:
        view = {
            "id": self.id,
            "job_id": self.job_id,
            "kind": self.kind,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "state": self.state,
            "attempts": self.attempts,
            "node": self.node,
            "error": self.error,
        }
        if with_payload:
            view["payload"] = self.payload
        return view

    def wire_dict(self) -> Dict[str, Any]:
        """What a node needs to execute the item."""
        return {"id": self.id, "kind": self.kind, "payload": self.payload,
                "job_id": self.job_id, "shard_index": self.shard_index}


class LeaseTable:
    """Pending/leased/done work with lease-based retry.

    ``max_attempts`` bounds total dispatch attempts per item; an item
    whose budget is exhausted (or that failed non-retryably) lands in
    ``failed`` and the owning job fails.  Completion notifications go
    through a condition so job finalizers and the fuzz driver can block
    in :meth:`wait` without polling.
    """

    def __init__(self, max_attempts: int = 3,
                 clock=time.monotonic) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self._clock = clock
        self._items: Dict[str, WorkItem] = {}
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self.requeued_total = 0
        self.completed_total = 0

    # -- intake ---------------------------------------------------------

    def add(self, job_id: str, plans: List[Dict[str, Any]]
            ) -> List[WorkItem]:
        """Mint and enqueue one work item per plan entry."""
        items = []
        with self._lock:
            for plan in plans:
                item = WorkItem(
                    id=f"work-{next(self._ids)}",
                    job_id=job_id,
                    kind=plan["kind"],
                    payload=plan["payload"],
                    shard_index=plan.get("shard_index", 0),
                    shard_count=plan.get("shard_count", 1),
                )
                self._items[item.id] = item
                self._pending.append(item.id)
                items.append(item)
            self._changed.notify_all()
        return items

    # -- node side ------------------------------------------------------

    def lease(self, node_id: str, max_items: int = 1) -> List[WorkItem]:
        """Hand up to ``max_items`` pending items to ``node_id``."""
        leased = []
        now = self._clock()
        with self._lock:
            while self._pending and len(leased) < max_items:
                item = self._items[self._pending.popleft()]
                if item.state != WORK_PENDING:
                    continue
                item.state = WORK_LEASED
                item.node = node_id
                item.leased_at = now
                item.attempts += 1
                leased.append(item)
        return leased

    def complete(self, item_id: str,
                 result: Dict[str, Any]) -> Optional[WorkItem]:
        """Record a successful result; idempotent.

        A late completion (lease expired, item re-dispatched or already
        finished elsewhere) is accepted when the item is still open —
        work is deterministic, so first-result-wins is safe — and
        ignored once the item resolved.
        """
        with self._lock:
            item = self._items.get(item_id)
            if item is None or item.state in WORK_FINAL:
                return None
            item.state = WORK_DONE
            item.result = result
            item.error = None
            self.completed_total += 1
            self._changed.notify_all()
            return item

    def fail(self, item_id: str, error: str,
             retryable: bool = True) -> Optional[WorkItem]:
        """Record a failed attempt; re-queue while budget remains."""
        with self._lock:
            item = self._items.get(item_id)
            if item is None or item.state in WORK_FINAL:
                return None
            item.error = error
            item.node = None
            item.leased_at = None
            if retryable and item.attempts < self.max_attempts:
                item.state = WORK_PENDING
                self._pending.append(item.id)
                self.requeued_total += 1
            else:
                item.state = WORK_FAILED
            self._changed.notify_all()
            return item

    def renew(self, node_id: str) -> int:
        """Refresh the lease clock on everything ``node_id`` holds.

        Called on every heartbeat: a live node keeps its leases however
        long a shard takes, so ``expire`` only reclaims work from nodes
        that stopped heartbeating (the registry usually notices first).
        """
        now = self._clock()
        renewed = 0
        with self._lock:
            for item in self._items.values():
                if item.state == WORK_LEASED and item.node == node_id:
                    item.leased_at = now
                    renewed += 1
        return renewed

    # -- failure recovery -----------------------------------------------

    def release_node(self, node_id: str) -> List[WorkItem]:
        """Re-queue everything a dead node held (its heartbeats stopped)."""
        released = []
        with self._lock:
            for item in self._items.values():
                if item.state == WORK_LEASED and item.node == node_id:
                    released.append(self._requeue_locked(
                        item, f"node {node_id} lost"))
            if released:
                self._changed.notify_all()
        return released

    def expire(self, lease_timeout: float) -> List[WorkItem]:
        """Re-queue items whose lease outlived ``lease_timeout``."""
        now = self._clock()
        expired = []
        with self._lock:
            for item in self._items.values():
                if item.state == WORK_LEASED \
                        and item.leased_at is not None \
                        and now - item.leased_at >= lease_timeout:
                    expired.append(self._requeue_locked(
                        item, f"lease expired on {item.node}"))
            if expired:
                self._changed.notify_all()
        return expired

    def _requeue_locked(self, item: WorkItem, reason: str) -> WorkItem:
        item.node = None
        item.leased_at = None
        item.error = reason
        if item.attempts < self.max_attempts:
            item.state = WORK_PENDING
            self._pending.append(item.id)
            self.requeued_total += 1
        else:
            item.state = WORK_FAILED
            item.error = f"{reason}; attempts exhausted " \
                         f"({self.max_attempts})"
        return item

    # -- inspection / waiting -------------------------------------------

    def get(self, item_id: str) -> Optional[WorkItem]:
        with self._lock:
            return self._items.get(item_id)

    def items_for_job(self, job_id: str) -> List[WorkItem]:
        with self._lock:
            return [item for item in self._items.values()
                    if item.job_id == job_id]

    def drop_job(self, job_id: str) -> int:
        """Resolve a cancelled job's open items (they stop dispatching)."""
        dropped = 0
        with self._lock:
            for item in self._items.values():
                if item.job_id == job_id and item.state not in WORK_FINAL:
                    item.state = WORK_FAILED
                    item.error = "job cancelled"
                    dropped += 1
            if dropped:
                self._changed.notify_all()
        return dropped

    def counts(self) -> Dict[str, int]:
        with self._lock:
            tally = {WORK_PENDING: 0, WORK_LEASED: 0, WORK_DONE: 0,
                     WORK_FAILED: 0}
            for item in self._items.values():
                tally[item.state] += 1
            return tally

    def pending_depth(self) -> int:
        with self._lock:
            return sum(1 for item in self._items.values()
                       if item.state == WORK_PENDING)

    def wait(self, item_ids: List[str], timeout: Optional[float] = None,
             poll: float = 0.2, should_abort=None) -> bool:
        """Block until every item resolved; False on timeout/abort.

        ``should_abort`` is polled between condition wakeups so a
        cancelled job stops its waiter promptly.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._changed:
            while True:
                open_items = [item_id for item_id in item_ids
                              if self._items[item_id].state
                              not in WORK_FINAL]
                if not open_items:
                    return True
                if should_abort is not None and should_abort():
                    return False
                remaining = poll
                if deadline is not None:
                    remaining = min(poll, deadline - self._clock())
                    if remaining <= 0:
                        return False
                self._changed.wait(remaining)


@dataclass
class NodeInfo:
    """One attached worker node, as seen from the coordinator."""

    id: str
    name: str
    capacity: int
    registered_at: float
    last_heartbeat: float
    draining: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        view = {
            "id": self.id,
            "name": self.name,
            "capacity": self.capacity,
            "draining": self.draining,
            "stats": self.stats,
        }
        if now is not None:
            view["heartbeat_age_seconds"] = round(
                max(0.0, now - self.last_heartbeat), 3)
            view["uptime_seconds"] = round(
                max(0.0, now - self.registered_at), 3)
        return view


class NodeRegistry:
    """Known nodes + heartbeat liveness."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._nodes: Dict[str, NodeInfo] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.lost_total = 0

    def register(self, name: Optional[str] = None,
                 capacity: int = 1) -> NodeInfo:
        now = self._clock()
        with self._lock:
            node_id = f"node-{next(self._ids)}"
            info = NodeInfo(id=node_id, name=name or node_id,
                            capacity=max(1, int(capacity)),
                            registered_at=now, last_heartbeat=now)
            self._nodes[node_id] = info
            return info

    def heartbeat(self, node_id: str,
                  stats: Optional[Dict[str, Any]] = None) -> bool:
        """Renew a node's liveness; False when the node is unknown
        (coordinator restarted — the node should re-register)."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return False
            info.last_heartbeat = self._clock()
            if stats is not None:
                info.stats = stats
            return True

    def get(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def set_draining(self, node_id: str) -> bool:
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return False
            info.draining = True
            return True

    def expire(self, node_timeout: float) -> List[NodeInfo]:
        """Drop nodes whose heartbeats stopped; returns the casualties."""
        now = self._clock()
        with self._lock:
            dead = [info for info in self._nodes.values()
                    if now - info.last_heartbeat >= node_timeout]
            for info in dead:
                del self._nodes[info.id]
            self.lost_total += len(dead)
            return dead

    def remove(self, node_id: str) -> bool:
        with self._lock:
            return self._nodes.pop(node_id, None) is not None

    def rows(self) -> List[Dict[str, Any]]:
        now = self._clock()
        with self._lock:
            return [info.to_dict(now) for info in
                    sorted(self._nodes.values(), key=lambda n: n.id)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)
