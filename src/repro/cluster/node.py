"""Worker node: attach, pull, execute, report, heartbeat.

A node is deliberately dumb — all policy (sharding, retry, merge,
quotas) lives on the coordinator.  The loop::

    register -> { lease -> execute via execute_job -> complete }*
             -> exit on drain

with a heartbeat thread renewing liveness (and thereby the node's
leases) at the coordinator-advertised interval.  Executors are the
stock :func:`~repro.serve.executors.execute_job` registry, so every job
kind and backend — including the compiled JIT tier — runs on nodes
unmodified, and node-side evaluation is byte-identical to local
execution.

Failure behavior: transient HTTP errors ride the client's built-in
retry; a coordinator restart surfaces as 404s and the node simply
re-registers; a *killed* node reports nothing — the coordinator's
heartbeat expiry re-queues its leases (see ``tests/cluster``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..serve.client import ServiceError
from ..serve.executors import ExecutorError, execute_job
from ..serve.jobs import JobCancelled, JobContext, JobSpec
from .client import CoordinatorClient

__all__ = ["WorkerNode"]


class _ItemJob:
    """Job-shaped shim so executors get a standard :class:`JobContext`."""

    __slots__ = ("spec", "id", "cancel_event")

    def __init__(self, item: Dict[str, Any],
                 cancel_event: threading.Event) -> None:
        self.spec = JobSpec(kind=item["kind"])
        self.id = item["id"]
        self.cancel_event = cancel_event


class WorkerNode:
    """One worker process/thread pulling from a coordinator."""

    def __init__(self, coordinator_url: str, name: Optional[str] = None,
                 capacity: int = 1, poll_interval: float = 0.2,
                 telemetry=None) -> None:
        self.client = CoordinatorClient(coordinator_url)
        self.name = name
        self.capacity = max(1, capacity)
        self.poll_interval = poll_interval
        self.node_id: Optional[str] = None
        self.heartbeat_interval = 1.0
        self.executed = 0
        self.failed = 0
        self.current_item: Optional[str] = None
        self._stop = threading.Event()     # hard stop: abandon work
        self._drain = threading.Event()    # soft stop: finish, then exit
        self._vanished = False             # crash simulation: report nothing
        self._thread: Optional[threading.Thread] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerNode":
        """Run the node loop on a background thread."""
        self._thread = threading.Thread(target=self.run,
                                        name=f"cluster-node-{self.name}",
                                        daemon=True)
        self._thread.start()
        return self

    def drain(self) -> None:
        """Finish the current item, then exit the loop."""
        self._drain.set()

    def stop(self) -> None:
        """Graceful stop: drain and wait for the loop to exit."""
        self.drain()
        self._stop_heartbeats()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def kill(self) -> None:
        """Simulate a crash: abandon in-flight work, stop heartbeating,
        and report **nothing** back — the coordinator only finds out via
        heartbeat expiry, which re-queues whatever this node held (the
        failure mode the lease tests exercise)."""
        self._vanished = True
        self._stop.set()
        self._drain.set()
        self._stop_heartbeats()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _stop_heartbeats(self) -> None:
        if self._hb_thread is not None:
            self._hb_thread = None  # loop checks identity and exits

    # -- main loop ------------------------------------------------------

    def run(self) -> None:
        """Blocking node loop (``repro node`` runs this in the
        foreground)."""
        while not self._drain.is_set():
            if not self._attach():
                return
            try:
                self._pull_loop()
                return
            except _Reregister:
                continue  # coordinator restarted; attach again

    def _attach(self) -> bool:
        backoff = 0.2
        while not self._drain.is_set():
            try:
                info = self.client.register_node(name=self.name,
                                                 capacity=self.capacity)
            except (ServiceError, OSError):
                time.sleep(backoff)
                backoff = min(backoff * 2, 5.0)
                continue
            self.node_id = info["id"]
            self.heartbeat_interval = float(
                info.get("heartbeat_interval", 1.0))
            hb = threading.Thread(target=self._heartbeat_loop,
                                  name=f"node-hb-{self.node_id}",
                                  daemon=True)
            self._hb_thread = hb
            hb.start()
            return True
        return False

    def _heartbeat_loop(self) -> None:
        thread = threading.current_thread()
        while self._hb_thread is thread and not self._stop.is_set():
            try:
                self.client.node_heartbeat(self.node_id, self.stats())
            except ServiceError as exc:
                if exc.status == 404:
                    return  # node loop will re-register
            except OSError:
                pass  # transient; the next beat retries
            time.sleep(self.heartbeat_interval)

    def _pull_loop(self) -> None:
        idle_sleep = self.poll_interval
        while not self._stop.is_set():
            if self._drain.is_set():
                return
            try:
                reply = self.client.lease(self.node_id,
                                          max_items=self.capacity)
            except ServiceError as exc:
                if exc.status == 404:
                    raise _Reregister from None
                time.sleep(idle_sleep)
                continue
            except OSError:
                time.sleep(idle_sleep)
                continue
            if reply.get("drain"):
                return
            work = reply.get("work") or []
            if not work:
                time.sleep(idle_sleep)
                continue
            for item in work:
                if self._stop.is_set():
                    return
                self._run_item(item)

    def _run_item(self, item: Dict[str, Any]) -> None:
        self.current_item = item["id"]
        ctx = JobContext(_ItemJob(item, self._stop))
        try:
            result = execute_job(item["kind"], item["payload"], ctx)
        except ExecutorError as exc:
            # Deterministic payload problem — retrying elsewhere cannot
            # help, so the coordinator should fail the item outright.
            self.failed += 1
            self._report(item["id"], error=str(exc), retryable=False)
        except JobCancelled:
            # Hard node stop mid-item: give the work back.
            self._report(item["id"], error="node stopping",
                         retryable=True)
        except Exception as exc:  # noqa: BLE001 — node must survive
            self.failed += 1
            self._report(item["id"], error=f"{exc!r}", retryable=True)
        else:
            self.executed += 1
            self._report(item["id"], result=result)
        finally:
            self.current_item = None

    def _report(self, item_id: str, result=None, error=None,
                retryable: bool = True) -> None:
        if self._vanished:
            return
        try:
            self.client.complete_work(item_id, result=result, error=error,
                                      retryable=retryable)
        except (ServiceError, OSError):
            # Unreportable outcome: the lease expires and the item is
            # re-dispatched; determinism makes the redo harmless.
            pass

    # -- inspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "failed": self.failed,
            "busy": self.current_item is not None,
            "current": self.current_item,
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3),
        }


class _Reregister(Exception):
    """Internal: the coordinator forgot us (restart); attach again."""
