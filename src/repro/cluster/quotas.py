"""Per-tenant admission quotas, layered on the 429 backpressure.

The admission queue bounds *total* in-flight work; quotas bound each
tenant's share so one noisy tenant cannot monopolize the cluster.  A
tenant's budget counts **active** jobs — queued plus running — and is
released when the job resolves.  Exceeding the budget raises
:class:`QuotaExceeded`, which the coordinator's HTTP layer maps to the
same ``429 + Retry-After`` contract as a full queue, so existing client
backoff handles both identically.  Jobs without a ``tenant`` label are
exempt (quotas are opt-in per submission).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["QuotaExceeded", "TenantQuotas"]


class QuotaExceeded(Exception):
    """A tenant is at its active-job limit (HTTP 429)."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(f"tenant {tenant!r} is at its quota "
                         f"({limit} active jobs); retry later")
        self.tenant = tenant
        self.limit = limit


class TenantQuotas:
    """Active-job accounting per tenant.

    ``default_limit`` applies to every tenant without an explicit entry
    in ``limits``; ``None`` means unlimited (accounting still runs, so
    per-tenant gauges stay accurate).
    """

    def __init__(self, default_limit: Optional[int] = None,
                 limits: Optional[Dict[str, int]] = None) -> None:
        if default_limit is not None and default_limit < 1:
            raise ValueError("default_limit must be >= 1 when given")
        for tenant, limit in (limits or {}).items():
            if limit < 1:
                raise ValueError(f"quota for {tenant!r} must be >= 1")
        self.default_limit = default_limit
        self.limits = dict(limits or {})
        self._active: Dict[str, int] = {}
        self._lock = threading.Lock()

    def limit_for(self, tenant: str) -> Optional[int]:
        return self.limits.get(tenant, self.default_limit)

    def acquire(self, tenant: Optional[str], force: bool = False) -> None:
        """Count one more active job or raise :class:`QuotaExceeded`.

        ``force`` admits over the limit but still counts — used when the
        coordinator replays persisted jobs, which must never strand.
        """
        if tenant is None:
            return
        with self._lock:
            active = self._active.get(tenant, 0)
            limit = self.limit_for(tenant)
            if not force and limit is not None and active >= limit:
                raise QuotaExceeded(tenant, limit)
            self._active[tenant] = active + 1

    def release(self, tenant: Optional[str]) -> None:
        if tenant is None:
            return
        with self._lock:
            active = self._active.get(tenant, 0)
            if active <= 1:
                self._active.pop(tenant, None)
            else:
                self._active[tenant] = active - 1

    def active(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._active)
