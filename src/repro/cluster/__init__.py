"""Distributed simulation fabric over the batch-service layer.

A coordinator (:class:`ClusterCoordinator`) owns the job queue and the
client API; worker nodes (:class:`WorkerNode`) attach over the same
stdlib HTTP/JSON protocol ``repro serve`` speaks, pull sharded work,
execute it with the stock executor registry, and stream results back
under heartbeat-renewed leases.  The design invariant — shard planning
is a pure function of the job spec, with an order-restoring merge on
the coordinator — makes an N-node run byte-identical to single-process
execution for any fixed seed, including across node death and lease
re-dispatch.  See docs/serving.md ("Cluster mode").
"""

from .client import CoordinatorClient
from .coordinator import ClusterCoordinator
from .fuzzdriver import DistributedFuzzEngine, split_batch
from .leases import LeaseTable, NodeInfo, NodeRegistry, WorkItem
from .node import WorkerNode
from .quotas import QuotaExceeded, TenantQuotas
from .shards import merge_campaign_shards, plan_shards, shard_count_for
from .store import JobStore

__all__ = [
    "ClusterCoordinator",
    "CoordinatorClient",
    "DistributedFuzzEngine",
    "JobStore",
    "LeaseTable",
    "NodeInfo",
    "NodeRegistry",
    "QuotaExceeded",
    "TenantQuotas",
    "WorkItem",
    "WorkerNode",
    "merge_campaign_shards",
    "plan_shards",
    "shard_count_for",
    "split_batch",
]
