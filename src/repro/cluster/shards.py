"""Deterministic shard planning and order-restoring result merge.

The cluster's trust story rests on one rule: **shard planning is a pure
function of the job spec, never of the cluster shape**.  A campaign
submitted with ``shards=4`` produces the same four work items whether
one node or ten are attached, whether a node dies mid-run or not — so
the merged result is byte-identical to a single-process run of the same
spec (pinned by ``tests/cluster/test_parity.py``).

* :func:`plan_shards` maps a :class:`~repro.serve.jobs.JobSpec` to its
  work items.  Fault campaigns split into ``fault_campaign_shard``
  items over contiguous fault-index ranges and verify campaigns into
  ``verify_shard`` items over contiguous program ranges (both via
  :func:`repro.serve.executors.shard_bounds`); everything else (and
  ``shards=1``) is a single passthrough item.  Fuzz jobs are
  *dynamically* sharded per batch by the coordinator's fuzz driver and
  deliberately return a plan marker here.
* :func:`merge_job_shards` restores submission order (shard index) and
  rebuilds the exact single-process result envelope via the same shared
  builders the passthrough executors use
  (:func:`~repro.serve.executors.campaign_result_dict`,
  :func:`~repro.verify.verify_report_dict`).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..serve.jobs import JobSpec

__all__ = [
    "FUZZ_DRIVER",
    "SHARDABLE_KINDS",
    "merge_campaign_shards",
    "merge_job_shards",
    "merge_verify_shards",
    "plan_shards",
    "shard_count_for",
]

#: Kinds the coordinator may split when ``spec.shards > 1``.
SHARDABLE_KINDS = ("fault_campaign", "fuzz", "verify")

#: Statically sharded kind -> its per-shard work-item kind.
_SHARD_KINDS = {"fault_campaign": "fault_campaign_shard",
                "verify": "verify_shard"}

#: Plan marker: the job is driven by the coordinator's fuzz loop, which
#: shards each evaluation batch dynamically (no static work items).
FUZZ_DRIVER = "fuzz_driver"


def shard_count_for(spec: JobSpec) -> int:
    """The effective shard count — spec-pure, capped at the work size."""
    if spec.shards <= 1 or spec.kind not in SHARDABLE_KINDS:
        return 1
    if spec.kind == "fault_campaign":
        mutants = spec.payload.get("mutants", 100)
        if isinstance(mutants, int) and not isinstance(mutants, bool):
            return max(1, min(spec.shards, mutants))
    if spec.kind == "verify":
        from ..verify import corpus_size_hint

        corpus = spec.payload.get("corpus", "suites")
        try:
            hint = corpus_size_hint(corpus) if isinstance(corpus, str) \
                else None
        except ValueError:
            hint = None  # bad spec surfaces as ExecutorError at execution
        if hint is not None:
            return max(1, min(spec.shards, hint))
    return spec.shards


def plan_shards(spec: JobSpec) -> List[Dict[str, Any]]:
    """The work items for one job — each ``{"kind", "payload",
    "shard_index", "shard_count"}``.

    A fuzz job with ``shards > 1`` returns the single :data:`FUZZ_DRIVER`
    marker instead: its real work items are minted batch-by-batch by the
    coordinator's :class:`~repro.cluster.fuzzdriver.DistributedFuzzEngine`.
    """
    count = shard_count_for(spec)
    if spec.kind == "fuzz" and count > 1:
        return [{"kind": FUZZ_DRIVER, "payload": spec.payload,
                 "shard_index": 0, "shard_count": count}]
    if count == 1:
        return [{"kind": spec.kind, "payload": spec.payload,
                 "shard_index": 0, "shard_count": 1}]
    return [
        {"kind": _SHARD_KINDS[spec.kind],
         "payload": {**spec.payload,
                     "shard_count": count, "shard_index": index},
         "shard_index": index,
         "shard_count": count}
        for index in range(count)
    ]


def merge_campaign_shards(shard_results: List[Dict[str, Any]]
                          ) -> Dict[str, Any]:
    """Rebuild the single-process campaign envelope from shard results.

    Each element is one ``fault_campaign_shard`` executor return value.
    Results are concatenated in shard-index order — the shard executor
    ran ``faults[lo:hi]`` of the *same* seeded fault list every shard
    rebuilt, so index-ordered concatenation reproduces the exact
    sequential classification list.  The elapsed time is the summed
    shard compute time (wall-clock, stripped by parity comparisons).
    """
    from ..serve.executors import campaign_result_dict

    ordered = _ordered_shards(shard_results, "campaign")
    results: List[Dict[str, Any]] = []
    for shard in ordered:
        results.extend(shard["results"])
    golden = ordered[0]["golden"]
    elapsed = round(sum(s["elapsed_seconds"] for s in ordered), 6)
    campaign_dict = {"golden": golden, "results": results,
                     "elapsed_seconds": elapsed}
    return campaign_result_dict(golden, campaign_dict)


def merge_verify_shards(shard_results: List[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Rebuild the single-process verify report from shard results.

    Each element is one ``verify_shard`` executor return value.  Every
    shard rebuilt the identical seeded corpus and matrix (the ``meta``
    dicts agree, including the corpus digest), so concatenating the
    escalation lists in shard-index order — contiguous program ranges —
    and re-running the shared report builder reproduces the exact
    single-process report.  Elapsed time is the summed shard compute
    time (wall-clock, stripped by parity comparisons).
    """
    from ..verify import verify_report_dict

    ordered = _ordered_shards(shard_results, "verify")
    meta = ordered[0]["meta"]
    for shard in ordered[1:]:
        if shard["meta"] != meta:
            raise ValueError(
                f"verify shard {shard['shard_index']} disagrees on the "
                f"campaign meta (corpus digest "
                f"{shard['meta'].get('corpus_digest')} vs "
                f"{meta.get('corpus_digest')})")
    escalations: List[Dict[str, Any]] = []
    for shard in ordered:
        escalations.extend(shard["escalations"])
    elapsed = round(sum(s["elapsed_seconds"] for s in ordered), 6)
    return verify_report_dict(meta, escalations, elapsed)


def merge_job_shards(kind: str,
                     shard_results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge shard results for a job of ``kind`` (the coordinator's
    single dispatch point for every statically sharded kind)."""
    if kind == "fault_campaign":
        return merge_campaign_shards(shard_results)
    if kind == "verify":
        return merge_verify_shards(shard_results)
    raise ValueError(f"job kind {kind!r} has no shard merge")


def _ordered_shards(shard_results: List[Dict[str, Any]],
                    what: str) -> List[Dict[str, Any]]:
    if not shard_results:
        raise ValueError(f"cannot merge zero {what} shards")
    ordered = sorted(shard_results, key=lambda s: s["shard_index"])
    indices = [s["shard_index"] for s in ordered]
    if indices != list(range(ordered[0]["shard_count"])):
        raise ValueError(f"incomplete shard set: got indices {indices}, "
                         f"expected 0..{ordered[0]['shard_count'] - 1}")
    return ordered
