"""Deterministic shard planning and order-restoring result merge.

The cluster's trust story rests on one rule: **shard planning is a pure
function of the job spec, never of the cluster shape**.  A campaign
submitted with ``shards=4`` produces the same four work items whether
one node or ten are attached, whether a node dies mid-run or not — so
the merged result is byte-identical to a single-process run of the same
spec (pinned by ``tests/cluster/test_parity.py``).

* :func:`plan_shards` maps a :class:`~repro.serve.jobs.JobSpec` to its
  work items.  Campaigns split into ``fault_campaign_shard`` items over
  contiguous fault-index ranges (:func:`repro.serve.executors.shard_bounds`);
  everything else (and ``shards=1``) is a single passthrough item.
  Fuzz jobs are *dynamically* sharded per batch by the coordinator's
  fuzz driver and deliberately return a plan marker here.
* :func:`merge_campaign_shards` restores submission order (shard index)
  and rebuilds the exact single-process result envelope via the shared
  :func:`~repro.serve.executors.campaign_result_dict`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..serve.jobs import JobSpec

__all__ = [
    "FUZZ_DRIVER",
    "SHARDABLE_KINDS",
    "merge_campaign_shards",
    "plan_shards",
    "shard_count_for",
]

#: Kinds the coordinator may split when ``spec.shards > 1``.
SHARDABLE_KINDS = ("fault_campaign", "fuzz")

#: Plan marker: the job is driven by the coordinator's fuzz loop, which
#: shards each evaluation batch dynamically (no static work items).
FUZZ_DRIVER = "fuzz_driver"


def shard_count_for(spec: JobSpec) -> int:
    """The effective shard count — spec-pure, capped at the work size."""
    if spec.shards <= 1 or spec.kind not in SHARDABLE_KINDS:
        return 1
    if spec.kind == "fault_campaign":
        mutants = spec.payload.get("mutants", 100)
        if isinstance(mutants, int) and not isinstance(mutants, bool):
            return max(1, min(spec.shards, mutants))
    return spec.shards


def plan_shards(spec: JobSpec) -> List[Dict[str, Any]]:
    """The work items for one job — each ``{"kind", "payload",
    "shard_index", "shard_count"}``.

    A fuzz job with ``shards > 1`` returns the single :data:`FUZZ_DRIVER`
    marker instead: its real work items are minted batch-by-batch by the
    coordinator's :class:`~repro.cluster.fuzzdriver.DistributedFuzzEngine`.
    """
    count = shard_count_for(spec)
    if spec.kind == "fuzz" and count > 1:
        return [{"kind": FUZZ_DRIVER, "payload": spec.payload,
                 "shard_index": 0, "shard_count": count}]
    if count == 1:
        return [{"kind": spec.kind, "payload": spec.payload,
                 "shard_index": 0, "shard_count": 1}]
    return [
        {"kind": "fault_campaign_shard",
         "payload": {**spec.payload,
                     "shard_count": count, "shard_index": index},
         "shard_index": index,
         "shard_count": count}
        for index in range(count)
    ]


def merge_campaign_shards(shard_results: List[Dict[str, Any]]
                          ) -> Dict[str, Any]:
    """Rebuild the single-process campaign envelope from shard results.

    Each element is one ``fault_campaign_shard`` executor return value.
    Results are concatenated in shard-index order — the shard executor
    ran ``faults[lo:hi]`` of the *same* seeded fault list every shard
    rebuilt, so index-ordered concatenation reproduces the exact
    sequential classification list.  The elapsed time is the summed
    shard compute time (wall-clock, stripped by parity comparisons).
    """
    from ..serve.executors import campaign_result_dict

    if not shard_results:
        raise ValueError("cannot merge zero campaign shards")
    ordered = sorted(shard_results, key=lambda s: s["shard_index"])
    indices = [s["shard_index"] for s in ordered]
    if indices != list(range(ordered[0]["shard_count"])):
        raise ValueError(f"incomplete shard set: got indices {indices}, "
                         f"expected 0..{ordered[0]['shard_count'] - 1}")
    results: List[Dict[str, Any]] = []
    for shard in ordered:
        results.extend(shard["results"])
    golden = ordered[0]["golden"]
    elapsed = round(sum(s["elapsed_seconds"] for s in ordered), 6)
    campaign_dict = {"golden": golden, "results": results,
                     "elapsed_seconds": elapsed}
    return campaign_result_dict(golden, campaign_dict)
