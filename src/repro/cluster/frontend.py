"""Selector-based HTTP frontend — thousands of sockets, one thread.

The coordinator fans in submit/poll traffic from clients *and*
lease/heartbeat/complete traffic from every node.  A thread-per-socket
server (``ThreadingHTTPServer``, as ``repro serve`` uses) burns a stack
per idle keep-alive connection; this frontend instead multiplexes all
connections on one :mod:`selectors` event loop with non-blocking
sockets, so connection count is bounded by file descriptors, not
threads.

The router contract keeps handlers decoupled from the transport::

    router(method, path, query, body) -> (status, payload[, headers])

``payload`` may be a dict (JSON-encoded, sorted keys — the same wire
bytes as the serve API) or a ``str`` (plain/custom content type via
``headers``).  Handlers run inline on the event loop and must be fast
and non-blocking: the coordinator's handlers only touch in-memory state
and hand real work to worker threads.

HTTP subset: request line + headers + ``Content-Length`` bodies (no
chunked encoding — every stdlib client used here sends lengths),
keep-alive by default on HTTP/1.1, ``Connection: close`` honored.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["Router", "SelectorHttpServer"]

Router = Callable[[str, str, Dict[str, str], Optional[dict]], tuple]

MAX_BODY_BYTES = 8 * 1024 * 1024   # matches repro.serve.api
MAX_HEADER_BYTES = 64 * 1024
RECV_SIZE = 65536

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Connection:
    """Per-socket parse/write state."""

    __slots__ = ("sock", "inbuf", "outbuf", "close_after_write")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.close_after_write = False


def _parse_query(raw: str) -> Dict[str, str]:
    from urllib.parse import parse_qs

    return {key: values[-1] for key, values in parse_qs(raw).items()}


class SelectorHttpServer:
    """One event loop serving a router over non-blocking sockets."""

    def __init__(self, router: Router, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.router = router
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(512)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                data=None)
        # Self-pipe so close() can wake a blocked select() promptly.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                data="wake")
        self._thread: Optional[threading.Thread] = None
        self._closed = threading.Event()
        self.connections_total = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, name: str = "cluster-frontend") -> "SelectorHttpServer":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name=name, daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the loop and close every connection; idempotent."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass
        if self._thread is not None \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
            self._thread = None

    # -- event loop -----------------------------------------------------

    def serve_forever(self) -> None:
        try:
            while not self._closed.is_set():
                for key, mask in self._selector.select(timeout=0.5):
                    if key.data is None:
                        self._accept()
                    elif key.data == "wake":
                        try:
                            self._wake_recv.recv(64)
                        except OSError:
                            pass
                    else:
                        self._service(key.data, mask)
        finally:
            for key in list(self._selector.get_map().values()):
                if isinstance(key.data, _Connection):
                    self._drop(key.data)
            self._selector.unregister(self._listener)
            self._listener.close()
            self._selector.unregister(self._wake_recv)
            self._wake_recv.close()
            self._wake_send.close()
            self._selector.close()

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            self.connections_total += 1
            self._selector.register(sock, selectors.EVENT_READ,
                                    data=_Connection(sock))

    def _service(self, conn: _Connection, mask: int) -> None:
        if mask & selectors.EVENT_READ:
            try:
                blob = conn.sock.recv(RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                blob = None
            except OSError:
                return self._drop(conn)
            else:
                if not blob:
                    return self._drop(conn)
                conn.inbuf += blob
                if not self._consume(conn):
                    return self._drop(conn)
        if mask & selectors.EVENT_WRITE or conn.outbuf:
            self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                return self._drop(conn)
            del conn.outbuf[:sent]
        if conn.outbuf:
            self._selector.modify(conn.sock,
                                  selectors.EVENT_READ
                                  | selectors.EVENT_WRITE, data=conn)
        else:
            if conn.close_after_write:
                return self._drop(conn)
            self._selector.modify(conn.sock, selectors.EVENT_READ,
                                  data=conn)

    def _drop(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- request handling -----------------------------------------------

    def _consume(self, conn: _Connection) -> bool:
        """Handle every complete request in the buffer; False ⇒ drop."""
        while True:
            end = conn.inbuf.find(b"\r\n\r\n")
            if end < 0:
                return len(conn.inbuf) <= MAX_HEADER_BYTES
            head = bytes(conn.inbuf[:end]).decode("latin-1")
            lines = head.split("\r\n")
            parts = lines[0].split()
            if len(parts) != 3:
                return False
            method, target, version = parts
            headers: Dict[str, str] = {}
            for line in lines[1:]:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length") or 0)
            except ValueError:
                return False
            if length > MAX_BODY_BYTES:
                self._respond(conn, version, headers, 413,
                              {"error": "request body too large"})
                conn.close_after_write = True
                return True
            total = end + 4 + length
            if len(conn.inbuf) < total:
                return True
            raw_body = bytes(conn.inbuf[end + 4:total])
            del conn.inbuf[:total]
            self._dispatch(conn, method, target, version, headers,
                           raw_body)
            if conn.close_after_write:
                return True

    def _dispatch(self, conn: _Connection, method: str, target: str,
                  version: str, headers: Dict[str, str],
                  raw_body: bytes) -> None:
        path, _, raw_query = target.partition("?")
        body: Optional[dict] = None
        if raw_body:
            try:
                parsed = json.loads(raw_body)
            except json.JSONDecodeError as exc:
                return self._respond(conn, version, headers, 400,
                                     {"error": f"invalid JSON body: {exc}"})
            if not isinstance(parsed, dict):
                return self._respond(
                    conn, version, headers, 400,
                    {"error": "request body must be a JSON object"})
            body = parsed
        try:
            outcome = self.router(method, path, _parse_query(raw_query),
                                  body)
        except Exception as exc:  # noqa: BLE001 — loop must survive
            outcome = (500, {"error": f"internal error: {exc!r}"})
        if len(outcome) == 3:
            status, payload, extra = outcome
        else:
            status, payload = outcome
            extra = None
        self._respond(conn, version, headers, status, payload, extra)

    def _respond(self, conn: _Connection, version: str,
                 request_headers: Dict[str, str], status: int,
                 payload: Any, extra: Optional[Dict[str, str]] = None
                 ) -> None:
        if isinstance(payload, str):
            blob = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        if extra:
            content_type = extra.get("Content-Type", content_type)
        wants_close = request_headers.get("connection", "").lower() \
            == "close" or version == "HTTP/1.0"
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(blob)}",
            f"Connection: {'close' if wants_close else 'keep-alive'}",
        ]
        for name, value in (extra or {}).items():
            if name != "Content-Type":
                head.append(f"{name}: {value}")
        conn.outbuf += ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        conn.outbuf += blob
        if wants_close:
            conn.close_after_write = True
        self._flush(conn)

    def __enter__(self) -> "SelectorHttpServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
