"""The cluster coordinator: job queue, shard dispatch, result merge.

One coordinator owns the client-facing API (the same ``/v1/*`` routes as
``repro serve``, so :class:`~repro.serve.client.ServiceClient`,
``repro submit`` and ``repro top`` work unchanged) plus the node-facing
pull protocol::

    POST /v1/nodes/register          -> {"id", "heartbeat_interval", ...}
    POST /v1/nodes/<id>/heartbeat    {"stats": {...}}   renews leases
    POST /v1/nodes/<id>/lease        {"max_items": N}  -> {"work": [...]}
    POST /v1/work/<id>/complete      {"result": ...} | {"error", "retryable"}
    POST /v1/nodes/<id>/drain
    GET  /v1/cluster/nodes           node rows (repro cluster-status / top)
    GET  /v1/cluster/work            work-item table summary

Execution model: jobs are admitted through the same bounded
:class:`~repro.serve.queue.AdmissionQueue` (429 + Retry-After when
full), optionally gated by per-tenant quotas; the scheduler plans each
job into work items (:mod:`.shards` — spec-pure, so byte-identical
results whatever the cluster shape), nodes pull and execute them via the
stock :func:`~repro.serve.executors.execute_job` registry, and the
coordinator order-restores and merges shard results into the exact
single-process envelope.  Sharded fuzz jobs run their feedback loop on
the coordinator (:mod:`.fuzzdriver`), farming out batch evaluation.
Heartbeat loss re-queues a dead node's leases; a JSONL
:class:`~repro.cluster.store.JobStore` makes jobs survive coordinator
restarts.
"""

from __future__ import annotations

import signal
import threading
import time
from queue import SimpleQueue
from typing import Any, Dict, List, Optional, Tuple

from ..serve.executors import _EXECUTORS, ExecutorError
from ..serve.jobs import (Job, JobCancelled, JobContext, JobSpec, JobTimeout,
                          STATES)
from ..serve.queue import AdmissionQueue, QueueClosed, QueueFull
from ..serve.service import ServiceClosed
from ..telemetry.session import resolve as _resolve_telemetry
from .fuzzdriver import DistributedFuzzEngine, split_batch
from .leases import LeaseTable, NodeRegistry, WORK_DONE, WORK_FAILED
from .quotas import QuotaExceeded, TenantQuotas
from .shards import FUZZ_DRIVER, SHARDABLE_KINDS, plan_shards
from .store import JobStore

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Coordinator node: admission, shard dispatch, lease recovery, merge.

    ::

        coord = ClusterCoordinator(port=0, store_path="jobs.jsonl")
        coord.start()
        # attach WorkerNode(coord.url) instances, submit via ServiceClient
        coord.shutdown()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8973,
                 store_path: Optional[str] = None,
                 queue_limit: int = 64,
                 lease_timeout: float = 30.0,
                 node_timeout: float = 10.0,
                 max_attempts: int = 3,
                 quotas: Optional[TenantQuotas] = None,
                 telemetry=None) -> None:
        from .frontend import SelectorHttpServer

        resolved = _resolve_telemetry(telemetry)
        if not resolved.enabled:
            from ..telemetry import Telemetry
            resolved = Telemetry()
        self.telemetry = resolved
        self._metrics = self.telemetry.metrics.namespace("cluster")
        self.queue = AdmissionQueue(queue_limit)
        self.work = LeaseTable(max_attempts=max_attempts)
        self.nodes = NodeRegistry()
        self.quotas = quotas or TenantQuotas()
        self.lease_timeout = lease_timeout
        self.node_timeout = node_timeout
        self.heartbeat_interval = max(0.05, node_timeout / 3.0)
        self.jobs: Dict[str, Job] = {}
        self._job_items: Dict[str, List[str]] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._accepting = False
        self._started = False
        self._stopped = False
        self._node_drain = threading.Event()
        self._stop_loop = threading.Event()
        self._finalize_feed: SimpleQueue = SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._driver_threads: List[threading.Thread] = []
        self._next_job_number = 1
        self.store: Optional[JobStore] = None
        self._replayed: List[Tuple[str, JobSpec]] = []
        if store_path is not None:
            self._recover(store_path)
        self.frontend = SelectorHttpServer(self._route, host=host,
                                           port=port)

    # -- persistence ----------------------------------------------------

    def _recover(self, store_path: str) -> None:
        """Replay the JSONL log: finished jobs stay fetchable, unfinished
        ones re-queue when the coordinator starts."""
        recovered = JobStore.replay(store_path)
        self._next_job_number = recovered.max_job_number + 1
        for job_id, data in recovered.resolved.items():
            try:
                spec = JobSpec.from_dict(data["spec"])
            except (ValueError, TypeError, KeyError):
                continue
            job = Job(spec, job_id=job_id)
            state = data.get("state")
            if state == "succeeded":
                job.mark_succeeded(data.get("result") or {})
            elif state == "timeout":
                job.mark_timeout(data.get("error") or "timeout")
            elif state == "cancelled":
                job.mark_cancelled(data.get("error") or "cancelled")
            else:
                job.mark_failed(data.get("error") or "failed")
            job.finalize_once()
            self.jobs[job.id] = job
        for job_id, spec_dict in recovered.unresolved:
            try:
                spec = JobSpec.from_dict(spec_dict)
            except (ValueError, TypeError, KeyError):
                continue
            self._replayed.append((job_id, spec))
        self.store = JobStore(store_path)

    # -- lifecycle ------------------------------------------------------

    @property
    def url(self) -> str:
        return self.frontend.url

    def start(self) -> "ClusterCoordinator":
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        self._accepting = True
        self.frontend.start()
        for target, name in ((self._scheduler_loop, "cluster-scheduler"),
                             (self._finalizer_loop, "cluster-finalizer"),
                             (self._reaper_loop, "cluster-reaper")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "cluster.started", queue_limit=self.queue.limit,
                lease_timeout=self.lease_timeout,
                node_timeout=self.node_timeout,
                replayed_jobs=len(self._replayed),
                resolved_jobs=len(self.jobs))
        # Re-queue replayed unresolved jobs under their original IDs:
        # shard plans are spec-pure, so the re-run produces the bytes
        # the interrupted run would have.
        replayed, self._replayed = self._replayed, []
        for job_id, spec in replayed:
            job = Job(spec, job_id=job_id)
            with self._lock:
                self.jobs[job.id] = job
            # Replay must never strand a persisted job; the quota still
            # counts it so new submissions see the true active load.
            self.quotas.acquire(spec.tenant, force=True)
            try:
                self.queue.put(job)
            except (QueueFull, QueueClosed):
                job.mark_failed("queue full during replay")
                self._job_finished(job)
        return self

    def __enter__(self) -> "ClusterCoordinator":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def serve_forever(self) -> None:
        """Run in the foreground (the ``repro coordinator`` entry point)."""
        try:
            while not self._stop_loop.wait(0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.shutdown()

    def install_signal_handlers(self) -> None:
        """SIGTERM and SIGINT both drain gracefully (containers send
        SIGTERM); mirrors ``ServiceServer.install_signal_handlers``."""
        def handle(signum, frame):  # pragma: no cover - signal path
            self._stop_loop.set()

        signal.signal(signal.SIGTERM, handle)
        signal.signal(signal.SIGINT, handle)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the coordinator.

        ``drain=True`` stops admission, waits for every queued and
        in-flight job to resolve (nodes keep pulling), then tells nodes
        to drain and closes.  ``drain=False`` cancels queued jobs and
        closes immediately.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._accepting = False
        if not drain:
            for job in self.queue.drain():
                job.mark_cancelled("coordinator shutdown")
                self._job_finished(job)
        self.queue.close()
        if drain:
            self.join(timeout=timeout)
        self._node_drain.set()
        self._stop_loop.set()
        self._finalize_feed.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        for thread in list(self._driver_threads):
            thread.join(timeout=5)
        self.frontend.close()
        if self.telemetry.enabled:
            counts = self.work.counts()
            self.telemetry.events.emit(
                "cluster.stopped", drained=drain,
                jobs_total=len(self.jobs),
                work_completed=self.work.completed_total,
                work_requeued=self.work.requeued_total,
                work_failed=counts[WORK_FAILED],
                nodes_lost=self.nodes.lost_total)
        if self.store is not None:
            self.store.close()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; True when idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while any(not job.done for job in list(self.jobs.values())):
                remaining = 0.2
                if deadline is not None:
                    remaining = min(0.2, deadline - time.monotonic())
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    # -- submission -----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; raises :class:`QueueFull`,
        :class:`QuotaExceeded`, :class:`ServiceClosed`, or
        :class:`ExecutorError` exactly like the single-process service."""
        if not self._started:
            raise RuntimeError("coordinator not started")
        spec.validate()
        if spec.kind not in _EXECUTORS:
            raise ExecutorError(
                f"unknown job kind {spec.kind!r}; known kinds: "
                f"{sorted(_EXECUTORS)}")
        if spec.shards > 1 and spec.kind not in SHARDABLE_KINDS:
            raise ExecutorError(
                f"kind {spec.kind!r} cannot shard; shards > 1 applies to "
                f"{sorted(SHARDABLE_KINDS)}")
        with self._lock:
            if not self._accepting:
                raise ServiceClosed("coordinator is shutting down")
            job = Job(spec, job_id=f"job-{self._next_job_number}")
            self.quotas.acquire(spec.tenant)
            try:
                self.queue.put(job)
            except QueueFull:
                self.quotas.release(spec.tenant)
                self._metrics.counter("rejected").inc()
                if self.telemetry.enabled:
                    self.telemetry.events.emit(
                        "job.rejected", kind=spec.kind,
                        queue_depth=self.queue.limit)
                raise
            except QueueClosed:
                self.quotas.release(spec.tenant)
                raise ServiceClosed(
                    "coordinator is shutting down") from None
            self._next_job_number += 1
            self.jobs[job.id] = job
        if self.store is not None:
            self.store.append_job(job.id, spec.to_dict())
        self._metrics.counter("submitted").inc()
        self._metrics.gauge("queue_depth").set(self.queue.depth())
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "job.submitted", id=job.id, kind=spec.kind,
                shards=spec.shards, tenant=spec.tenant or "")
        return job

    def get_job(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        job = self.jobs.get(job_id)
        if job is None:
            return False
        changed = job.cancel()
        if changed:
            self.work.drop_job(job_id)
            with self._lock:
                static = job_id in self._job_items
            if not job.done and static:
                # Statically-sharded jobs have no cooperative executor
                # on the coordinator — dropping their work items *is*
                # the cancellation, so resolve the job here.  (Fuzz
                # driver jobs resolve themselves via ctx.check.)
                job.mark_cancelled("cancelled while running")
            if job.done:
                self._job_finished(job)
        return changed

    # -- scheduling -----------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=None)
            if job is None:
                return
            if job.deadline_expired():
                job.mark_timeout("deadline expired before dispatch")
                self._job_finished(job)
                continue
            self._metrics.gauge("queue_depth").set(self.queue.depth())
            plans = plan_shards(job.spec)
            if plans[0]["kind"] == FUZZ_DRIVER:
                self._start_fuzz_driver(job, plans[0]["shard_count"])
                continue
            if not job.mark_running("cluster"):
                self._job_finished(job)
                continue
            items = self.work.add(job.id, plans)
            with self._lock:
                self._job_items[job.id] = [item.id for item in items]
            self._update_work_gauges()
            if self.telemetry.enabled:
                self.telemetry.events.emit(
                    "job.dispatched", id=job.id, kind=job.spec.kind,
                    shards=len(items))

    def _start_fuzz_driver(self, job: Job, shard_count: int) -> None:
        thread = threading.Thread(
            target=self._drive_fuzz, args=(job, shard_count),
            name=f"fuzz-driver-{job.id}", daemon=True)
        self._driver_threads.append(thread)
        thread.start()

    def _drive_fuzz(self, job: Job, shard_count: int) -> None:
        """Run a sharded fuzz job's loop, evaluating batches remotely."""
        from ..serve.executors import fuzz_session_from_payload

        if not job.mark_running("cluster"):
            self._job_finished(job)
            return
        ctx = JobContext(job)
        try:
            isa, config, seeds = fuzz_session_from_payload(
                job.spec.payload)
            base = {
                "isa": isa.name,
                "max_instructions": config.max_instructions,
                "backend": config.backend,
            }

            def evaluate_remote(batch):
                return self._eval_batch_on_cluster(job, ctx, base, batch,
                                                   shard_count)

            engine = DistributedFuzzEngine(isa, config, evaluate_remote,
                                           telemetry=self.telemetry)
            result = engine.run(seeds,
                                on_progress=lambda progress: ctx.check(),
                                progress_interval=0.2)
        except JobCancelled:
            job.mark_cancelled("cancelled while running")
        except JobTimeout:
            job.mark_timeout(
                f"run timeout after {job.spec.timeout_seconds}s")
        except ExecutorError as exc:
            job.mark_failed(str(exc))
        except Exception as exc:  # noqa: BLE001 — driver must resolve job
            job.mark_failed(f"fuzz driver failed: {exc!r}")
        else:
            job.mark_succeeded(result.to_dict())
        finally:
            # Abandoned batch items (cancel/timeout/failure) must not
            # keep dispatching to nodes; on success everything is done
            # already and the drop is a no-op.
            self.work.drop_job(job.id)
            self._job_finished(job)
            self._driver_threads.remove(threading.current_thread())

    def _eval_batch_on_cluster(self, job: Job, ctx: JobContext,
                               base: Dict[str, Any], batch,
                               shard_count: int):
        """One fuzz batch as ``fuzz_eval`` work items, order-restored."""
        from ..fuzz.executor import EvalResult

        chunks = split_batch(batch, shard_count)
        plans = [{"kind": "fuzz_eval",
                  "payload": {**base,
                              "inputs": [list(words) for words in inputs]},
                  "shard_index": index,
                  "shard_count": shard_count}
                 for index, inputs in chunks]
        items = self.work.add(job.id, plans)
        self._update_work_gauges()
        done = self.work.wait([item.id for item in items],
                              should_abort=lambda: job.done
                              or ctx.cancelled or ctx.timed_out
                              or self._stop_loop.is_set())
        ctx.check()
        if not done:
            raise RuntimeError("batch evaluation aborted")
        results = []
        for item in sorted((self.work.get(item.id) for item in items),
                           key=lambda it: it.shard_index):
            if item.state != WORK_DONE:
                raise RuntimeError(
                    f"work item {item.id} failed: {item.error}")
            results.extend(EvalResult.from_dict(data)
                           for data in item.result["results"])
        return results

    # -- finalization ---------------------------------------------------

    def _finalizer_loop(self) -> None:
        while True:
            job_id = self._finalize_feed.get()
            if job_id is None:
                return
            try:
                self._maybe_finalize(job_id)
            except Exception as exc:  # noqa: BLE001 — loop must survive
                job = self.jobs.get(job_id)
                if job is not None and not job.done:
                    job.mark_failed(f"finalize failed: {exc!r}")
                    self._job_finished(job)

    def _maybe_finalize(self, job_id: str) -> None:
        """Resolve a statically-sharded job once all its items landed."""
        from .shards import merge_job_shards

        job = self.jobs.get(job_id)
        with self._lock:
            item_ids = self._job_items.get(job_id)
        if job is None or job.done or not item_ids:
            return
        items = [self.work.get(item_id) for item_id in item_ids]
        failed = [item for item in items if item.state == WORK_FAILED]
        if failed:
            job.mark_failed(
                f"work item {failed[0].id} failed: {failed[0].error}")
            self.work.drop_job(job_id)
            self._job_finished(job)
            return
        if not all(item.state == WORK_DONE for item in items):
            return
        if len(items) == 1 and items[0].kind == job.spec.kind:
            job.mark_succeeded(items[0].result)
        else:
            job.mark_succeeded(merge_job_shards(
                job.spec.kind, [item.result for item in items]))
        self._job_finished(job)

    def _job_finished(self, job: Job) -> None:
        if not job.finalize_once():
            return
        self.quotas.release(job.spec.tenant)
        with self._lock:
            self._job_items.pop(job.id, None)
        if self.store is not None:
            self.store.append_resolved(job.id, job.state,
                                       result=job.result, error=job.error)
        self._metrics.counter(f"completed.{job.state}").inc()
        self._update_work_gauges()
        if self.telemetry.enabled:
            record = {"id": job.id, "kind": job.spec.kind,
                      "state": job.state, "attempts": job.attempts}
            if job.error:
                record["error"] = job.error
            self.telemetry.events.emit("job.finished", **record)
        with self._idle:
            self._idle.notify_all()

    # -- liveness -------------------------------------------------------

    def _reaper_loop(self) -> None:
        interval = max(0.05, min(self.node_timeout,
                                 self.lease_timeout) / 4.0)
        while not self._stop_loop.wait(interval):
            for info in self.nodes.expire(self.node_timeout):
                released = self.work.release_node(info.id)
                self._metrics.counter("nodes_lost").inc()
                if self.telemetry.enabled:
                    self.telemetry.events.emit(
                        "node.lost", id=info.id, name=info.name,
                        requeued=len(released))
                self._after_requeue(released)
            expired = self.work.expire(self.lease_timeout)
            if expired:
                self._metrics.counter("leases_expired").inc(len(expired))
                self._after_requeue(expired)

    def _after_requeue(self, items) -> None:
        """Account re-queues; exhausted items may finalize their job."""
        self._update_work_gauges()
        for item in items:
            if item.state == WORK_FAILED:
                self._finalize_feed.put(item.job_id)
            elif self.telemetry.enabled:
                self.telemetry.events.emit(
                    "work.requeued", id=item.id, job_id=item.job_id,
                    attempts=item.attempts, reason=item.error or "")

    def _update_work_gauges(self) -> None:
        counts = self.work.counts()
        self._metrics.gauge("work_pending").set(counts["pending"])
        self._metrics.gauge("work_leased").set(counts["leased"])
        self._metrics.gauge("nodes").set(len(self.nodes))

    # -- stats ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Serve-compatible stats plus a ``cluster`` section."""
        tally = {state: 0 for state in STATES}
        for job in list(self.jobs.values()):
            tally[job.state] += 1
        node_rows = self.nodes.rows()
        counts = self.work.counts()
        return {
            "workers": sum(row["capacity"] for row in node_rows),
            "mode": "cluster",
            "accepting": self._accepting,
            "queue_depth": self.queue.depth(),
            "queue_limit": self.queue.limit,
            "running": counts["leased"],
            "jobs": tally,
            "events": self.telemetry.events.stats(),
            "cluster": {
                "nodes": node_rows,
                "work": counts,
                "work_completed": self.work.completed_total,
                "work_requeued": self.work.requeued_total,
                "nodes_lost": self.nodes.lost_total,
                "lease_timeout": self.lease_timeout,
                "node_timeout": self.node_timeout,
                "tenants": self.quotas.active(),
            },
        }

    # -- node protocol handlers -----------------------------------------

    def _register_node(self, body: dict) -> dict:
        info = self.nodes.register(name=body.get("name"),
                                   capacity=int(body.get("capacity", 1)))
        self._update_work_gauges()
        if self.telemetry.enabled:
            self.telemetry.events.emit("node.registered", id=info.id,
                                       name=info.name,
                                       capacity=info.capacity)
        return {"id": info.id, "name": info.name,
                "heartbeat_interval": self.heartbeat_interval,
                "lease_timeout": self.lease_timeout}

    def _node_heartbeat(self, node_id: str, body: dict) -> Optional[dict]:
        stats = body.get("stats")
        if not self.nodes.heartbeat(
                node_id, stats if isinstance(stats, dict) else None):
            return None
        self.work.renew(node_id)
        return {"id": node_id, "ok": True,
                "drain": self._node_drain.is_set()}

    def _node_lease(self, node_id: str, body: dict) -> Optional[dict]:
        info = self.nodes.get(node_id)
        if info is None:
            return None
        self.nodes.heartbeat(node_id)
        if self._node_drain.is_set() or info.draining:
            return {"work": [], "drain": True}
        max_items = max(1, int(body.get("max_items", 1)))
        leased = self.work.lease(node_id, max_items=max_items)
        self._update_work_gauges()
        return {"work": [item.wire_dict() for item in leased],
                "drain": False}

    def _complete_work(self, item_id: str, body: dict) -> Optional[dict]:
        error = body.get("error")
        if error is not None:
            item = self.work.fail(item_id, str(error),
                                  retryable=bool(body.get("retryable",
                                                          True)))
        else:
            result = body.get("result")
            if not isinstance(result, dict):
                raise ValueError("complete body needs a 'result' object "
                                 "or an 'error' string")
            item = self.work.complete(item_id, result)
            if item is not None:
                self._metrics.counter("work_completed").inc()
        if item is None:
            known = self.work.get(item_id)
            if known is None:
                return None
            return {"id": item_id, "state": known.state, "stale": True}
        self._update_work_gauges()
        if error is not None:
            self._after_requeue([item])
        # Statically-sharded jobs finalize off the event loop.
        if item.state in (WORK_DONE, WORK_FAILED):
            self._finalize_feed.put(item.job_id)
        return {"id": item_id, "state": item.state, "stale": False}

    # -- HTTP router -----------------------------------------------------

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: Optional[dict]) -> tuple:
        """The frontend router; mirrors :mod:`repro.serve.api` routes."""
        body = body or {}
        route = tuple(part for part in path.strip("/").split("/") if part)
        try:
            if method == "GET":
                return self._route_get(route, query)
            if method == "POST":
                return self._route_post(route, body)
        except (ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        return 405, {"error": f"method {method} not allowed"}

    def _route_get(self, route: tuple, query: Dict[str, str]) -> tuple:
        if route == ("metrics",):
            from ..telemetry.prometheus import (CONTENT_TYPE,
                                                render_prometheus)

            counts = self.work.counts()
            extra = {
                "repro_cluster_nodes_live": len(self.nodes),
                "repro_cluster_work_pending_live": counts["pending"],
                "repro_cluster_work_leased_live": counts["leased"],
                "repro_cluster_work_done_live": counts["done"],
                "repro_cluster_queue_depth_live": self.queue.depth(),
            }
            # Aggregate node-reported execution counters so one scrape
            # of the coordinator sees the whole cluster's throughput.
            executed = failed = 0
            for row in self.nodes.rows():
                stats = row.get("stats") or {}
                executed += int(stats.get("executed", 0) or 0)
                failed += int(stats.get("failed", 0) or 0)
            extra["repro_cluster_node_executed_total"] = executed
            extra["repro_cluster_node_failed_total"] = failed
            text = render_prometheus(self.telemetry.metrics.to_dict(),
                                     extra_gauges=extra)
            return 200, text, {"Content-Type": CONTENT_TYPE}
        if route == ("v1", "events"):
            since = int(query.get("since", "0"))
            return 200, self.telemetry.events.tail(since)
        if route == ("v1", "fuzz", "frontier"):
            from ..observe.frontier import frontier_from_events

            events = list(self.telemetry.events)
            return 200, frontier_from_events(events)
        if route == ("v1", "health"):
            stats = self.stats()
            status = "ok" if stats["accepting"] else "draining"
            return 200, {"status": status, **stats}
        if route == ("v1", "stats"):
            return 200, {"service": self.stats(),
                         "metrics": self.telemetry.metrics.to_dict()}
        if route == ("v1", "kinds"):
            from ..serve.executors import job_kinds

            return 200, {"kinds": job_kinds()}
        if route == ("v1", "cluster", "nodes"):
            return 200, {"nodes": self.nodes.rows(),
                         "total": len(self.nodes)}
        if route == ("v1", "cluster", "work"):
            counts = self.work.counts()
            return 200, {"counts": counts,
                         "completed_total": self.work.completed_total,
                         "requeued_total": self.work.requeued_total}
        if route == ("v1", "jobs"):
            state = query.get("state")
            jobs = [job.to_dict() for job in list(self.jobs.values())
                    if state is None or job.state == state]
            return 200, {"jobs": jobs, "total": len(jobs)}
        if len(route) == 3 and route[:2] == ("v1", "jobs"):
            job = self.get_job(route[2])
            if job is None:
                return 404, {"error": f"no such job: {route[2]}"}
            return 200, job.to_dict()
        if len(route) == 4 and route[:2] == ("v1", "jobs") \
                and route[3] == "result":
            job = self.get_job(route[2])
            if job is None:
                return 404, {"error": f"no such job: {route[2]}"}
            if not job.done:
                return (409, {"error": f"job {job.id} is {job.state}; "
                              "result not available yet"},
                        {"Retry-After": "1"})
            return 200, job.to_dict(with_result=True)
        if len(route) == 4 and route[:2] == ("v1", "jobs") \
                and route[3] == "events":
            job = self.get_job(route[2])
            if job is None:
                return 404, {"error": f"no such job: {route[2]}"}
            return 200, {"id": job.id, "state": job.state,
                         "traced": job.spec.trace is not None,
                         "events": list(job.trace_events)}
        return 404, {"error": f"unknown endpoint: /{'/'.join(route)}"}

    def _route_post(self, route: tuple, body: dict) -> tuple:
        if route == ("v1", "jobs"):
            try:
                spec = JobSpec.from_dict(body)
                job = self.submit(spec)
            except QueueFull as exc:
                return 429, {"error": str(exc)}, {"Retry-After": "1"}
            except QuotaExceeded as exc:
                self._metrics.counter("quota_rejected").inc()
                return 429, {"error": str(exc)}, {"Retry-After": "2"}
            except ServiceClosed as exc:
                return 503, {"error": str(exc)}
            except (ExecutorError, ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            return 202, job.to_dict()
        if len(route) == 4 and route[:2] == ("v1", "jobs") \
                and route[3] == "cancel":
            job = self.get_job(route[2])
            if job is None:
                return 404, {"error": f"no such job: {route[2]}"}
            changed = self.cancel(job.id)
            return 200, {"id": job.id, "cancelled": changed,
                         "state": job.state}
        if route == ("v1", "shutdown"):
            drain = bool(body.get("drain", True))

            def stop():
                self.shutdown(drain=drain)

            threading.Thread(target=stop, daemon=True).start()
            return 202, {"status": "shutting down", "drain": drain}
        if route == ("v1", "nodes", "register"):
            return 200, self._register_node(body)
        if len(route) == 4 and route[:2] == ("v1", "nodes"):
            node_id, action = route[2], route[3]
            if action == "heartbeat":
                reply = self._node_heartbeat(node_id, body)
            elif action == "lease":
                reply = self._node_lease(node_id, body)
            elif action == "drain":
                reply = ({"id": node_id, "draining": True}
                         if self.nodes.set_draining(node_id) else None)
            else:
                return 404, {"error": f"unknown node action: {action}"}
            if reply is None:
                return 404, {"error": f"unknown node: {node_id}"}
            return 200, reply
        if len(route) == 4 and route[:2] == ("v1", "work") \
                and route[3] == "complete":
            reply = self._complete_work(route[2], body)
            if reply is None:
                return 404, {"error": f"unknown work item: {route[2]}"}
            return 200, reply
        return 404, {"error": f"unknown endpoint: /{'/'.join(route)}"}
