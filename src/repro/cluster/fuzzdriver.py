"""Distributed fuzzing: the engine loop on the coordinator, batch
evaluation on the nodes.

Fuzzing is feedback-driven — each batch's mutants depend on the corpus
built from every earlier batch — so the *loop* cannot shard.  What can
is batch evaluation: PR 5's engine already draws a whole batch before
folding any result back, and executions are independent (each node's
evaluator restores a pristine snapshot between inputs).  So the
coordinator runs a :class:`DistributedFuzzEngine` — a stock
:class:`~repro.fuzz.engine.FuzzEngine` whose ``_evaluate_batch`` ships
the batch to the cluster as ``fuzz_eval`` work items, one per shard,
and restores submission order before the corpus sees anything.

Determinism contract: the corpus trajectory is a pure function of
``(seeds, seed, iterations)`` exactly as in-process, because the only
thing that changed is *where* the pure evaluations ran.  Minimization
and the lockstep oracle evaluate single inputs on the coordinator's own
evaluator — deterministic, so identical to node-side evaluation, and
free of per-input network round trips.  ``FuzzResult.jobs`` stays 1 so
the result envelope matches a ``jobs=1`` single-process run.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..fuzz.engine import FuzzConfig, FuzzEngine
from ..fuzz.executor import EvalResult
from ..isa.decoder import IsaConfig
from ..serve.executors import shard_bounds

__all__ = ["DistributedFuzzEngine", "split_batch"]

#: Evaluates one list of word-lists remotely, preserving order.
BatchEvaluator = Callable[[List[Tuple[int, ...]]], List[EvalResult]]


def split_batch(batch: List[Tuple[int, ...]], shard_count: int
                ) -> List[Tuple[int, List[Tuple[int, ...]]]]:
    """Contiguous ``(shard_index, inputs)`` chunks of one batch.

    Uses the same balanced :func:`~repro.serve.executors.shard_bounds`
    split as campaign sharding; empty chunks are dropped (small final
    batches may not fill every shard).
    """
    chunks = []
    for index in range(shard_count):
        lo, hi = shard_bounds(len(batch), shard_count, index)
        if hi > lo:
            chunks.append((index, batch[lo:hi]))
    return chunks


class DistributedFuzzEngine(FuzzEngine):
    """A fuzz engine whose batch evaluations run on cluster nodes."""

    def __init__(self, isa: IsaConfig, config: FuzzConfig,
                 evaluate_remote: BatchEvaluator,
                 telemetry=None) -> None:
        super().__init__(isa, config, telemetry=telemetry)
        self._evaluate_remote = evaluate_remote

    def _start_pool(self) -> None:
        # The cluster is the pool.  ``_jobs`` stays 1 so the result
        # envelope (``FuzzResult.jobs``) is byte-identical to the
        # single-process ``jobs=1`` reference run.
        self._jobs = 1
        self._pool = None

    def _evaluate_batch(self, batch: List[Tuple[int, ...]]
                        ) -> List[EvalResult]:
        if len(batch) <= 1:
            # Single evaluations (and 1-input batches) run locally —
            # deterministic, so identical to a node-side run, without a
            # network round trip.
            return [self._evaluate_one(words) for words in batch]
        results = self._evaluate_remote(list(batch))
        if len(results) != len(batch):
            raise RuntimeError(
                f"remote batch returned {len(results)} results for "
                f"{len(batch)} inputs")
        self.executions += len(batch)
        return results
