"""Client for the coordinator — the serve client plus the node protocol.

:class:`CoordinatorClient` extends
:class:`~repro.serve.client.ServiceClient`, so every client-facing call
(submit/status/result/stats/metrics) works against a coordinator exactly
as against ``repro serve`` — including transient-error retry and 429
``retry_after`` handling — and adds the node-side verbs worker nodes and
``repro cluster-status`` use.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..serve.client import ServiceClient

__all__ = ["CoordinatorClient"]


class CoordinatorClient(ServiceClient):
    """One coordinator endpoint, client- and node-facing."""

    # -- node lifecycle -------------------------------------------------

    def register_node(self, name: Optional[str] = None,
                      capacity: int = 1) -> Dict[str, Any]:
        """Attach a node; returns ``{"id", "heartbeat_interval", ...}``."""
        body: Dict[str, Any] = {"capacity": capacity}
        if name is not None:
            body["name"] = name
        return self._request("POST", "/v1/nodes/register", body)

    def node_heartbeat(self, node_id: str,
                       stats: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
        """Renew liveness (and the node's leases); 404 ⇒ re-register."""
        return self._request("POST", f"/v1/nodes/{node_id}/heartbeat",
                             {"stats": stats or {}})

    def lease(self, node_id: str, max_items: int = 1) -> Dict[str, Any]:
        """Pull work: ``{"work": [...], "drain": bool}``."""
        return self._request("POST", f"/v1/nodes/{node_id}/lease",
                             {"max_items": max_items})

    def complete_work(self, item_id: str,
                      result: Optional[Dict[str, Any]] = None,
                      error: Optional[str] = None,
                      retryable: bool = True) -> Dict[str, Any]:
        """Report one work item's outcome."""
        if error is not None:
            body: Dict[str, Any] = {"error": error, "retryable": retryable}
        else:
            body = {"result": result if result is not None else {}}
        return self._request("POST", f"/v1/work/{item_id}/complete", body)

    def drain_node(self, node_id: str) -> Dict[str, Any]:
        """Ask one node to stop pulling after its current item."""
        return self._request("POST", f"/v1/nodes/{node_id}/drain", {})

    # -- cluster inspection ---------------------------------------------

    def nodes(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/cluster/nodes")["nodes"]

    def cluster_work(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/cluster/work")
