"""The telemetry session: one metrics registry + one event log.

Library code never constructs telemetry itself; it takes an optional
``telemetry`` argument and resolves ``None`` through
:func:`current_telemetry`, which defaults to the shared disabled session.
The CLI (``--stats`` / ``--trace-out`` / ``--events-out``) installs an
enabled session for the duration of a command.

Disabled telemetry is designed to be unmeasurable: the null session's
registry and event log are allocation-free no-ops, and hot loops gate on
``telemetry.enabled`` (a plain class attribute) before doing any work.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .events import EventLog, NULL_EVENT_LOG
from .metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current_telemetry",
    "set_telemetry",
    "telemetry_session",
    "thread_telemetry_session",
    "resolve",
]


class Telemetry:
    """An enabled telemetry session."""

    enabled = True

    def __init__(self, metrics: MetricsRegistry = None,
                 events: EventLog = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()

    def snapshot_metrics(self) -> dict:
        """Emit (and return) a ``metrics.snapshot`` event of all metrics.

        Embedding the snapshot in the event stream makes a saved JSONL log
        self-contained: ``python -m repro stats`` re-renders the metrics
        table without the original process.  Event-ring overflow is folded
        in as ``telemetry.events.*`` so dropped records stay visible in
        ``repro stats`` and ``/metrics`` after the fact.
        """
        log_stats = self.events.stats()
        if log_stats.get("dropped_events"):
            dropped = self.metrics.counter("telemetry.events.dropped")
            dropped.value = log_stats["dropped_events"]
            self.metrics.gauge("telemetry.events.overflowed").set(1)
        snap = self.metrics.to_dict()
        self.events.emit("metrics.snapshot", metrics=snap)
        return snap


class NullTelemetry:
    """The disabled session (shared singleton :data:`NULL_TELEMETRY`)."""

    enabled = False
    metrics = NULL_REGISTRY
    events = NULL_EVENT_LOG

    def snapshot_metrics(self) -> dict:
        return {}


#: Shared disabled session — the default for every library entry point.
NULL_TELEMETRY = NullTelemetry()

_current = NULL_TELEMETRY

#: Per-thread session override (see :func:`thread_telemetry_session`).
_tls = threading.local()


def current_telemetry():
    """The session installed for this thread or process (default: disabled).

    A thread-local override (installed by
    :func:`thread_telemetry_session`) wins over the process-wide session
    — that is how the batch service collects one job's events on a
    worker thread without capturing its siblings' output.
    """
    session = getattr(_tls, "session", None)
    return session if session is not None else _current


def set_telemetry(telemetry) -> None:
    """Install ``telemetry`` as the process-wide session (None disables)."""
    global _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY


def resolve(telemetry):
    """Resolve an optional ``telemetry`` argument to a usable session."""
    return telemetry if telemetry is not None else current_telemetry()


@contextmanager
def telemetry_session(telemetry=None):
    """Temporarily install a session (creates an enabled one by default)."""
    session = telemetry if telemetry is not None else Telemetry()
    previous = _current
    set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)


@contextmanager
def thread_telemetry_session(telemetry=None):
    """Install a session for the *current thread* only.

    Library code resolving ``None`` through :func:`current_telemetry`
    sees this session for the duration of the block; other threads keep
    whatever they had.  The batch service wraps each traced job
    execution in one of these to collect the job's events in isolation.
    """
    session = telemetry if telemetry is not None else Telemetry()
    previous = getattr(_tls, "session", None)
    _tls.session = session
    try:
        yield session
    finally:
        _tls.session = previous
