"""Structured event log: typed records with monotonic timestamps.

Every record is a flat JSON-serializable dict with at least:

* ``type`` — dotted event type (``run.started``, ``mutant.classified``),
* ``ts_us`` — microseconds since the log was opened (monotonic clock),

plus arbitrary type-specific fields.  Duration events (``span``) carry a
``dur_us`` field; the Chrome-trace exporter turns those into complete
("X") slices.  Logs serialize to JSON Lines so long campaigns can be
streamed to disk and re-rendered later (``python -m repro stats``).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["EventLog", "NullEventLog", "NULL_EVENT_LOG"]


class _Span:
    """Context manager emitting one duration event on exit."""

    __slots__ = ("_log", "_type", "_fields", "_start")

    def __init__(self, log: "EventLog", event_type: str, fields: dict) -> None:
        self._log = log
        self._type = event_type
        self._fields = fields
        self._start = None

    def __enter__(self) -> "_Span":
        self._start = self._log._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._log._now_us()
        self._log._append({
            "type": self._type,
            "ts_us": self._start,
            "dur_us": end - self._start,
            **self._fields,
        })


class EventLog:
    """An append-only in-memory event log with JSONL import/export."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self.events: List[Dict] = []

    # -- recording -----------------------------------------------------

    def _now_us(self) -> int:
        return int((self._clock() - self._t0) * 1_000_000)

    def _append(self, record: Dict) -> Dict:
        self.events.append(record)
        return record

    def emit(self, event_type: str, **fields) -> Dict:
        """Append an instantaneous event and return the record."""
        return self._append({"type": event_type, "ts_us": self._now_us(),
                             **fields})

    def span(self, event_type: str, **fields) -> _Span:
        """Context manager: records ``event_type`` with start + duration."""
        return _Span(self, event_type, fields)

    # -- querying ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.events)

    def of_type(self, event_type: str) -> List[Dict]:
        return [e for e in self.events if e.get("type") == event_type]

    def last(self, event_type: str) -> Optional[Dict]:
        for event in reversed(self.events):
            if event.get("type") == event_type:
                return event
        return None

    # -- serialization -------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def save_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")

    @staticmethod
    def parse_jsonl(lines: Iterable[str]) -> List[Dict]:
        records = []
        for line in lines:
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records

    @classmethod
    def load_jsonl(cls, path: str) -> "EventLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            log.events = cls.parse_jsonl(handle)
        return log


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class NullEventLog:
    """Disabled event log: emits vanish, spans are free."""

    enabled = False
    events: List[Dict] = []

    def emit(self, event_type: str, **fields) -> None:
        return None

    def span(self, event_type: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Dict]:
        return iter(())

    def of_type(self, event_type: str) -> List[Dict]:
        return []

    def last(self, event_type: str) -> None:
        return None

    def to_jsonl(self) -> str:
        return ""


#: Shared disabled event log.
NULL_EVENT_LOG = NullEventLog()
