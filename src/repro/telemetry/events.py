"""Structured event log: typed records with monotonic timestamps.

Every record is a flat JSON-serializable dict with at least:

* ``type`` — dotted event type (``run.started``, ``mutant.classified``),
* ``ts_us`` — microseconds since the log was opened (monotonic clock),

plus arbitrary type-specific fields.  Duration events (``span``) carry a
``dur_us`` field; the Chrome-trace exporter turns those into complete
("X") slices.  Logs serialize to JSON Lines so long campaigns can be
streamed to disk and re-rendered later (``python -m repro stats``).

The log is a **bounded ring**: once ``max_events`` records accumulate, the
oldest chunk is evicted and counted in ``dropped_events`` (with the
``overflowed`` flag latched), so silent event loss under long fuzz/serve
runs is visible in ``repro stats`` and ``/metrics`` instead of silently
shifting the data.  Every record also has a stable sequence number
(``total_appended`` counts all appends ever), which is what the service's
``GET /v1/events?since=`` incremental tailing cursors over.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["EventLog", "NullEventLog", "NULL_EVENT_LOG",
           "DEFAULT_MAX_EVENTS"]

#: Default ring capacity.  Generous for interactive runs; long-running
#: services overflow instead of growing without bound.
DEFAULT_MAX_EVENTS = 200_000


class _Span:
    """Context manager emitting one duration event on exit."""

    __slots__ = ("_log", "_type", "_fields", "_start")

    def __init__(self, log: "EventLog", event_type: str, fields: dict) -> None:
        self._log = log
        self._type = event_type
        self._fields = fields
        self._start = None

    def __enter__(self) -> "_Span":
        self._start = self._log._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._log._now_us()
        self._log._append({
            "type": self._type,
            "ts_us": self._start,
            "dur_us": end - self._start,
            **self._fields,
        })


class EventLog:
    """An append-only in-memory event ring with JSONL import/export."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 max_events: Optional[int] = DEFAULT_MAX_EVENTS) -> None:
        self._clock = clock
        self._t0 = clock()
        self.events: List[Dict] = []
        #: Ring capacity (``None``/``0`` = unbounded).
        self.max_events = max_events or None
        #: Records evicted from the front of the ring.
        self.dropped_events = 0
        #: Latched once the first record was dropped.
        self.overflowed = False
        #: All records ever appended (== seq of the next record).
        self.total_appended = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    @property
    def origin(self) -> float:
        """The clock reading ``ts_us`` is measured from (monotonic)."""
        return self._t0

    def _now_us(self) -> int:
        return int((self._clock() - self._t0) * 1_000_000)

    def _append(self, record: Dict) -> Dict:
        with self._lock:
            self.events.append(record)
            self.total_appended += 1
            limit = self.max_events
            if limit is not None and len(self.events) > limit:
                # Evict ~10% in one slice so appends stay amortized O(1)
                # (del events[0] per append would be quadratic).
                chunk = max(1, limit // 10)
                del self.events[:chunk]
                self.dropped_events += chunk
                self.overflowed = True
        return record

    def emit(self, event_type: str, **fields) -> Dict:
        """Append an instantaneous event and return the record."""
        return self._append({"type": event_type, "ts_us": self._now_us(),
                             **fields})

    def span(self, event_type: str, **fields) -> _Span:
        """Context manager: records ``event_type`` with start + duration."""
        return _Span(self, event_type, fields)

    def extend(self, records: Iterable[Dict]) -> None:
        """Append pre-built records (merged worker events) through the
        same ring accounting as :meth:`emit`."""
        for record in records:
            self._append(record)

    # -- querying ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.events)

    def of_type(self, event_type: str) -> List[Dict]:
        return [e for e in self.events if e.get("type") == event_type]

    def last(self, event_type: str) -> Optional[Dict]:
        for event in reversed(self.events):
            if event.get("type") == event_type:
                return event
        return None

    def stats(self) -> Dict:
        """Ring accounting: totals, drops, and the overflow flag."""
        with self._lock:
            return {
                "events": len(self.events),
                "total_appended": self.total_appended,
                "dropped_events": self.dropped_events,
                "overflowed": self.overflowed,
                "max_events": self.max_events,
            }

    def tail(self, since: int = 0) -> Dict:
        """Incremental read: records with sequence number >= ``since``.

        Sequence numbers count every record ever appended (0-based), so a
        client polling ``tail(cursor)["next"]`` back as the next ``since``
        sees each record exactly once and can detect loss: ``missed`` is
        how many requested records were already evicted from the ring.
        """
        if since < 0:
            raise ValueError(f"since must be >= 0, got {since}")
        with self._lock:
            first = self.total_appended - len(self.events)
            missed = max(0, min(first, self.total_appended) - since)
            start = max(0, since - first)
            batch = list(self.events[start:])
            return {
                "events": batch,
                "next": self.total_appended,
                "missed": missed,
                "dropped_events": self.dropped_events,
                "overflowed": self.overflowed,
            }

    # -- serialization -------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def save_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for event in list(self.events):
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")

    @staticmethod
    def parse_jsonl(lines: Iterable[str]) -> List[Dict]:
        records = []
        for line in lines:
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records

    @classmethod
    def load_jsonl(cls, path: str) -> "EventLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            log.events = cls.parse_jsonl(handle)
        log.total_appended = len(log.events)
        return log


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class NullEventLog:
    """Disabled event log: emits vanish, spans are free."""

    enabled = False
    events: List[Dict] = []
    max_events = None
    dropped_events = 0
    overflowed = False
    total_appended = 0

    def emit(self, event_type: str, **fields) -> None:
        return None

    def span(self, event_type: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def extend(self, records: Iterable[Dict]) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Dict]:
        return iter(())

    def of_type(self, event_type: str) -> List[Dict]:
        return []

    def last(self, event_type: str) -> None:
        return None

    def stats(self) -> Dict:
        return {"events": 0, "total_appended": 0, "dropped_events": 0,
                "overflowed": False, "max_events": None}

    def tail(self, since: int = 0) -> Dict:
        return {"events": [], "next": 0, "missed": 0,
                "dropped_events": 0, "overflowed": False}

    def to_jsonl(self) -> str:
        return ""


#: Shared disabled event log.
NULL_EVENT_LOG = NullEventLog()
