"""Unified telemetry: metrics registry, event log, Chrome-trace export.

The observability layer shared by every execution engine in the
reproduction — the VP, fault campaigns, QTA co-simulation, and the
coverage collector.  Three pieces:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms, and context-manager timers in a hierarchically named
  registry (``vp.cpu.insns_retired``, ``faultsim.campaign.mutants_done``),
* :mod:`repro.telemetry.events` — a structured event log of typed JSONL
  records with monotonic timestamps,
* :mod:`repro.telemetry.chrome_trace` — an exporter to Chrome
  trace-event format (``chrome://tracing`` / Perfetto).

Telemetry is **off by default** and free when off: the null session's
instruments are shared no-op singletons, and instrumented hot paths gate
on ``telemetry.enabled``.  Enable per call (pass a :class:`Telemetry`) or
process-wide (:func:`set_telemetry` / the CLI's ``--stats`` flag).
"""

from .chrome_trace import export_chrome_trace, to_chrome_trace
from .events import EventLog, NullEventLog, NULL_EVENT_LOG
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_REGISTRY,
    Timer,
)
from .plugin import TelemetryPlugin
from .prometheus import parse_prometheus, render_prometheus
from .render import (
    render_campaigns,
    render_event_counts,
    render_metrics,
    render_report,
    render_runs,
)
from .session import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    resolve,
    set_telemetry,
    telemetry_session,
    thread_telemetry_session,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullTelemetry",
    "Telemetry",
    "TelemetryPlugin",
    "Timer",
    "current_telemetry",
    "export_chrome_trace",
    "parse_prometheus",
    "render_campaigns",
    "render_event_counts",
    "render_metrics",
    "render_prometheus",
    "render_report",
    "render_runs",
    "resolve",
    "set_telemetry",
    "telemetry_session",
    "thread_telemetry_session",
    "to_chrome_trace",
]
