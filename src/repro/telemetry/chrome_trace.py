"""Export an event log to Chrome trace-event format.

The output is the JSON *array* flavour of the trace-event spec, loadable
by ``chrome://tracing`` and Perfetto (ui.perfetto.dev).  Mapping:

* events with ``dur_us`` -> complete slices (``ph: "X"``),
* ``*.progress`` events with a ``done`` field -> counter samples
  (``ph: "C"``) so campaign progress renders as a ramp,
* everything else -> instant events (``ph: "i"``).

Tracks: the event type's first dotted component becomes the thread name
(one lane per subsystem: ``run``, ``campaign``, ``mutant``, ``qta``, ...)
via trace metadata records.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

__all__ = ["to_chrome_trace", "export_chrome_trace"]

#: Synthetic process id for the whole session (one VP process).
TRACE_PID = 1

_RESERVED = {"type", "ts_us", "dur_us"}


def _lane(event_type: str) -> str:
    return event_type.split(".", 1)[0]


def _args(event: Dict) -> Dict:
    return {k: v for k, v in event.items() if k not in _RESERVED}


def to_chrome_trace(events: Iterable[Dict],
                    process_name: str = "repro") -> List[Dict]:
    """Convert event-log records into a list of Chrome trace events."""
    lanes: Dict[str, int] = {}
    trace: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": TRACE_PID,
        "tid": 0,
        "ts": 0,
        "args": {"name": process_name},
    }]

    def tid_for(lane: str) -> int:
        tid = lanes.get(lane)
        if tid is None:
            tid = len(lanes) + 1
            lanes[lane] = tid
            trace.append({
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": lane},
            })
        return tid

    for event in events:
        event_type = event.get("type", "event")
        ts = event.get("ts_us", 0)
        tid = tid_for(_lane(event_type))
        if "dur_us" in event:
            trace.append({
                "name": event_type,
                "ph": "X",
                "ts": ts,
                "dur": event["dur_us"],
                "pid": TRACE_PID,
                "tid": tid,
                "args": _args(event),
            })
        elif event_type.endswith(".progress") and "done" in event:
            trace.append({
                "name": event_type,
                "ph": "C",
                "ts": ts,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"done": event["done"]},
            })
        else:
            trace.append({
                "name": event_type,
                "ph": "i",
                "ts": ts,
                "pid": TRACE_PID,
                "tid": tid,
                "s": "t",  # thread-scoped instant
                "args": _args(event),
            })
    return trace


def export_chrome_trace(events: Iterable[Dict], path: str,
                        process_name: str = "repro") -> None:
    """Write the Chrome-trace JSON array for ``events`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events, process_name=process_name),
                  handle, indent=1)
