"""Export an event log to Chrome trace-event format.

The output is the JSON *array* flavour of the trace-event spec, loadable
by ``chrome://tracing`` and Perfetto (ui.perfetto.dev).  Mapping:

* events with ``dur_us`` -> complete slices (``ph: "X"``),
* ``*.progress`` events with a ``done`` field -> counter samples
  (``ph: "C"``) so campaign progress renders as a ramp,
* everything else -> instant events (``ph: "i"``).

Tracks: the event type's first dotted component becomes the thread name
(one lane per subsystem: ``run``, ``campaign``, ``mutant``, ``qta``, ...)
via trace metadata records.  Events that carry a ``pid`` field — worker
events merged back into a service log by the batch service — are placed
on that process's own row (with a ``process_name`` metadata record per
distinct pid), so a campaign fanned out over a process pool renders as
one timeline with a lane per worker instead of interleaving everything
onto a single synthetic process.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

__all__ = ["to_chrome_trace", "export_chrome_trace"]

#: Synthetic process id for the session itself (events without a pid).
TRACE_PID = 1

_RESERVED = {"type", "ts_us", "dur_us"}


def _lane(event_type: str) -> str:
    return event_type.split(".", 1)[0]


def _args(event: Dict) -> Dict:
    return {k: v for k, v in event.items() if k not in _RESERVED}


def to_chrome_trace(events: Iterable[Dict],
                    process_name: str = "repro") -> List[Dict]:
    """Convert event-log records into a list of Chrome trace events."""
    lanes: Dict[Tuple[int, str], int] = {}
    pids: Dict[int, str] = {}
    trace: List[Dict] = []

    def pid_for(event: Dict) -> int:
        pid = event.get("pid", TRACE_PID)
        if not isinstance(pid, int):
            pid = TRACE_PID
        if pid not in pids:
            name = (process_name if pid == TRACE_PID
                    else f"{process_name} worker pid {pid}")
            pids[pid] = name
            trace.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": name},
            })
        return pid

    def tid_for(pid: int, lane: str) -> int:
        key = (pid, lane)
        tid = lanes.get(key)
        if tid is None:
            tid = sum(1 for existing, _ in lanes if existing == pid) + 1
            lanes[key] = tid
            trace.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": lane},
            })
        return tid

    for event in events:
        event_type = event.get("type", "event")
        ts = event.get("ts_us", 0)
        pid = pid_for(event)
        tid = tid_for(pid, _lane(event_type))
        if "dur_us" in event:
            trace.append({
                "name": event_type,
                "ph": "X",
                "ts": ts,
                "dur": event["dur_us"],
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })
        elif event_type.endswith(".progress") and "done" in event:
            trace.append({
                "name": event_type,
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": {"done": event["done"]},
            })
        else:
            trace.append({
                "name": event_type,
                "ph": "i",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "s": "t",  # thread-scoped instant
                "args": _args(event),
            })
    return trace


def export_chrome_trace(events: Iterable[Dict], path: str,
                        process_name: str = "repro") -> None:
    """Write the Chrome-trace JSON array for ``events`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events, process_name=process_name),
                  handle, indent=1)
