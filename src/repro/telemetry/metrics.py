"""Metrics primitives: counters, gauges, histograms, timers, registry.

The registry is hierarchical by dotted name (``vp.cpu.insns_retired``,
``faultsim.campaign.mutants_done``) and hands out *memoized* instrument
objects: asking twice for the same name returns the same counter, so
instrumented code can look instruments up at attach time and update plain
attributes on the hot path.

Every instrument has a no-op twin (:class:`NullCounter`, ...) returned by
:class:`NullMetricsRegistry` — the shared singletons make disabled
telemetry free: call sites keep calling ``inc()``/``observe()`` on objects
whose methods do nothing, and hot loops can skip even that by testing
``registry.enabled`` once up front.

No third-party dependencies; histograms use fixed bucket upper bounds.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets for durations in seconds (1 us .. 100 s).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

#: Default buckets for generic magnitudes (memory widths, block sizes, ...).
DEFAULT_VALUE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 65536,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum",
                 "min", "max")

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_VALUE_BUCKETS) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from bucket counts.

        Linear interpolation inside the bucket holding the target rank —
        the same estimate Prometheus's ``histogram_quantile`` computes —
        clamped to the observed ``[min, max]`` so a wide bucket cannot
        report a value outside what was actually seen.  The overflow
        bucket interpolates between its lower bound and ``max``.
        Returns ``None`` on an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        bounds = self.buckets + (self.max if self.max is not None else 0.0,)
        for upper, in_bucket in zip(bounds, self.bucket_counts):
            if in_bucket:
                if cumulative + in_bucket >= target:
                    fraction = (target - cumulative) / in_bucket
                    estimate = lower + (max(upper, lower) - lower) * fraction
                    break
                cumulative += in_bucket
            lower = max(lower, upper)
        else:  # pragma: no cover - count>0 guarantees a break
            estimate = lower
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def percentiles(self) -> dict:
        """The standard reporting quantiles (``p50``/``p90``/``p99``)."""
        return {"p50": self.percentile(0.50),
                "p90": self.percentile(0.90),
                "p99": self.percentile(0.99)}

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            **self.percentiles(),
            "buckets": {
                (f"le_{bound:g}" if i < len(self.buckets) else "inf"): n
                for i, (bound, n) in enumerate(
                    zip(self.buckets + (float("inf"),), self.bucket_counts))
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class Timer:
    """Context-manager stopwatch feeding a duration histogram.

    ::

        with registry.timer("faultsim.campaign.mutant_seconds"):
            run_one(fault)
    """

    __slots__ = ("name", "histogram", "_clock", "_start")

    kind = "timer"

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                 clock=time.perf_counter) -> None:
        self.name = name
        self.histogram = Histogram(name, buckets=buckets)
        self._clock = clock
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self._clock() - self._start
        self._start = None
        self.histogram.observe(elapsed)

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_seconds(self) -> float:
        return self.histogram.sum

    def snapshot(self) -> dict:
        snap = self.histogram.snapshot()
        snap["kind"] = self.kind
        return snap


class MetricsRegistry:
    """Memoizing, hierarchically named instrument store.

    ``namespace(prefix)`` returns a view whose instrument names are
    automatically prefixed — subsystems take a namespaced view and stay
    oblivious to where they sit in the global tree.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # -- instrument constructors --------------------------------------

    def _get(self, name: str, kind: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_VALUE_BUCKETS
                  ) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, buckets=buckets))

    def timer(self, name: str,
              buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Timer:
        return self._get(name, "timer",
                         lambda: Timer(name, buckets=buckets))

    def namespace(self, prefix: str) -> "NamespacedRegistry":
        return NamespacedRegistry(self, prefix)

    # -- introspection -------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._instruments.items()))

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str):
        return self._instruments.get(name)

    def to_dict(self) -> Dict[str, dict]:
        """Snapshot of every instrument, keyed by full dotted name."""
        return {name: instrument.snapshot()
                for name, instrument in self}


class NamespacedRegistry:
    """A prefixing view onto a :class:`MetricsRegistry`."""

    __slots__ = ("_parent", "_prefix")

    enabled = True

    def __init__(self, parent, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".")

    def _full(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._parent.counter(self._full(name))

    def gauge(self, name: str) -> Gauge:
        return self._parent.gauge(self._full(name))

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._parent.histogram(self._full(name), **kwargs)

    def timer(self, name: str, **kwargs) -> Timer:
        return self._parent.timer(self._full(name), **kwargs)

    def namespace(self, prefix: str) -> "NamespacedRegistry":
        return NamespacedRegistry(self._parent, self._full(prefix))


class _NullContext:
    """Context manager that does nothing (shared by null instruments)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class NullCounter(_NullContext):
    __slots__ = ()
    kind = "counter"
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": 0}


class NullGauge(_NullContext):
    __slots__ = ()
    kind = "gauge"
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": 0.0}


class NullHistogram(_NullContext):
    __slots__ = ()
    kind = "histogram"
    name = "null"
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def percentiles(self) -> dict:
        return {"p50": None, "p90": None, "p99": None}

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": 0}


class NullTimer(_NullContext):
    __slots__ = ()
    kind = "timer"
    name = "null"
    count = 0
    total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": 0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()
_NULL_TIMER = NullTimer()


class NullMetricsRegistry:
    """The disabled registry: every lookup returns a shared no-op object.

    ``enabled`` is ``False`` so hot loops can skip instrumentation with a
    single attribute test; everything else is allocation-free.
    """

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **kwargs) -> NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **kwargs) -> NullTimer:
        return _NULL_TIMER

    def namespace(self, prefix: str) -> "NullMetricsRegistry":
        return self

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str):
        return None

    def to_dict(self) -> Dict[str, dict]:
        return {}


#: Shared disabled registry — safe to hand to any instrumented code.
NULL_REGISTRY = NullMetricsRegistry()
