"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.to_dict`
snapshot into the text format every Prometheus-compatible scraper
ingests (version 0.0.4): counters become ``*_total``, histograms and
timers expose cumulative ``*_bucket{le="..."}`` series plus ``*_sum`` /
``*_count``, gauges stay plain.  Dotted instrument names are flattened
to the ``[a-zA-Z0-9_]`` charset (``serve.queue_depth`` →
``repro_serve_queue_depth``).

:func:`parse_prometheus` is the matching minimal parser — enough for
``repro top`` and the CI smoke checks to read a scrape back without any
third-party client library.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_prometheus", "parse_prometheus", "CONTENT_TYPE"]

#: The scrape Content-Type Prometheus servers advertise.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "repro_"


def _flat(name: str) -> str:
    flat = _NAME_RE.sub("_", name)
    if not flat or not (flat[0].isalpha() or flat[0] == "_"):
        flat = "_" + flat
    if flat.startswith(_PREFIX):
        return flat
    return _PREFIX + flat


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _bucket_bounds(buckets: Dict[str, int]) -> List[Tuple[float, int]]:
    """Decode snapshot bucket keys (``le_0.001`` / ``inf``) into sorted
    ``(upper_bound, count)`` pairs."""
    bounds = []
    for key, count in buckets.items():
        if key == "inf":
            bounds.append((math.inf, count))
        elif key.startswith("le_"):
            bounds.append((float(key[3:]), count))
    bounds.sort(key=lambda pair: pair[0])
    return bounds


def render_prometheus(snapshot: Dict[str, dict],
                      extra_gauges: Optional[Dict[str, float]] = None
                      ) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``extra_gauges`` lets callers append synthetic series (event-log
    drop counts, uptime) without registering instruments for them.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "gauge")
        flat = _flat(name)
        if kind == "counter":
            lines.append(f"# HELP {flat}_total {name}")
            lines.append(f"# TYPE {flat}_total counter")
            lines.append(f"{flat}_total {_fmt(entry.get('value', 0))}")
        elif kind in ("histogram", "timer"):
            lines.append(f"# HELP {flat} {name}")
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in _bucket_bounds(entry.get("buckets", {})):
                cumulative += count
                le = "+Inf" if math.isinf(bound) else _fmt(bound)
                lines.append(f'{flat}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{flat}_sum {_fmt(entry.get('sum', 0.0))}")
            lines.append(f"{flat}_count {_fmt(entry.get('count', 0))}")
        else:  # gauge (and anything unrecognized degrades to one)
            lines.append(f"# HELP {flat} {name}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_fmt(entry.get('value', 0))}")
    for name in sorted(extra_gauges or {}):
        flat = _flat(name)
        lines.append(f"# HELP {flat} {name}")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(extra_gauges[name])}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple, float]]:
    """Parse text exposition into ``{name: {label_items: value}}``.

    Label keys are sorted ``(key, value)`` tuples (``()`` for unlabelled
    samples).  Raises :class:`ValueError` on a line that is neither a
    comment nor a well-formed sample — which makes this parser double as
    the format validator the CI smoke job uses.
    """
    series: Dict[str, Dict[Tuple, float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno} is not Prometheus exposition: {line!r}")
        labels = tuple(sorted(
            (key, value.replace('\\"', '"'))
            for key, value in _LABEL_RE.findall(match.group("labels") or "")
        ))
        raw = match.group("value")
        if raw in ("+Inf", "Inf"):
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            value = float(raw)
        series.setdefault(match.group("name"), {})[labels] = value
    return series
