"""Render telemetry into the summary tables the CLI prints.

Works from plain data (an event list + a metrics snapshot dict), so the
same renderer serves both a live session (``--stats``) and a saved JSONL
event log (``python -m repro stats events.jsonl``) — logs embed a
``metrics.snapshot`` event precisely so they can be re-rendered offline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = [
    "render_metrics",
    "render_event_counts",
    "render_campaigns",
    "render_runs",
    "render_report",
]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.3f}"
    return str(value)


def _format_quantile(value) -> str:
    return f"{value:.4g}" if isinstance(value, (int, float)) else "-"


def render_metrics(snapshot: Dict[str, dict]) -> str:
    """Table of every instrument in a metrics snapshot.

    Histograms and timers report estimated percentiles (p50/p90/p99,
    interpolated from bucket counts) rather than raw bucket dumps.
    """
    if not snapshot:
        return "(no metrics recorded)"
    header = f"{'metric':<40} {'kind':<10} {'value':>40}"
    lines = [header, "-" * len(header)]
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "?")
        if kind in ("histogram", "timer"):
            value = (f"n={entry.get('count', 0)} "
                     f"mean={entry.get('mean', 0.0):.6g} "
                     f"p50={_format_quantile(entry.get('p50'))} "
                     f"p90={_format_quantile(entry.get('p90'))} "
                     f"p99={_format_quantile(entry.get('p99'))}")
            lines.append(f"{name:<40} {kind:<10} {value:>40}")
        else:
            lines.append(f"{name:<40} {kind:<10} "
                         f"{_format_value(entry.get('value', 0)):>40}")
    return "\n".join(lines)


def render_event_counts(events: Iterable[Dict]) -> str:
    """Events grouped by type with counts and the time span covered."""
    counts: Dict[str, int] = {}
    first_ts = last_ts = None
    for event in events:
        counts[event.get("type", "?")] = counts.get(event.get("type", "?"), 0) + 1
        ts = event.get("ts_us")
        if ts is not None:
            first_ts = ts if first_ts is None else min(first_ts, ts)
            end = ts + event.get("dur_us", 0)
            last_ts = end if last_ts is None else max(last_ts, end)
    if not counts:
        return "(no events recorded)"
    header = f"{'event type':<32} {'count':>8}"
    lines = [header, "-" * len(header)]
    for event_type in sorted(counts):
        lines.append(f"{event_type:<32} {counts[event_type]:>8}")
    if first_ts is not None and last_ts is not None:
        lines.append("-" * len(header))
        lines.append(f"{'span':<32} {(last_ts - first_ts) / 1e6:>7.3f}s")
    return "\n".join(lines)


def render_runs(events: Iterable[Dict]) -> Optional[str]:
    """One line per ``vp.run`` summary event (None when there are none)."""
    runs = [e for e in events if e.get("type") == "vp.run"]
    if not runs:
        return None
    header = (f"{'run':>4} {'insns':>12} {'cycles':>12} {'MIPS':>8} "
              f"{'tb hit rate':>12} {'traps':>6}")
    lines = [header, "-" * len(header)]
    for i, run in enumerate(runs):
        lines.append(
            f"{i:>4} {run.get('instructions', 0):>12,} "
            f"{run.get('cycles', 0):>12,} {run.get('mips', 0.0):>8.2f} "
            f"{run.get('tb_hit_rate', 0.0):>11.1%} {run.get('traps', 0):>6}"
        )
    return "\n".join(lines)


def render_campaigns(events: Iterable[Dict]) -> Optional[str]:
    """Summary of each ``campaign.finished`` event (None when none)."""
    finished = [e for e in events if e.get("type") == "campaign.finished"]
    if not finished:
        return None
    blocks: List[str] = []
    for event in finished:
        counts = event.get("counts", {})
        total = event.get("total", sum(counts.values()))
        lines = [
            f"campaign: {total} mutants in "
            f"{event.get('elapsed_seconds', 0.0):.3f}s "
            f"({event.get('mutants_per_second', 0.0):.1f} mutants/s)",
        ]
        for outcome in sorted(counts):
            fraction = counts[outcome] / total if total else 0.0
            lines.append(f"  {outcome:<10} {counts[outcome]:>8} {fraction:>9.1%}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _latest_metrics_snapshot(events: Iterable[Dict]) -> Dict[str, dict]:
    snapshot: Dict[str, dict] = {}
    for event in events:
        if event.get("type") == "metrics.snapshot":
            snapshot = event.get("metrics", {})
    return snapshot


def render_report(events: Iterable[Dict],
                  metrics: Optional[Dict[str, dict]] = None,
                  log_stats: Optional[Dict] = None) -> str:
    """The full ``--stats`` report: runs, campaigns, metrics, event counts.

    ``log_stats`` (an :meth:`EventLog.stats` dict) surfaces ring-buffer
    overflow: when records were dropped, the report says so instead of
    letting a truncated event list read as a complete run.
    """
    events = list(events)
    if metrics is None:
        metrics = _latest_metrics_snapshot(events)
    sections = []
    runs = render_runs(events)
    if runs:
        sections.append("--- VP runs ---\n" + runs)
    campaigns = render_campaigns(events)
    if campaigns:
        sections.append("--- fault campaigns ---\n" + campaigns)
    sections.append("--- metrics ---\n" + render_metrics(metrics))
    event_section = render_event_counts(events)
    if log_stats and log_stats.get("overflowed"):
        event_section += (
            f"\nWARNING: event ring overflowed — "
            f"{log_stats.get('dropped_events', 0):,} of "
            f"{log_stats.get('total_appended', 0):,} events dropped")
    sections.append("--- events ---\n" + event_section)
    return "\n\n".join(sections)
