"""VP instrumentation plugin feeding the telemetry layer.

Built on the version-independent plugin API (``repro.vp.plugins``), the
same interface QTA and the coverage collector use — telemetry is just
another observer and costs nothing when not attached.  Collects:

* retired instructions, cycles, wall time, and MIPS,
* translation-cache behaviour (hits, misses, flushes, hit rate,
  blocks translated/executed),
* trap and interrupt counts (split by the mcause interrupt bit),
* memory-access counts and an access-width histogram.

All instruments live under the ``vp.`` namespace of the session's
metrics registry; a ``vp.run`` summary event is emitted on machine exit.
"""

from __future__ import annotations

import time

from ..isa.csr import INTERRUPT_BIT
from ..vp.plugins import Plugin
from .session import resolve

__all__ = ["TelemetryPlugin"]


class TelemetryPlugin(Plugin):
    """Collects emulator throughput and cache statistics into telemetry."""

    name = "telemetry"

    def __init__(self, telemetry=None) -> None:
        self.telemetry = resolve(telemetry)
        metrics = self.telemetry.metrics.namespace("vp")
        self._blocks_translated = metrics.counter("tb.translated")
        self._blocks_executed = metrics.counter("tb.executed")
        self._flushes = metrics.counter("tb.flushes")
        self._traps = metrics.counter("cpu.traps")
        self._interrupts = metrics.counter("cpu.interrupts")
        self._loads = metrics.counter("mem.loads")
        self._stores = metrics.counter("mem.stores")
        self._width_histogram = metrics.histogram(
            "mem.access_width", buckets=(1, 2, 4, 8))
        self._metrics = metrics
        self._machine = None
        self._cpu = None
        self._start_wall = None
        self._start_instret = 0
        self._start_cycles = 0
        self._start_tb_hits = 0
        self._start_tb_misses = 0
        self._finished = False

    # -- hook implementations ------------------------------------------

    def on_attach(self, machine) -> None:
        self._machine = machine
        self._cpu = machine.cpu
        self._start_wall = time.perf_counter()
        self._start_instret = machine.cpu.csrs.instret
        self._start_cycles = machine.cpu.csrs.cycle
        self._start_tb_hits = machine.cpu.tb_hits
        self._start_tb_misses = machine.cpu.tb_misses
        self._finished = False

    def on_block_translate(self, cpu, block) -> None:
        self._blocks_translated.inc()

    def on_block_exec(self, cpu, block) -> None:
        self._blocks_executed.inc()

    def on_mem_access(self, cpu, addr, width, value, is_store) -> None:
        (self._stores if is_store else self._loads).inc()
        self._width_histogram.observe(width)

    def on_trap(self, cpu, cause, pc) -> None:
        if cause & INTERRUPT_BIT:
            self._interrupts.inc()
        else:
            self._traps.inc()

    def on_tb_flush(self, cpu) -> None:
        self._flushes.inc()

    def on_exit(self, code) -> None:
        self.finish(exit_code=code)

    # -- summary --------------------------------------------------------

    def finish(self, exit_code=None) -> dict:
        """Fold final CPU counters into metrics; emit a ``vp.run`` event.

        Called automatically when a machine run ends (every stop reason
        fires the exit hooks); idempotent until the plugin is re-attached.
        """
        cpu = self._cpu
        if cpu is None or self._finished:
            return {}
        self._finished = True
        wall = time.perf_counter() - (self._start_wall or time.perf_counter())
        instructions = cpu.csrs.instret - self._start_instret
        cycles = cpu.csrs.cycle - self._start_cycles
        mips = instructions / wall / 1e6 if wall > 0 else 0.0
        metrics = self._metrics
        metrics.counter("cpu.insns_retired").inc(instructions)
        metrics.counter("cpu.cycles").inc(cycles)
        metrics.gauge("cpu.mips").set(mips)
        tb_hits = cpu.tb_hits - self._start_tb_hits
        tb_misses = cpu.tb_misses - self._start_tb_misses
        metrics.counter("tb.hits").inc(tb_hits)
        metrics.counter("tb.misses").inc(tb_misses)
        lookups = tb_hits + tb_misses
        hit_rate = tb_hits / lookups if lookups else 0.0
        metrics.gauge("tb.hit_rate").set(hit_rate)
        summary = {
            "instructions": instructions,
            "cycles": cycles,
            "wall_seconds": round(wall, 6),
            "mips": round(mips, 3),
            "tb_hits": tb_hits,
            "tb_misses": tb_misses,
            "tb_hit_rate": round(hit_rate, 4),
            "tb_flushes": getattr(cpu, "tb_flushes", 0),
            "traps": self._traps.value,
            "interrupts": self._interrupts.value,
            "loads": self._loads.value,
            "stores": self._stores.value,
        }
        if exit_code is not None:
            summary["exit_code"] = exit_code
        self.telemetry.events.emit("vp.run", **summary)
        return summary
