"""Instruction-type and register coverage analysis."""

from .collector import (
    CoveragePlugin,
    SuiteCoverage,
    measure_coverage,
    measure_suite,
)
from .report import CoverageReport, empty_report

__all__ = [
    "CoveragePlugin",
    "CoverageReport",
    "SuiteCoverage",
    "empty_report",
    "measure_coverage",
    "measure_suite",
]
