"""Instruction-type and register coverage analysis."""

from .collector import (
    CoveragePlugin,
    SuiteCoverage,
    coverage_signature,
    measure_coverage,
    measure_suite,
)
from .report import CoverageReport, empty_report

__all__ = [
    "CoveragePlugin",
    "CoverageReport",
    "SuiteCoverage",
    "coverage_signature",
    "empty_report",
    "measure_coverage",
    "measure_suite",
]
