"""Coverage collection on the virtual prototype.

The collector plugs into the VP twice: a :class:`CoveragePlugin` observes
executed instruction types and data accesses through the plugin API, while
register/CSR access sets come from the architectural register files' own
access tracing — so the metric sees exactly the accesses the instruction
semantics perform, with no per-instruction bookkeeping duplicated here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..asm import Program
from ..isa.decoder import IsaConfig, RV32IMC_ZICSR
from ..telemetry.session import resolve as _resolve_telemetry
from ..vp.machine import Machine, MachineConfig
from ..vp.plugins import Plugin
from .report import CoverageReport, empty_report


def coverage_signature(report: CoverageReport,
                       tb_edges: Iterable[int] = ()) -> frozenset:
    """A stable, hashable signature of *what* a run covered.

    The signature is a frozenset of tagged tuples — ``("insn", name)`` for
    every executed instruction type, ``("gpr", n)`` / ``("fpr", n)`` /
    ``("csr", addr)`` for every accessed register, and ``("edge", e)`` for
    every translation-block edge id in ``tb_edges`` (see
    :mod:`repro.fuzz.feedback`).  Two runs with the same signature covered
    the same instruction types, registers, and control-flow edges, so the
    signature is the unit of deduplication shared by the coverage-guided
    fuzzer's corpus and any future coverage dedup.  Set semantics make it
    order-independent and therefore stable across runs and processes.
    """
    elements = set()
    for name in report.insn_types:
        elements.add(("insn", name))
    for reg in report.gprs_accessed:
        elements.add(("gpr", reg))
    for reg in report.fprs_accessed:
        elements.add(("fpr", reg))
    for csr in report.csrs_accessed:
        elements.add(("csr", csr))
    for edge in tb_edges:
        elements.add(("edge", edge))
    return frozenset(elements)


class CoveragePlugin(Plugin):
    """Records executed instruction types and touched memory addresses."""

    name = "coverage"

    def __init__(self) -> None:
        self.insn_types = set()
        self.mem_read_addrs = set()
        self.mem_written_addrs = set()

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.insn_types.add(decoded.spec.name)

    def on_mem_access(self, cpu, addr, width, value, is_store) -> None:
        target = self.mem_written_addrs if is_store else self.mem_read_addrs
        for offset in range(width):
            target.add(addr + offset)


def measure_coverage(
    program: Program,
    isa: Optional[IsaConfig] = None,
    max_instructions: int = 1_000_000,
    machine: Optional[Machine] = None,
    telemetry=None,
) -> CoverageReport:
    """Run ``program`` on the VP and return its coverage report.

    A pre-configured ``machine`` may be supplied (it must have register
    tracing enabled); otherwise one is created from ``isa``.  When the
    resolved ``telemetry`` session is enabled, the collection cost is
    recorded under ``coverage.collector.*`` and a ``coverage.collected``
    event is emitted.
    """
    telemetry = _resolve_telemetry(telemetry)
    metrics = telemetry.metrics.namespace("coverage.collector")
    isa = isa or (machine.config.isa if machine else
                  IsaConfig.from_string(program.isa_name))
    if machine is None:
        machine = Machine(MachineConfig(isa=isa, trace_registers=True))
    if not machine.cpu.regs.trace:
        raise ValueError("coverage needs a machine with trace_registers=True")
    machine.load(program)
    machine.cpu.regs.clear_trace()
    machine.cpu.fregs.clear_trace()
    machine.cpu.csrs.clear_trace()
    plugin = CoveragePlugin()
    machine.add_plugin(plugin)
    run_result = None
    try:
        with metrics.timer("run_seconds"), \
                telemetry.events.span("coverage.collected", isa=isa.name):
            run_result = machine.run(max_instructions=max_instructions)
    finally:
        machine.remove_plugin(plugin)
        metrics.counter("runs").inc()
        if run_result is not None:
            metrics.counter("instructions").inc(run_result.instructions)
    report = empty_report(isa)
    report.insn_types = set(plugin.insn_types)
    report.gprs_read = set(machine.cpu.regs.reads)
    report.gprs_written = set(machine.cpu.regs.writes)
    report.fprs_read = set(machine.cpu.fregs.reads)
    report.fprs_written = set(machine.cpu.fregs.writes)
    report.csrs_accessed = set(machine.cpu.csrs.reads) | \
        set(machine.cpu.csrs.writes)
    report.mem_read_addrs = set(plugin.mem_read_addrs)
    report.mem_written_addrs = set(plugin.mem_written_addrs)
    return report


def measure_suite(
    programs: Iterable[Tuple[str, Program]],
    isa: Optional[IsaConfig] = None,
    max_instructions: int = 1_000_000,
) -> "SuiteCoverage":
    """Measure each program and the union coverage of the whole suite."""
    named = list(programs)
    if not named:
        raise ValueError("suite is empty")
    if isa is None:
        isa = IsaConfig.from_string(named[0][1].isa_name)
    reports: List[Tuple[str, CoverageReport]] = []
    union = empty_report(isa)
    for name, program in named:
        report = measure_coverage(program, isa=isa,
                                  max_instructions=max_instructions)
        reports.append((name, report))
        union = union | report
    return SuiteCoverage(isa_name=isa.name, reports=reports, union=union)


class SuiteCoverage:
    """Per-program coverage plus the suite union, with a table renderer."""

    def __init__(self, isa_name: str,
                 reports: Sequence[Tuple[str, CoverageReport]],
                 union: CoverageReport) -> None:
        self.isa_name = isa_name
        self.reports = list(reports)
        self.union = union

    def table(self) -> str:
        """The suite-comparison table of the coverage paper."""
        header = (f"{'suite':<18} {'insn types':>12} {'GPR':>8} "
                  f"{'FPR':>8} {'CSR':>8}")
        rows = [header, "-" * len(header)]
        entries = self.reports + [("combined", self.union)]
        for name, report in entries:
            rows.append(
                f"{name:<18} {report.insn_coverage:>11.1%} "
                f"{report.gpr_coverage:>7.1%} "
                f"{report.fpr_coverage:>7.1%} "
                f"{report.csr_coverage:>7.1%}"
            )
        return "\n".join(rows)
