"""The coverage metric: instruction types and register accesses.

Reproduces the metric of *Register and Instruction Coverage Analysis for
Different RISC-V ISA Modules* (MBMV 2021): for a binary (or suite of
binaries) executed on the virtual prototype, measure

* which **instruction types** of the configured ISA were executed,
* which **GPRs**, **CSRs** and **FPRs** were accessed (read/written),
* which data **memory addresses** were touched.

Reports are value objects that union cleanly (``a | b``), so suites can be
combined exactly as the paper combines the architectural, unit, and
Torture-style suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..isa.decoder import Decoder, IsaConfig

NUM_GPRS = 32
NUM_FPRS = 32


def _ratio(hit: int, total: int) -> float:
    """``hit / total`` with an empty universe reporting 0.0, not a crash.

    Coverage denominators can legitimately be zero: an ISA configuration
    with an empty instruction or CSR universe, a register class that does
    not exist (no FPRs), or a run that executed zero instructions against
    a degenerate universe.  Every percentage in this module goes through
    this helper so such reports render as 0.0 % instead of raising
    ``ZeroDivisionError``.
    """
    if total <= 0:
        return 0.0
    return hit / total


@dataclass
class CoverageReport:
    """Coverage of one program run (or the union of several runs)."""

    isa_name: str
    #: mnemonic -> ISA module, the coverage universe
    insn_universe: Dict[str, str]
    csr_universe: FrozenSet[int]
    has_fprs: bool

    insn_types: Set[str] = field(default_factory=set)
    gprs_read: Set[int] = field(default_factory=set)
    gprs_written: Set[int] = field(default_factory=set)
    fprs_read: Set[int] = field(default_factory=set)
    fprs_written: Set[int] = field(default_factory=set)
    csrs_accessed: Set[int] = field(default_factory=set)
    mem_read_addrs: Set[int] = field(default_factory=set)
    mem_written_addrs: Set[int] = field(default_factory=set)

    # -- derived metrics -------------------------------------------------

    @property
    def gprs_accessed(self) -> Set[int]:
        return self.gprs_read | self.gprs_written

    @property
    def fprs_accessed(self) -> Set[int]:
        return self.fprs_read | self.fprs_written

    @property
    def insn_coverage(self) -> float:
        """Fraction of ISA instruction types executed."""
        return _ratio(len(self.insn_types), len(self.insn_universe))

    @property
    def gpr_coverage(self) -> float:
        return _ratio(len(self.gprs_accessed), NUM_GPRS)

    @property
    def fpr_coverage(self) -> float:
        if not self.has_fprs:
            return 0.0
        return _ratio(len(self.fprs_accessed), NUM_FPRS)

    @property
    def csr_coverage(self) -> float:
        return _ratio(len(self.csrs_accessed & self.csr_universe),
                      len(self.csr_universe))

    def missed_insn_types(self) -> List[str]:
        return sorted(set(self.insn_universe) - self.insn_types)

    def missed_gprs(self) -> List[int]:
        return sorted(set(range(NUM_GPRS)) - self.gprs_accessed)

    def missed_fprs(self) -> List[int]:
        if not self.has_fprs:
            return []
        return sorted(set(range(NUM_FPRS)) - self.fprs_accessed)

    def missed_csrs(self) -> List[int]:
        return sorted(self.csr_universe - self.csrs_accessed)

    def module_breakdown(self) -> Dict[str, Tuple[int, int]]:
        """Per ISA module: (types executed, types in universe)."""
        totals: Dict[str, int] = {}
        hits: Dict[str, int] = {}
        for name, module in self.insn_universe.items():
            totals[module] = totals.get(module, 0) + 1
            if name in self.insn_types:
                hits[module] = hits.get(module, 0) + 1
        return {
            module: (hits.get(module, 0), total)
            for module, total in sorted(totals.items())
        }

    # -- combination -------------------------------------------------------

    def union(self, other: "CoverageReport") -> "CoverageReport":
        """Coverage of the combined suite (universes must match)."""
        if self.insn_universe != other.insn_universe:
            raise ValueError(
                "cannot union coverage reports over different ISA universes "
                f"({self.isa_name} vs {other.isa_name})"
            )
        merged = CoverageReport(
            isa_name=self.isa_name,
            insn_universe=self.insn_universe,
            csr_universe=self.csr_universe,
            has_fprs=self.has_fprs,
        )
        for attr in ("insn_types", "gprs_read", "gprs_written", "fprs_read",
                     "fprs_written", "csrs_accessed", "mem_read_addrs",
                     "mem_written_addrs"):
            setattr(merged, attr, getattr(self, attr) | getattr(other, attr))
        return merged

    def __or__(self, other: "CoverageReport") -> "CoverageReport":
        return self.union(other)

    # -- rendering -----------------------------------------------------------

    def summary_row(self) -> Dict[str, float]:
        return {
            "insn": self.insn_coverage,
            "gpr": self.gpr_coverage,
            "fpr": self.fpr_coverage,
            "csr": self.csr_coverage,
        }

    def to_text(self, name: str = "program") -> str:
        lines = [
            f"coverage report: {name} ({self.isa_name})",
            f"  instruction types: {len(self.insn_types)}/"
            f"{len(self.insn_universe)} ({self.insn_coverage:.1%})",
            f"  GPRs accessed:     {len(self.gprs_accessed)}/{NUM_GPRS} "
            f"({self.gpr_coverage:.1%})",
        ]
        if self.has_fprs:
            lines.append(
                f"  FPRs accessed:     {len(self.fprs_accessed)}/{NUM_FPRS} "
                f"({self.fpr_coverage:.1%})"
            )
        lines.append(
            f"  CSRs accessed:     "
            f"{len(self.csrs_accessed & self.csr_universe)}/"
            f"{len(self.csr_universe)} ({self.csr_coverage:.1%})"
        )
        lines.append("  per-module instruction types:")
        for module, (hit, total) in self.module_breakdown().items():
            lines.append(f"    {module:<6} {hit}/{total}")
        return "\n".join(lines)


def empty_report(isa: IsaConfig) -> CoverageReport:
    """A zero-coverage report with the universe of ``isa``."""
    decoder = Decoder(isa)
    from ..isa.csr import CsrFile

    csrs = CsrFile(modules=set(isa.modules))
    return CoverageReport(
        isa_name=isa.name,
        insn_universe={spec.name: spec.module for spec in decoder.specs},
        csr_universe=frozenset(csrs.known_addresses()),
        has_fprs="F" in isa.modules,
    )
