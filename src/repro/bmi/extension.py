"""Ten bit-manipulation instructions (BMIs) as a pluggable ISA module.

The PATMOS 2019 companion paper introduces ten advanced BMIs for RISC-V,
derived from x86 (BMI1/BMI2, POPCNT/LZCNT) and ARMv8 equivalents, and shows
they cost nothing on the critical path while significantly reducing dynamic
instruction counts of cryptographic kernels.  This module defines the ten
instructions with their (Zbb-compatible) encodings, registers them as ISA
module ``Zbb``, and wires their semantics into the VP — demonstrating the
decoder's decodetree-style extensibility.

The ten: ``andn orn xnor clz ctz cpop min max rol ror``.
"""

from __future__ import annotations

from typing import List

from ..isa import formats as fmt
from ..isa.decoder import IsaConfig, register_extension
from ..isa.fields import WORD_MASK, to_signed
from ..isa.rv32i import MASK_R
from ..isa.spec import Decoded, InstructionSpec

MODULE_NAME = "Zbb"

MASK_R2 = 0xFFF0707F  # unary ops: funct7 + rs2-field + funct3 + opcode


# -- semantics ----------------------------------------------------------------

def exec_andn(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) & ~cpu.regs.read(d.rs2))


def exec_orn(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, cpu.regs.read(d.rs1) | ~cpu.regs.read(d.rs2))


def exec_xnor(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, ~(cpu.regs.read(d.rs1) ^ cpu.regs.read(d.rs2)))


def exec_clz(cpu, d: Decoded) -> None:
    value = cpu.regs.read(d.rs1)
    cpu.regs.write(d.rd, 32 - value.bit_length())


def exec_ctz(cpu, d: Decoded) -> None:
    value = cpu.regs.read(d.rs1)
    cpu.regs.write(d.rd, 32 if value == 0 else (value & -value).bit_length() - 1)


def exec_cpop(cpu, d: Decoded) -> None:
    cpu.regs.write(d.rd, bin(cpu.regs.read(d.rs1)).count("1"))


def exec_min(cpu, d: Decoded) -> None:
    a = to_signed(cpu.regs.read(d.rs1))
    b = to_signed(cpu.regs.read(d.rs2))
    cpu.regs.write(d.rd, min(a, b))


def exec_max(cpu, d: Decoded) -> None:
    a = to_signed(cpu.regs.read(d.rs1))
    b = to_signed(cpu.regs.read(d.rs2))
    cpu.regs.write(d.rd, max(a, b))


def exec_rol(cpu, d: Decoded) -> None:
    value = cpu.regs.read(d.rs1)
    shift = cpu.regs.read(d.rs2) & 31
    cpu.regs.write(d.rd, ((value << shift) | (value >> (32 - shift)))
                   & WORD_MASK if shift else value)


def exec_ror(cpu, d: Decoded) -> None:
    value = cpu.regs.read(d.rs1)
    shift = cpu.regs.read(d.rs2) & 31
    cpu.regs.write(d.rd, ((value >> shift) | (value << (32 - shift)))
                   & WORD_MASK if shift else value)


# -- encodings (Zbb-compatible) ------------------------------------------------

def _r(name, match, execute) -> InstructionSpec:
    return InstructionSpec(
        name=name, module=MODULE_NAME, match=match, mask=MASK_R, length=4,
        decode=fmt.decode_r, execute=execute, syntax="R", encode=fmt.encode_r,
    )


def _unary(name, match, execute) -> InstructionSpec:
    return InstructionSpec(
        name=name, module=MODULE_NAME, match=match, mask=MASK_R2, length=4,
        decode=fmt.decode_r2, execute=execute, syntax="R2",
        encode=fmt.encode_r2,
    )


BMI_SPECS: List[InstructionSpec] = [
    _r("andn", 0x40007033, exec_andn),
    _r("orn", 0x40006033, exec_orn),
    _r("xnor", 0x40004033, exec_xnor),
    _unary("clz", 0x60001013, exec_clz),
    _unary("ctz", 0x60101013, exec_ctz),
    _unary("cpop", 0x60201013, exec_cpop),
    _r("min", 0x0A004033, exec_min),
    _r("max", 0x0A006033, exec_max),
    _r("rol", 0x60001033, exec_rol),
    _r("ror", 0x60005033, exec_ror),
]

# Register the module on import so IsaConfig({"I", ..., "Zbb"}) works.
register_extension(MODULE_NAME, BMI_SPECS)

#: Convenience configurations with the extension enabled.
RV32IMC_ZICSR_ZBB = IsaConfig({"I", "M", "C", "Zicsr", MODULE_NAME})
RV32IM_ZBB = IsaConfig({"I", "M", MODULE_NAME})
