"""BMI software evaluation: run each kernel pair and compare costs.

Reproduces the software-evaluation side of the PATMOS BMI paper: for each
kernel, dynamic instruction count and cycle count with and without the
extension, the speedup factor, and an equivalence check (identical
checksums).  The hardware-side claim (no critical-path impact) maps to the
timing model assigning BMI instructions the 1-cycle ALU cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..asm import assemble
from ..isa.decoder import IsaConfig
from ..vp.machine import Machine, MachineConfig
from ..vp.timing import TimingModel
from .extension import RV32IM_ZBB
from .kernels import KERNELS, KernelPair


@dataclass
class KernelComparison:
    """Measured baseline-vs-BMI numbers for one kernel."""

    name: str
    description: str
    checksum: int
    baseline_instructions: int
    bmi_instructions: int
    baseline_cycles: int
    bmi_cycles: int

    @property
    def instruction_reduction(self) -> float:
        return self.baseline_instructions / self.bmi_instructions

    @property
    def cycle_speedup(self) -> float:
        return self.baseline_cycles / self.bmi_cycles


class EquivalenceError(Exception):
    """Baseline and BMI kernel versions disagree on the checksum."""


def run_kernel(source: str, isa: IsaConfig,
               timing: Optional[TimingModel] = None):
    """Assemble and run one kernel source; returns the RunResult."""
    machine = Machine(MachineConfig(isa=isa, timing=timing))
    machine.load(assemble(source, isa=isa))
    result = machine.run(max_instructions=10_000_000)
    if result.stop_reason != "exit":
        raise RuntimeError(f"kernel did not terminate: {result.stop_reason}")
    return result


def compare_kernel(kernel: KernelPair, isa: IsaConfig = RV32IM_ZBB,
                   timing: Optional[TimingModel] = None) -> KernelComparison:
    """Run both variants of a kernel and check checksum equivalence."""
    baseline = run_kernel(kernel.baseline_source, isa, timing)
    bmi = run_kernel(kernel.bmi_source, isa, timing)
    if baseline.exit_code != bmi.exit_code:
        raise EquivalenceError(
            f"{kernel.name}: baseline checksum {baseline.exit_code:#x} != "
            f"BMI checksum {bmi.exit_code:#x}"
        )
    return KernelComparison(
        name=kernel.name,
        description=kernel.description,
        checksum=baseline.exit_code,
        baseline_instructions=baseline.instructions,
        bmi_instructions=bmi.instructions,
        baseline_cycles=baseline.cycles,
        bmi_cycles=bmi.cycles,
    )


def evaluate_all(isa: IsaConfig = RV32IM_ZBB,
                 timing: Optional[TimingModel] = None
                 ) -> List[KernelComparison]:
    """Compare every kernel pair of :data:`~repro.bmi.kernels.KERNELS`."""
    return [compare_kernel(kernel, isa, timing) for kernel in KERNELS]


def table(comparisons: List[KernelComparison]) -> str:
    """Render the PATMOS-style speedup table."""
    header = (f"{'kernel':<15} {'insns base':>11} {'insns bmi':>10} "
              f"{'x-insn':>7} {'cyc base':>9} {'cyc bmi':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in comparisons:
        lines.append(
            f"{row.name:<15} {row.baseline_instructions:>11} "
            f"{row.bmi_instructions:>10} {row.instruction_reduction:>6.2f}x "
            f"{row.baseline_cycles:>9} {row.bmi_cycles:>8} "
            f"{row.cycle_speedup:>7.2f}x"
        )
    return "\n".join(lines)
