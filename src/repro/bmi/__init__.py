"""Bit-manipulation instruction (BMI) extension and its evaluation.

Importing this package registers the ``Zbb`` ISA module with the decoder.
"""

from .evaluate import (
    EquivalenceError,
    KernelComparison,
    compare_kernel,
    evaluate_all,
    run_kernel,
    table,
)
from .extension import (
    BMI_SPECS,
    MODULE_NAME,
    RV32IMC_ZICSR_ZBB,
    RV32IM_ZBB,
)
from .kernels import KERNELS, KernelPair

__all__ = [
    "BMI_SPECS",
    "EquivalenceError",
    "KERNELS",
    "KernelComparison",
    "KernelPair",
    "MODULE_NAME",
    "RV32IMC_ZICSR_ZBB",
    "RV32IM_ZBB",
    "compare_kernel",
    "evaluate_all",
    "run_kernel",
    "table",
]
