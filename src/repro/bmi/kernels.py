"""Benchmark kernels with and without the BMI extension.

Each kernel exists in two semantically identical versions — a baseline
using only RV32IM instructions and a BMI version using the Zbb-style
extension — and ends by exiting with a checksum, so equivalence is checked
by comparing exit codes.  The kernels are the crypto/bit-twiddling
workloads the PATMOS evaluation motivates: population counts, leading-zero
normalisation, rotate-heavy ARX mixing, byte masking, and clamping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

_EXIT = """
    li t0, 0x7FFFFFFF
    and a0, a0, t0
    li a7, 93
    ecall
"""

_DATA = """
.data
data:
    .word 0xDEADBEEF, 0x00000000, 0xFFFFFFFF, 0x12345678
    .word 0x80000001, 0x0F0F0F0F, 0xCAFEBABE, 0x00010000
    .word 0x55555555, 0xAAAAAAAA, 0x7FFFFFFF, 0x80000000
    .word 0x01020304, 0xFEDCBA98, 0x0000FFFF, 0x13579BDF
"""

# ---------------------------------------------------------------------------
# popcount over 16 words
# ---------------------------------------------------------------------------

POPCOUNT_BASELINE = """
# Sum of population counts over 16 words, SWAR bit-twiddling baseline.
_start:
    la s0, data
    li s1, 16
    li a0, 0
    li s2, 0x55555555
    li s3, 0x33333333
    li s4, 0x0F0F0F0F
    li s5, 0x01010101
loop:                      # @loopbound 16
    lw t0, 0(s0)
    # v = v - ((v >> 1) & 0x55555555)
    srli t1, t0, 1
    and t1, t1, s2
    sub t0, t0, t1
    # v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
    and t1, t0, s3
    srli t0, t0, 2
    and t0, t0, s3
    add t0, t0, t1
    # v = (v + (v >> 4)) & 0x0F0F0F0F
    srli t1, t0, 4
    add t0, t0, t1
    and t0, t0, s4
    # count = (v * 0x01010101) >> 24
    mul t0, t0, s5
    srli t0, t0, 24
    add a0, a0, t0
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

POPCOUNT_BMI = """
# Sum of population counts over 16 words, single-instruction cpop.
_start:
    la s0, data
    li s1, 16
    li a0, 0
loop:                      # @loopbound 16
    lw t0, 0(s0)
    cpop t0, t0
    add a0, a0, t0
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

# ---------------------------------------------------------------------------
# leading-zero normalisation (soft-float style)
# ---------------------------------------------------------------------------

CLZ_BASELINE = """
# Accumulate leading-zero counts via a shift loop (soft-float normalise).
_start:
    la s0, data
    li s1, 16
    li a0, 0
outer:                     # @loopbound 16
    lw t0, 0(s0)
    li t1, 0
    beqz t0, zero_case
count:                     # @loopbound 32
    srli t2, t0, 31
    bnez t2, done
    slli t0, t0, 1
    addi t1, t1, 1
    j count
zero_case:
    li t1, 32
done:
    add a0, a0, t1
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, outer
""" + _EXIT + _DATA

CLZ_BMI = """
# Accumulate leading-zero counts with clz.
_start:
    la s0, data
    li s1, 16
    li a0, 0
loop:                      # @loopbound 16
    lw t0, 0(s0)
    clz t0, t0
    add a0, a0, t0
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

# ---------------------------------------------------------------------------
# ARX mixing (ChaCha-style quarter-round skeleton, rotate-heavy)
# ---------------------------------------------------------------------------

ARX_BASELINE = """
# 32 rounds of add/xor/rotate mixing; rotation via srl/sll/or.
_start:
    li s2, 0x61707865
    li s3, 0x3320646E
    li s1, 32
    li a0, 0
round:                     # @loopbound 32
    add s2, s2, s3
    xor s3, s3, s2
    # s3 = rotl(s3, 7)
    slli t0, s3, 7
    srli t1, s3, 25
    or s3, t0, t1
    add s2, s2, s3
    xor s3, s3, s2
    # s3 = rotl(s3, 13)
    slli t0, s3, 13
    srli t1, s3, 19
    or s3, t0, t1
    add a0, a0, s3
    addi s1, s1, -1
    bnez s1, round
""" + _EXIT

ARX_BMI = """
# 32 rounds of add/xor/rotate mixing; rotation via rol.
_start:
    li s2, 0x61707865
    li s3, 0x3320646E
    li s1, 32
    li a0, 0
    li s4, 7
    li s5, 13
round:                     # @loopbound 32
    add s2, s2, s3
    xor s3, s3, s2
    rol s3, s3, s4
    add s2, s2, s3
    xor s3, s3, s2
    rol s3, s3, s5
    add a0, a0, s3
    addi s1, s1, -1
    bnez s1, round
""" + _EXIT

# ---------------------------------------------------------------------------
# masked select (bitboard / cipher key mixing): andn/orn/xnor
# ---------------------------------------------------------------------------

MASKED_BASELINE = """
# y = (a & ~m) | (b & m) style mixing over the data array.
_start:
    la s0, data
    li s1, 8
    li a0, 0
    li s2, 0x0F0F0F0F
loop:                      # @loopbound 8
    lw t0, 0(s0)
    lw t1, 4(s0)
    # t2 = t0 & ~s2
    xori t3, s2, -1
    and t2, t0, t3
    # t4 = ~(t0 ^ t1)
    xor t4, t0, t1
    xori t4, t4, -1
    # t5 = t1 | ~t0
    xori t3, t0, -1
    or t5, t1, t3
    add a0, a0, t2
    add a0, a0, t4
    add a0, a0, t5
    addi s0, s0, 8
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

MASKED_BMI = """
# Same mixing with andn/xnor/orn.
_start:
    la s0, data
    li s1, 8
    li a0, 0
    li s2, 0x0F0F0F0F
loop:                      # @loopbound 8
    lw t0, 0(s0)
    lw t1, 4(s0)
    andn t2, t0, s2
    xnor t4, t0, t1
    orn t5, t1, t0
    add a0, a0, t2
    add a0, a0, t4
    add a0, a0, t5
    addi s0, s0, 8
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

# ---------------------------------------------------------------------------
# clamping (saturation arithmetic): min/max
# ---------------------------------------------------------------------------

CLAMP_BASELINE = """
# Clamp each word into [-1000, 1000] using branches.
_start:
    la s0, data
    li s1, 16
    li a0, 0
    li s2, 1000
    li s3, -1000
loop:                      # @loopbound 16
    lw t0, 0(s0)
    blt t0, s2, no_hi
    mv t0, s2
no_hi:
    bge t0, s3, no_lo
    mv t0, s3
no_lo:
    add a0, a0, t0
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

CLAMP_BMI = """
# Clamp each word into [-1000, 1000] using min/max.
_start:
    la s0, data
    li s1, 16
    li a0, 0
    li s2, 1000
    li s3, -1000
loop:                      # @loopbound 16
    lw t0, 0(s0)
    min t0, t0, s2
    max t0, t0, s3
    add a0, a0, t0
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, loop
""" + _EXIT + _DATA

# ---------------------------------------------------------------------------
# trailing-zero scanning (de Bruijn-free bit iteration): ctz
# ---------------------------------------------------------------------------

CTZ_BASELINE = """
# Sum the absolute positions of set bits via an LSB shift scan.
_start:
    la s0, data
    li s1, 8
    li a0, 0
outer:                     # @loopbound 8
    lw t0, 0(s0)
    li t1, 0
bits:                      # @loopbound 33
    beqz t0, next
    andi t2, t0, 1
    beqz t2, skip
    add a0, a0, t1
skip:
    srli t0, t0, 1
    addi t1, t1, 1
    j bits
next:
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, outer
""" + _EXIT + _DATA

CTZ_BMI = """
# Sum the positions of set bits using ctz and clear-lowest.
_start:
    la s0, data
    li s1, 8
    li a0, 0
outer:                     # @loopbound 8
    lw t0, 0(s0)
bits:                      # @loopbound 33
    beqz t0, next
    ctz t1, t0
    add a0, a0, t1
    addi t2, t0, -1
    and t0, t0, t2     # clear lowest set bit
    j bits
next:
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, outer
""" + _EXIT + _DATA


@dataclass(frozen=True)
class KernelPair:
    """A baseline/BMI kernel pair with identical semantics."""

    name: str
    baseline_source: str
    bmi_source: str
    description: str


KERNELS: List[KernelPair] = [
    KernelPair("popcount", POPCOUNT_BASELINE, POPCOUNT_BMI,
               "population count over 16 words (SWAR vs cpop)"),
    KernelPair("clz-normalise", CLZ_BASELINE, CLZ_BMI,
               "leading-zero counting (shift loop vs clz)"),
    KernelPair("arx-mix", ARX_BASELINE, ARX_BMI,
               "add/xor/rotate mixing rounds (3-insn rotate vs rol)"),
    KernelPair("masked-select", MASKED_BASELINE, MASKED_BMI,
               "mask/combine logic (not+and/or/xor vs andn/orn/xnor)"),
    KernelPair("clamp", CLAMP_BASELINE, CLAMP_BMI,
               "saturation to [-1000,1000] (branches vs min/max)"),
    KernelPair("bit-scan", CTZ_BASELINE, CTZ_BMI,
               "set-bit position accumulation (scan loop vs ctz)"),
]
