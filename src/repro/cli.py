"""Command-line interface: ``python -m repro <command>``.

Commands mirror the ecosystem tools:

=========== ===========================================================
``run``     assemble + run a program on the VP, print UART and result
``disasm``  objdump-style listing of an assembled program
``wcet``    full QTA flow: static bound, block table, co-simulation
``coverage`` instruction/register coverage of a program
``faults``  coverage-guided fault-injection campaign
``fuzz``    coverage-guided fuzzing of the VP (testgen suites as seeds)
``mutate``  XEMU-style mutation testing of a self-checking program
``gen``     emit a generated test program (torture/structured) to stdout
``stats``   re-render a saved telemetry event log (JSONL)
``serve``   run the batch simulation service (HTTP/JSON job API)
``submit``  submit a job to a running batch service
``profile`` guest-level sampling profile of a program on the VP
``top``     live terminal view of a running batch service
=========== ===========================================================

All commands take an assembly file (``-`` for stdin) and an optional
``--isa`` configuration string.  Every command additionally accepts the
telemetry flags ``--stats`` (print a metrics summary afterwards),
``--events-out FILE.jsonl`` (save the structured event log), and
``--trace-out FILE.json`` (export a Chrome trace loadable in
``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .asm import assemble
from .asm.listing import render_listing
from .isa.decoder import IsaConfig


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _isa(args) -> IsaConfig:
    # Importing repro.bmi registers the Zbb module so --isa rv32im_zbb works.
    import repro.bmi  # noqa: F401
    return IsaConfig.from_string(args.isa)


def _write_profile(profiler, program, isa, path) -> None:
    """Save a finished profile: ``.json`` keeps the structured form,
    anything else gets collapsed-stack lines for flamegraph tools."""
    profile = profiler.profile(program, isa=isa)
    if path.endswith(".json"):
        profile.save_json(path)
    else:
        profile.save_collapsed(path)
    hottest = profile.functions()[:1]
    where = (f"; hottest: {hottest[0]['function']} "
             f"({hottest[0]['fraction']:.0%})" if hottest else "")
    print(f"profile ({profile.total_samples:,} samples) written to "
          f"{path}{where}", file=sys.stderr)


def cmd_run(args) -> int:
    from .telemetry import current_telemetry
    from .vp.machine import Machine, MachineConfig
    from .vp.tracer import ExecutionTracer

    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    machine = Machine(MachineConfig(
        isa=isa, backend=args.backend,
        jit_threshold=args.jit_threshold,
        jit_trace_threshold=args.jit_trace_threshold))
    machine.load(program)
    if current_telemetry().enabled:
        machine.attach_telemetry()
    profiler = None
    if args.profile_out:
        from .observe import SamplingProfiler
        profiler = machine.add_plugin(SamplingProfiler())
    tracer = None
    if args.trace:
        tracer = machine.add_plugin(ExecutionTracer(limit=args.trace))
    result = machine.run(max_instructions=args.max_instructions)
    if profiler is not None:
        _write_profile(profiler, program, isa, args.profile_out)
    if machine.uart.output:
        print(machine.uart.output, end="")
        if not machine.uart.output.endswith("\n"):
            print()
    if tracer is not None:
        print(f"--- last {min(args.trace, tracer.count)} instructions ---")
        print(tracer.render(args.trace))
    print(f"stop: {result.stop_reason}  exit: {result.exit_code}  "
          f"instructions: {result.instructions}  cycles: {result.cycles}")
    jit = machine.jit_stats()
    if jit is not None:
        total = (jit["compiled_instructions"] + jit["interp_instructions"]
                 + jit["trace_instructions"])
        compiled = jit["compiled_instructions"] + jit["trace_instructions"]
        share = compiled / total if total else 0.0
        print(f"jit: {jit['blocks_compiled']} blocks compiled, "
              f"{jit['traces_compiled']} traces, "
              f"{share:.1%} of instructions in the compiled tiers"
              + (f", {jit['compile_failures']} compile failures"
                 if jit["compile_failures"] else "")
              + (f", {jit['trace_failures']} trace failures"
                 if jit["trace_failures"] else ""),
              file=sys.stderr)
    mem = machine.mem_stats()
    fast = mem["fastpath_loads"] + mem["fastpath_stores"]
    if fast or mem["fastpath_fallback_loads"] or \
            mem["fastpath_fallback_stores"]:
        print(f"mem: fastpath hit rate {mem['fastpath_hit_rate']:.1%} "
              f"({fast:,} fast, "
              f"{mem['fastpath_fallback_loads'] + mem['fastpath_fallback_stores']:,}"
              f" bus)", file=sys.stderr)
    return result.exit_code or 0


def cmd_disasm(args) -> int:
    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    print(render_listing(program, isa=isa))
    return 0


def _parse_icache(spec: str):
    from .vp.icache import ICacheConfig

    parts = spec.split(":")
    if len(parts) != 4:
        raise ValueError(
            "icache spec must be SIZE:LINE:WAYS:PENALTY, e.g. 1024:16:2:10"
        )
    size, line, ways, penalty = (int(p, 0) for p in parts)
    return ICacheConfig(size=size, line_size=line, ways=ways,
                        miss_penalty=penalty)


def cmd_wcet(args) -> int:
    from .wcet import analyze_program
    from .wcet.report import render_full

    isa = _isa(args)
    source = _read_source(args.source)
    icache = _parse_icache(args.icache) if args.icache else None
    analysis = analyze_program(source, isa=isa,
                               max_instructions=args.max_instructions,
                               edge_sensitive=args.edge_sensitive,
                               icache=icache,
                               cache_analysis=args.cache_analysis)
    print(render_full(analysis, name=args.source))
    if args.emit_cfg:
        print("\n--- QTA intermediate CFG ---")
        print(analysis.wcet_cfg.to_text())
    if args.emit_dot:
        from .wcet import wcet_cfg_to_dot

        print("\n--- Graphviz DOT ---")
        print(wcet_cfg_to_dot(analysis.wcet_cfg, name=args.source))
    return 0


def cmd_coverage(args) -> int:
    from .coverage import measure_coverage

    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    report = measure_coverage(program, isa=isa,
                              max_instructions=args.max_instructions)
    print(report.to_text(args.source))
    if args.missed:
        print(f"missed instruction types: {report.missed_insn_types()}")
        print(f"missed GPRs: {report.missed_gprs()}")
    return 0


def cmd_faults(args) -> int:
    from .faultsim import FaultCampaign, default_campaign_mutants
    from .telemetry import current_telemetry

    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    campaign = FaultCampaign(program, isa=isa,
                             checkpoints=not args.no_checkpoints,
                             digest_interval=args.digest_interval,
                             backend=args.backend)
    golden = campaign.golden()
    print(f"golden: exit {golden.exit_code}, "
          f"{golden.instructions} instructions")
    faults = default_campaign_mutants(
        program, isa=isa, mutants=args.mutants, seed=args.seed,
        golden_instructions=golden.instructions)
    on_progress = None
    if current_telemetry().enabled:
        def on_progress(progress):
            eta = progress.get("eta_seconds")
            eta_text = f"{eta:.0f}s" if eta is not None else "?"
            print(f"\r  {progress['done']}/{progress['total']} mutants  "
                  f"{progress['mutants_per_second']:.1f}/s  ETA {eta_text} ",
                  end="", file=sys.stderr, flush=True)
    result = campaign.run(faults, on_progress=on_progress, jobs=args.jobs)
    if on_progress is not None:
        print(file=sys.stderr)
    print(result.table())
    if args.profile_out:
        # Profile the fault-free workload itself (one extra golden-budget
        # run with the sampler attached) — the hot path mutants hammer.
        from .observe import SamplingProfiler
        from .vp.machine import Machine, MachineConfig

        machine = Machine(MachineConfig(
            isa=isa, backend=args.backend,
            jit_threshold=args.jit_threshold,
            jit_trace_threshold=args.jit_trace_threshold))
        machine.load(program)
        profiler = machine.add_plugin(SamplingProfiler())
        machine.run(max_instructions=campaign.golden_budget)
        _write_profile(profiler, program, isa, args.profile_out)
    return 0


def cmd_mutate(args) -> int:
    from .faultsim.mutation_testing import run_mutation_testing

    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    report = run_mutation_testing(program, isa=isa, sample=args.sample,
                                  seed=args.seed)
    print(report.table())
    return 0


def cmd_fuzz(args) -> int:
    import json

    from .fuzz import FuzzConfig, FuzzEngine, suite_seeds, trivial_seed
    from .telemetry import current_telemetry

    isa = _isa(args)
    config = FuzzConfig(
        iterations=args.iterations,
        seed=args.seed,
        jobs=args.jobs,
        batch_size=args.batch_size,
        max_instructions=args.max_instructions,
        minimize=not args.no_minimize,
        lockstep=args.lockstep,
        time_budget=args.time_budget,
        backend=args.backend,
    )
    engine = FuzzEngine(isa, config)
    profiler = None
    if args.profile_out:
        # Samples the in-process evaluator machine; with --jobs > 1 the
        # worker processes' share of executions is not attributed.
        from .observe import SamplingProfiler

        profiler = engine.evaluator.machine.add_plugin(SamplingProfiler())
        if args.jobs != 1:
            print("note: --profile-out samples the in-process evaluator "
                  "only; use --jobs 1 for complete attribution",
                  file=sys.stderr)
    if args.seeds == "trivial":
        seeds = trivial_seed(isa)
    else:
        seeds = suite_seeds(isa, seed=args.seed)
    on_progress = None
    if current_telemetry().enabled:
        def on_progress(progress):
            print(f"\r  {progress['execs']}/{progress['total']} mutants  "
                  f"corpus {progress['corpus_size']}  "
                  f"coverage {progress['coverage_elements']}  "
                  f"findings {progress['findings']}  "
                  f"{progress['execs_per_second']:.0f} execs/s ",
                  end="", file=sys.stderr, flush=True)
    result = engine.run(seeds, on_progress=on_progress)
    if on_progress is not None:
        print(file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
        print()
        print(result.triage.table())
    if profiler is not None:
        # Fuzz inputs have no symbol table; blocks attribute to hex pcs.
        _write_profile(profiler, None, isa, args.profile_out)
    return 0


def cmd_verify(args) -> int:
    import json

    from .telemetry import current_telemetry
    from .verify import DiffCampaign, VerifyCampaignConfig

    isa = _isa(args)
    config = VerifyCampaignConfig(
        corpus=args.corpus,
        matrix=args.matrix,
        seed=args.seed,
        max_instructions=args.max_instructions,
        repeats=args.repeats,
        checkpoint_split=args.checkpoint_split,
        minimize_evals=args.minimize_evals,
        jobs=args.jobs,
    )
    campaign = DiffCampaign(isa, config)
    total = len(campaign.corpus())
    on_progress = None
    if current_telemetry().enabled:
        pairs = len(campaign.matrix.pairs)

        def on_progress(done):
            print(f"\r  {done}/{total} programs x {pairs} pairs ",
                  end="", file=sys.stderr, flush=True)
    result = campaign.run(on_progress=on_progress)
    if on_progress is not None:
        print(file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.table())
    # Non-zero on any divergence so campaigns gate CI directly.
    return 0 if result.divergences == 0 else 1


def cmd_profile(args) -> int:
    from .observe import SamplingProfiler
    from .vp.machine import Machine, MachineConfig

    isa = _isa(args)
    program = assemble(_read_source(args.source), isa=isa)
    machine = Machine(MachineConfig(
        isa=isa, backend=args.backend,
        jit_threshold=args.jit_threshold,
        jit_trace_threshold=args.jit_trace_threshold))
    machine.load(program)
    profiler = machine.add_plugin(
        SamplingProfiler(interval=args.interval))
    result = machine.run(max_instructions=args.max_instructions)
    profile = profiler.profile(program, isa=isa)
    print(profile.render(limit=args.limit))
    if args.annotate:
        print()
        print(profile.annotated_disasm(limit=args.annotate))
    if args.collapsed_out:
        profile.save_collapsed(args.collapsed_out)
        print(f"collapsed stacks written to {args.collapsed_out} "
              "(feed to any flamegraph renderer)", file=sys.stderr)
    if args.json_out:
        profile.save_json(args.json_out)
        print(f"profile JSON written to {args.json_out}", file=sys.stderr)
    print(f"stop: {result.stop_reason}  exit: {result.exit_code}  "
          f"instructions: {result.instructions}", file=sys.stderr)
    jit = machine.jit_stats()
    if jit is not None:
        print(f"jit: {jit['blocks_compiled']} blocks compiled, "
              f"{jit['traces_compiled']} traces, "
              f"{jit['trace_instructions']:,} trace-tier / "
              f"{jit['compiled_instructions']:,} compiled-tier / "
              f"{jit['interp_instructions']:,} interp-tier instructions",
              file=sys.stderr)
    return 0


def cmd_top(args) -> int:
    from .observe import run_top

    iterations = 1 if args.once else args.frames
    return run_top(args.url, interval=args.interval, iterations=iterations)


def cmd_serve(args) -> int:
    from .serve import BatchService
    from .serve.api import ServiceServer

    service = BatchService(workers=args.workers,
                           queue_limit=args.queue_limit,
                           mode=args.mode)
    service.start()
    server = ServiceServer(service, host=args.host, port=args.port,
                           quiet=not args.verbose)
    print(f"repro batch service listening on {server.url} "
          f"({service.workers} {service.mode} workers, "
          f"queue limit {service.queue.limit}); observability: "
          f"{server.url}/metrics, /v1/events, /v1/fuzz/frontier "
          "(watch with `repro top`)", file=sys.stderr)
    server.install_signal_handlers()
    server.serve_forever()
    return 0


def cmd_coordinator(args) -> int:
    from .cluster import ClusterCoordinator, TenantQuotas

    default_limit = None
    limits = {}
    for spec in args.tenant_quota or []:
        name, sep, value = spec.partition("=")
        if sep:
            limits[name] = int(value)
        else:
            default_limit = int(name)
    quotas = TenantQuotas(default_limit=default_limit, limits=limits)
    coordinator = ClusterCoordinator(
        host=args.host, port=args.port, store_path=args.store,
        queue_limit=args.queue_limit, lease_timeout=args.lease_timeout,
        node_timeout=args.node_timeout, max_attempts=args.max_attempts,
        quotas=quotas)
    coordinator.start()
    store_note = f", store {args.store}" if args.store else ""
    print(f"repro cluster coordinator listening on {coordinator.url} "
          f"(queue limit {args.queue_limit}, lease timeout "
          f"{args.lease_timeout}s, node timeout {args.node_timeout}s"
          f"{store_note}); attach nodes with "
          f"`repro node --coordinator {coordinator.url}`", file=sys.stderr)
    coordinator.install_signal_handlers()
    coordinator.serve_forever()
    return 0


def cmd_node(args) -> int:
    import signal

    from .cluster import WorkerNode

    node = WorkerNode(args.coordinator, name=args.name,
                      capacity=args.capacity,
                      poll_interval=args.poll_interval)

    def _drain(signum, frame):  # noqa: ARG001 - signal signature
        print("draining: finishing current item, then exiting",
              file=sys.stderr)
        node.drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(f"repro worker node attaching to {args.coordinator} "
          f"(capacity {node.capacity})", file=sys.stderr)
    node.run()
    stats = node.stats()
    print(f"node exiting: executed {stats['executed']} item(s), "
          f"{stats['failed']} failed", file=sys.stderr)
    return 0


def cmd_cluster_status(args) -> int:
    from .cluster import CoordinatorClient

    client = CoordinatorClient(args.url)
    service = client.stats().get("service", {})
    cluster = service.get("cluster")
    if cluster is None:
        print(f"{args.url} is a plain batch service (no cluster section); "
              "use `repro top` to watch it", file=sys.stderr)
        return 1
    work = cluster.get("work", {})
    print(f"coordinator {args.url}  "
          f"accepting={service.get('accepting')}  "
          f"queue={service.get('queue_depth')}/{service.get('queue_limit')}")
    jobs = service.get("jobs", {})
    print("jobs   " + "  ".join(
        f"{state}:{jobs.get(state, 0)}"
        for state in ("pending", "running", "succeeded", "failed",
                      "cancelled", "timeout")))
    print(f"work   pending:{work.get('pending', 0)}  "
          f"leased:{work.get('leased', 0)}  done:{work.get('done', 0)}  "
          f"failed:{work.get('failed', 0)}  "
          f"requeued:{cluster.get('work_requeued', 0)}  "
          f"nodes_lost:{cluster.get('nodes_lost', 0)}")
    tenants = cluster.get("tenants") or {}
    if tenants:
        print("tenants " + "  ".join(
            f"{name}:{active}" for name, active in sorted(tenants.items())))
    nodes = cluster.get("nodes") or []
    if not nodes:
        print("nodes  (none attached)")
        return 0
    print(f"nodes  ({len(nodes)} attached)")
    header = (f"  {'id':<10} {'name':<16} {'state':<9} {'cap':>3} "
              f"{'exec':>6} {'fail':>5} {'hb_age':>7} {'uptime':>8}")
    print(header)
    for row in nodes:
        node_stats = row.get("stats") or {}
        state = "draining" if row.get("draining") else "live"
        print(f"  {row.get('id', '?'):<10} "
              f"{(row.get('name') or '-'):<16} "
              f"{state:<9} "
              f"{row.get('capacity', 0):>3} "
              f"{node_stats.get('executed', 0):>6} "
              f"{node_stats.get('failed', 0):>5} "
              f"{row.get('heartbeat_age_seconds', 0):>6.1f}s "
              f"{node_stats.get('uptime_seconds', 0):>7.1f}s")
    return 0


def cmd_submit(args) -> int:
    import json

    from .serve.client import BackpressureError, ServiceClient
    from .serve.executors import job_kinds

    # Fail fast client-side: the kind registry the service dispatches
    # from is importable here, so an unknown kind never costs an HTTP
    # round-trip (the server still validates for non-CLI clients).
    valid_kinds = job_kinds()
    if args.kind not in valid_kinds:
        print(f"error: unknown job kind {args.kind!r}; valid kinds: "
              f"{', '.join(valid_kinds)}", file=sys.stderr)
        return 2
    if args.kind == "fuzz":
        # Fuzz jobs need no source program: the seed corpus is generated
        # service-side from the testgen suites (or a trivial seed).
        payload = {"isa": args.isa, "iterations": args.iterations,
                   "seed": args.seed, "jobs": args.jobs,
                   "seeds": args.fuzz_seeds}
    elif args.kind == "verify":
        # Verify jobs likewise carry no source: the corpus spec names
        # the programs, rebuilt service-side deterministically.
        payload = {"isa": args.isa, "corpus": args.corpus,
                   "matrix": args.matrix, "seed": args.seed,
                   "jobs": args.jobs}
    else:
        payload = {"source": _read_source(args.source), "isa": args.isa}
    if args.kind in ("vp_run", "fault_campaign", "fuzz"):
        payload["backend"] = args.backend
    if args.kind == "fault_campaign":
        payload.update(mutants=args.mutants, seed=args.seed, jobs=args.jobs,
                       checkpoints=not args.no_checkpoints)
        if args.digest_interval is not None:
            payload["digest_interval"] = args.digest_interval
    trace_ctx = None
    if args.trace_out:
        if not args.wait:
            print("error: --trace-out requires --wait (the trace is "
                  "fetched after the job resolves)", file=sys.stderr)
            return 2
        from .observe import TraceContext

        trace_ctx = TraceContext.mint()
    client = ServiceClient(args.url)
    try:
        job = client.submit(args.kind, payload, priority=args.priority,
                            timeout_seconds=args.timeout,
                            max_retries=args.max_retries,
                            trace=trace_ctx.to_dict() if trace_ctx else None,
                            tenant=args.tenant, shards=args.shards)
    except BackpressureError as exc:
        print(f"rejected: {exc.message}", file=sys.stderr)
        return 3
    print(f"submitted {job['id']} ({job['kind']})", file=sys.stderr)
    if not args.wait:
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    done = client.wait(job["id"], timeout=args.wait_timeout,
                       poll_interval=args.poll_interval)
    if trace_ctx is not None:
        from .telemetry import export_chrome_trace

        events = client.job_events(job["id"])["events"]
        export_chrome_trace(events, args.trace_out)
        print(f"Chrome trace ({len(events)} events, trace "
              f"{trace_ctx.trace_id[:8]}…) written to {args.trace_out} "
              "(load in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    print(json.dumps(done, indent=2, sort_keys=True))
    return 0 if done["state"] == "succeeded" else 1


def cmd_stats(args) -> int:
    from .telemetry import EventLog, render_report

    log = EventLog.load_jsonl(args.events)
    print(render_report(log.events))
    return 0


def cmd_gen(args) -> int:
    isa = _isa(args)
    if args.kind == "torture":
        from .testgen import TortureConfig, TortureGenerator
        generator = TortureGenerator(
            isa, TortureConfig(length=args.length, seed=args.seed))
        print(generator.generate_source(args.seed))
    elif args.kind == "structured":
        from .testgen import StructuredGenerator
        generated = StructuredGenerator(isa).generate(args.seed)
        print(f"# expected checksum: {generated.expected_checksum:#010x}")
        print(generated.source)
    else:
        from .testgen import ArchSuiteGenerator, UnitSuiteGenerator
        generator = ArchSuiteGenerator(isa) if args.kind == "arch" \
            else UnitSuiteGenerator(isa, seed=args.seed)
        for name, source in generator.generate_sources():
            print(f"### {name}")
            print(source)
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scale4Edge RISC-V ecosystem tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def telemetry_flags(p):
        group = p.add_argument_group("telemetry")
        group.add_argument("--stats", action="store_true",
                           help="print a metrics summary after the command")
        group.add_argument("--events-out", metavar="FILE.jsonl",
                           help="save the structured event log as JSONL")
        group.add_argument("--trace-out", metavar="FILE.json",
                           help="export a Chrome trace "
                                "(chrome://tracing / Perfetto)")

    def common(p, with_budget=True):
        p.add_argument("source", help="assembly file, or - for stdin")
        p.add_argument("--isa", default="rv32imc_zicsr",
                       help="ISA configuration (default: rv32imc_zicsr)")
        if with_budget:
            p.add_argument("--max-instructions", type=int,
                           default=10_000_000)
        telemetry_flags(p)

    def profile_flag(p):
        p.add_argument("--profile-out", metavar="FILE",
                       help="save a guest sampling profile (.json = "
                            "structured, otherwise collapsed stacks for "
                            "flamegraph tools)")

    def backend_flags(p):
        p.add_argument("--backend", default="fastpath",
                       choices=("interp", "fastpath", "compiled"),
                       help="execution backend (compiled = tiered "
                            "template JIT; see docs/performance.md)")
        p.add_argument("--jit-threshold", type=int, default=8, metavar="N",
                       help="block executions before the compiled backend "
                            "promotes a block (default: 8)")
        p.add_argument("--jit-trace-threshold", type=int, default=16,
                       metavar="N",
                       help="compiled executions with a hot chain edge "
                            "before a block heads a multi-block trace "
                            "(default: 16)")

    p = sub.add_parser("run", help="assemble and run on the VP")
    common(p)
    p.add_argument("--trace", type=int, default=0, metavar="N",
                   help="print the last N executed instructions")
    profile_flag(p)
    backend_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("profile",
                       help="guest-level sampling profile on the VP")
    common(p)
    backend_flags(p)
    p.add_argument("--interval", type=int, default=1, metavar="N",
                   help="sample every N-th block execution (default 1 = "
                        "exact attribution)")
    p.add_argument("--limit", type=int, default=10, metavar="N",
                   help="rows in the function / hot-block tables")
    p.add_argument("--annotate", type=int, default=0, metavar="N",
                   nargs="?", const=3,
                   help="print annotated disassembly of the N hottest "
                        "blocks (bare flag: 3)")
    p.add_argument("--collapsed-out", metavar="FILE",
                   help="save collapsed-stack lines (flamegraph input)")
    p.add_argument("--json-out", metavar="FILE.json",
                   help="save the structured profile as JSON")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("disasm", help="objdump-style listing")
    common(p, with_budget=False)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("wcet", help="QTA WCET analysis + co-simulation")
    common(p)
    p.add_argument("--emit-cfg", action="store_true",
                   help="also print the QTA intermediate CFG")
    p.add_argument("--emit-dot", action="store_true",
                   help="also print the annotated CFG as Graphviz DOT")
    p.add_argument("--edge-sensitive", action="store_true",
                   help="outcome-sensitive edge annotation (tighter)")
    p.add_argument("--icache", metavar="SIZE:LINE:WAYS:PENALTY",
                   help="model an instruction cache, e.g. 1024:16:2:10")
    p.add_argument("--cache-analysis", action="store_true",
                   help="loop-persistence cache analysis (needs --icache)")
    p.set_defaults(func=cmd_wcet)

    p = sub.add_parser("coverage", help="instruction/register coverage")
    common(p)
    p.add_argument("--missed", action="store_true",
                   help="list uncovered instruction types and registers")
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("faults", aliases=["fault"],
                       help="fault-injection campaign")
    common(p, with_budget=False)
    p.add_argument("--mutants", type=int, default=100)
    p.add_argument("--seed", type=int, default=0,
                   help="campaign PRNG seed; the same seed always draws "
                        "the same fault list")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="mutant worker processes (1 = in-process, "
                        "0 = auto-detect CPUs; falls back to 1 if "
                        "workers cannot spawn)")
    p.add_argument("--no-checkpoints", action="store_true",
                   help="disable warm-checkpoint acceleration for "
                        "transient mutants (classification is identical "
                        "either way)")
    p.add_argument("--digest-interval", type=int, default=None, metavar="K",
                   help="golden-trace digest spacing in instructions for "
                        "early mutant classification (default: "
                        "golden_instructions/256, floor 64)")
    profile_flag(p)
    backend_flags(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("mutate", help="mutation-test a self-checking binary")
    common(p, with_budget=False)
    p.add_argument("--sample", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_mutate)

    p = sub.add_parser("fuzz", help="coverage-guided fuzzing of the VP")
    p.add_argument("--isa", default="rv32imc_zicsr",
                   help="ISA configuration (default: rv32imc_zicsr)")
    p.add_argument("--iterations", "-n", type=int, default=2000,
                   metavar="N", help="mutant executions to run")
    p.add_argument("--seed", type=int, default=0,
                   help="master PRNG seed; iteration-bounded runs with the "
                        "same seed produce identical corpora for any --jobs")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="evaluation worker processes (1 = in-process, "
                        "0 = auto-detect CPUs; results are identical "
                        "regardless of job count)")
    p.add_argument("--seeds", choices=("suites", "trivial"),
                   default="suites",
                   help="seed corpus: the three testgen suites, or a "
                        "single trivial instruction (default: suites)")
    p.add_argument("--batch-size", type=int, default=32, metavar="N",
                   help="mutants drawn per scheduling round")
    p.add_argument("--max-instructions", type=int, default=5000,
                   help="per-execution budget; exhaustion triages as hang")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip corpus input minimization")
    p.add_argument("--lockstep", action="store_true",
                   help="cross-check corpus adds with the lockstep "
                        "differential oracle (cache on vs off)")
    p.add_argument("--time-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock stop; trades the --jobs reproducibility "
                        "guarantee for bounded runtime")
    p.add_argument("--json", action="store_true",
                   help="print the full machine-readable result")
    profile_flag(p)
    backend_flags(p)
    telemetry_flags(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("verify",
                       help="differential verification campaign "
                            "(corpus x configuration matrix)")
    p.add_argument("--isa", default="rv32imc_zicsr",
                   help="ISA configuration (default: rv32imc_zicsr)")
    p.add_argument("--corpus", default="suites",
                   help="program corpus: 'suites' (the three testgen "
                        "suites), 'torture:N', 'fuzz:N' (mutated suite "
                        "seeds), or 'file:PATH' (JSONL word lists)")
    p.add_argument("--matrix", default="backends",
                   help="comma-separated axes (backends, cache, icache, "
                        "traces, checkpoint) and/or explicit 'a:b' "
                        "configuration pairs, e.g. interp:compiled "
                        "(default: backends)")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus PRNG seed; the same seed always builds "
                        "the same corpus")
    p.add_argument("--max-instructions", type=int, default=20_000,
                   help="per-run instruction budget (default: 20000)")
    p.add_argument("--repeats", type=int, default=4, metavar="N",
                   help="repeat-loop iterations wrapped around each "
                        "program so JIT tiers engage (default: 4)")
    p.add_argument("--checkpoint-split", type=int, default=200,
                   metavar="N",
                   help="checkpoint axis: snapshot/restore point in "
                        "instructions (default: 200)")
    p.add_argument("--minimize-evals", type=int, default=24, metavar="N",
                   help="lockstep re-runs budgeted per divergence "
                        "minimization (default: 24)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes over program ranges (1 = "
                        "in-process, 0 = auto-detect CPUs; results are "
                        "identical regardless of job count)")
    p.add_argument("--json", action="store_true",
                   help="print the full machine-readable report")
    telemetry_flags(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("gen", help="emit generated test programs")
    p.add_argument("kind", choices=("torture", "structured", "arch", "unit"))
    p.add_argument("--isa", default="rv32imc_zicsr")
    p.add_argument("--seed", type=int, default=0,
                   help="generator PRNG seed; the same seed emits a "
                        "byte-identical program")
    p.add_argument("--length", type=int, default=300,
                   help="torture: number of instructions")
    telemetry_flags(p)
    p.set_defaults(func=cmd_gen)

    p = sub.add_parser("serve", help="run the batch simulation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8972)
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="worker count (0 = auto-detect CPUs)")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="admission queue capacity (full queue -> HTTP 429)")
    p.add_argument("--mode", choices=("thread", "process"),
                   default="thread",
                   help="worker pool backing (process = spawn-safe "
                        "multiprocessing pool)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    telemetry_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("coordinator",
                       help="run the cluster coordinator (distributed "
                            "simulation fabric)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8973)
    p.add_argument("--store", metavar="FILE.jsonl", default=None,
                   help="persistent JSONL job store; jobs survive "
                        "coordinator restarts")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="admission queue capacity (full queue -> HTTP 429)")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="work lease expiry for non-heartbeating nodes")
    p.add_argument("--node-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="heartbeat silence before a node is declared dead "
                        "and its leases re-queued")
    p.add_argument("--max-attempts", type=int, default=3, metavar="N",
                   help="dispatch attempts per work item before the "
                        "owning job fails")
    p.add_argument("--tenant-quota", action="append", metavar="[NAME=]N",
                   help="active-job quota: NAME=N per tenant, bare N as "
                        "the default for all tenants (repeatable)")
    telemetry_flags(p)
    p.set_defaults(func=cmd_coordinator)

    p = sub.add_parser("node",
                       help="run a worker node attached to a coordinator")
    p.add_argument("--coordinator", default="http://127.0.0.1:8973",
                   help="coordinator base URL")
    p.add_argument("--name", default=None,
                   help="node display name (default: auto-assigned)")
    p.add_argument("--capacity", type=int, default=1, metavar="N",
                   help="work items leased per pull")
    p.add_argument("--poll-interval", type=float, default=0.2,
                   metavar="SECONDS", help="idle lease-poll period")
    telemetry_flags(p)
    p.set_defaults(func=cmd_node)

    p = sub.add_parser("cluster-status",
                       help="one-shot cluster snapshot (nodes, work, "
                            "quotas)")
    p.add_argument("--url", default="http://127.0.0.1:8973",
                   help="coordinator base URL")
    p.set_defaults(func=cmd_cluster_status, _no_telemetry_flags=True)

    p = sub.add_parser("submit",
                       help="submit a job to a running batch service")
    p.add_argument("source", help="assembly file, or - for stdin")
    p.add_argument("--url", default="http://127.0.0.1:8972",
                   help="service base URL")
    p.add_argument("--kind", default="vp_run",
                   help="job kind (vp_run, fault_campaign, coverage, "
                        "wcet, fuzz, verify, ...); unknown kinds fail "
                        "fast with the registry listing")
    p.add_argument("--isa", default="rv32imc_zicsr")
    p.add_argument("--corpus", default="suites",
                   help="verify: program corpus spec (source arg is "
                        "ignored; pass -)")
    p.add_argument("--matrix", default="backends",
                   help="verify: configuration matrix spec")
    p.add_argument("--mutants", type=int, default=100,
                   help="fault_campaign: mutant count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=2000, metavar="N",
                   help="fuzz: mutant executions (source arg is ignored; "
                        "pass -)")
    p.add_argument("--fuzz-seeds", choices=("suites", "trivial"),
                   default="suites", help="fuzz: seed corpus kind")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fault_campaign: in-job worker processes "
                        "(0 = auto-detect CPUs)")
    p.add_argument("--no-checkpoints", action="store_true",
                   help="fault_campaign: disable checkpoint acceleration")
    p.add_argument("--digest-interval", type=int, default=None, metavar="K",
                   help="fault_campaign: golden digest spacing")
    p.add_argument("--backend", default="fastpath",
                   choices=("interp", "fastpath", "compiled"),
                   help="vp_run/fault_campaign/fuzz: execution backend")
    p.add_argument("--priority", type=int, default=0,
                   help="larger dispatches sooner")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="cooperative run timeout")
    p.add_argument("--max-retries", type=int, default=0)
    p.add_argument("--wait", action="store_true",
                   help="poll until the job resolves and print the result")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.add_argument("--poll-interval", type=float, default=0.5)
    p.add_argument("--trace-out", metavar="FILE.json",
                   help="trace the job end-to-end (submit -> queue -> "
                        "worker -> VP) and export the merged Chrome "
                        "trace; requires --wait")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="cluster coordinator: split a fault_campaign/"
                        "fuzz/verify job into N shards (results stay "
                        "byte-identical)")
    p.add_argument("--tenant", default=None,
                   help="tenant name for coordinator per-tenant quotas")
    p.set_defaults(func=cmd_submit, _no_telemetry_flags=True)

    p = sub.add_parser("top",
                       help="live terminal view of a batch service")
    p.add_argument("--url", default="http://127.0.0.1:8972",
                   help="service base URL")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS", help="refresh period")
    p.add_argument("--frames", type=int, default=0, metavar="N",
                   help="stop after N refreshes (0 = until interrupted)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.set_defaults(func=cmd_top, _no_telemetry_flags=True)

    p = sub.add_parser("stats",
                       help="re-render a saved telemetry event log")
    p.add_argument("events",
                   help="JSONL event log written by --events-out")
    p.set_defaults(func=cmd_stats, _no_telemetry_flags=True)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_telemetry = (not getattr(args, "_no_telemetry_flags", False)
                       and (getattr(args, "stats", False)
                            or getattr(args, "events_out", None)
                            or getattr(args, "trace_out", None)))
    if not wants_telemetry:
        try:
            return args.func(args)
        except Exception as exc:  # surfaced as a clean CLI error
            print(f"error: {exc}", file=sys.stderr)
            return 2

    from .telemetry import (export_chrome_trace, render_report,
                            telemetry_session)

    with telemetry_session() as session:
        try:
            code = args.func(args)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Snapshot metrics into the event stream first so a saved JSONL
        # log is self-contained for `repro stats`.
        session.snapshot_metrics()
        if args.stats:
            print("\n=== telemetry ===")
            print(render_report(session.events.events,
                                session.metrics.to_dict(),
                                log_stats=session.events.stats()))
        try:
            if args.events_out:
                session.events.save_jsonl(args.events_out)
                print(f"event log written to {args.events_out}",
                      file=sys.stderr)
            if args.trace_out:
                export_chrome_trace(session.events.events, args.trace_out)
                print(f"Chrome trace written to {args.trace_out} "
                      "(load in chrome://tracing or ui.perfetto.dev)",
                      file=sys.stderr)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return code


if __name__ == "__main__":
    sys.exit(main())
