"""Coverage-guided mutant generation.

The fault space of even a small program is huge (every bit of every
register at every cycle).  The Scale4Edge platform prunes it with the
coverage analysis: faults are only generated for *registers the binary
actually accesses*, *memory it actually touches*, and *code it actually
executes* — anything else is trivially masked.  This module implements that
pruning plus seeded sampling down to a configurable budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..asm import Program
from ..coverage.report import CoverageReport
from .faults import (
    Fault,
    STUCK_AT_0,
    STUCK_AT_1,
    TARGET_CODE,
    TARGET_CSR,
    TARGET_GPR,
    TARGET_MEMORY,
    TRANSIENT,
)


@dataclass
class MutantBudget:
    """How many faults to sample per category (0 disables a category)."""

    code: int = 50
    gpr_transient: int = 50
    gpr_stuck: int = 30
    memory_transient: int = 20
    memory_stuck: int = 10
    csr_stuck: int = 0

    @property
    def total(self) -> int:
        return (self.code + self.gpr_transient + self.gpr_stuck
                + self.memory_transient + self.memory_stuck + self.csr_stuck)


def enumerate_code_faults(program: Program) -> List[Fault]:
    """Every bit of every text-segment byte, as permanent mutations."""
    addr, blob = program.text_segment
    faults = []
    for offset, byte in enumerate(blob):
        for bit in range(8):
            # Flip the bit by sticking it at its inverted value.
            kind = STUCK_AT_0 if byte & (1 << bit) else STUCK_AT_1
            faults.append(Fault(TARGET_CODE, addr + offset, bit, kind))
    return faults


def generate_mutants(
    program: Program,
    coverage: Optional[CoverageReport] = None,
    budget: Optional[MutantBudget] = None,
    golden_instructions: int = 1000,
    seed: int = 0,
) -> List[Fault]:
    """Sample a coverage-guided fault list for one program.

    ``coverage`` restricts register/memory faults to accessed state (pass
    the report from :func:`repro.coverage.measure_coverage`); without it
    the full architectural space is sampled.  ``golden_instructions`` is
    the fault-free run length, used as the trigger range for transients.
    """
    budget = budget or MutantBudget()
    rng = random.Random(seed)
    faults: List[Fault] = []

    # Code mutants: the exhaustive list, sampled down.
    all_code = enumerate_code_faults(program)
    if budget.code:
        count = min(budget.code, len(all_code))
        faults.extend(rng.sample(all_code, count))

    # Register faults.
    if coverage is not None and coverage.gprs_accessed:
        gprs: Sequence[int] = sorted(coverage.gprs_accessed - {0})
    else:
        gprs = list(range(1, 32))
    if gprs:
        for _ in range(budget.gpr_transient):
            faults.append(Fault(
                TARGET_GPR, rng.choice(gprs), rng.randrange(32), TRANSIENT,
                trigger=rng.randrange(max(1, golden_instructions)),
            ))
        for _ in range(budget.gpr_stuck):
            faults.append(Fault(
                TARGET_GPR, rng.choice(gprs), rng.randrange(32),
                rng.choice((STUCK_AT_0, STUCK_AT_1)),
            ))

    # Data-memory faults, restricted to the addressed memory space.
    if coverage is not None:
        touched = sorted(coverage.mem_read_addrs | coverage.mem_written_addrs)
    else:
        touched = []
    if not touched:
        # Fall back to the data segments of the image.
        text_addr, _ = program.text_segment
        touched = [
            seg_addr + i
            for seg_addr, blob in program.segments
            if seg_addr != text_addr
            for i in range(len(blob))
        ]
    if touched:
        for _ in range(budget.memory_transient):
            faults.append(Fault(
                TARGET_MEMORY, rng.choice(touched), rng.randrange(8),
                TRANSIENT, trigger=rng.randrange(max(1, golden_instructions)),
            ))
        for _ in range(budget.memory_stuck):
            faults.append(Fault(
                TARGET_MEMORY, rng.choice(touched), rng.randrange(8),
                rng.choice((STUCK_AT_0, STUCK_AT_1)),
            ))

    # CSR faults, restricted to accessed CSRs.
    if budget.csr_stuck and coverage is not None and coverage.csrs_accessed:
        csrs = sorted(coverage.csrs_accessed)
        for _ in range(budget.csr_stuck):
            faults.append(Fault(
                TARGET_CSR, rng.choice(csrs), rng.randrange(32),
                rng.choice((STUCK_AT_0, STUCK_AT_1)),
            ))
    return faults


def default_campaign_mutants(
    program: Program,
    isa=None,
    mutants: int = 100,
    seed: int = 0,
    golden_instructions: int = 1000,
) -> List[Fault]:
    """The standard coverage-guided mutant mix used by ``repro faults``
    and the batch service's ``fault_campaign`` job kind: a coverage run
    guides the sampling, and the mutant budget is split evenly over the
    five fault categories.  Sharing this one code path is what makes a
    service-executed campaign byte-identical to the CLI's.

    ``seed`` carries the toolchain-wide determinism contract (the same
    one behind ``repro gen torture --seed`` and ``repro fuzz --seed``):
    the same seed over the same program always draws the same fault
    list, so campaigns are replayable from their parameters alone."""
    from ..coverage import measure_coverage

    coverage = measure_coverage(program, isa=isa)
    per_category = max(1, mutants // 5)
    budget = MutantBudget(code=per_category, gpr_transient=per_category,
                          gpr_stuck=per_category,
                          memory_transient=per_category,
                          memory_stuck=per_category)
    return generate_mutants(program, coverage, budget,
                            golden_instructions=golden_instructions,
                            seed=seed)
