"""XEMU-style binary mutation testing.

Where the fault campaign asks "what does this fault do to the system?",
mutation testing asks the dual question the group's XEMU work poses:
"is this *test program* good enough to notice?"  A self-checking binary
(exit code 0 = pass) is mutated bit-by-bit; every mutant is executed; a
mutant is **killed** when the program no longer passes (nonzero exit,
trap, or hang).  The mutation score — killed / total — measures the
strength of the embedded checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..asm import Program
from ..isa.decoder import IsaConfig
from ..vp.cpu import STOP_EXIT
from ..vp.machine import Machine, MachineConfig
from .faults import Fault
from .injector import inject
from .mutants import enumerate_code_faults

KILLED_WRONG_EXIT = "wrong_exit"
KILLED_TRAP = "trap"
KILLED_HANG = "hang"
SURVIVED = "survived"


@dataclass
class MutationOutcome:
    fault: Fault
    verdict: str
    exit_code: Optional[int] = None


@dataclass
class MutationReport:
    """Result of a mutation-testing run against one self-checking binary."""

    outcomes: List[MutationOutcome]

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict != SURVIVED)

    @property
    def survivors(self) -> List[MutationOutcome]:
        return [o for o in self.outcomes if o.verdict == SURVIVED]

    @property
    def score(self) -> float:
        """Mutation score: fraction of mutants the checks killed."""
        if not self.outcomes:
            return 0.0
        return self.killed / self.total

    def by_verdict(self) -> dict:
        tally: dict = {}
        for outcome in self.outcomes:
            tally[outcome.verdict] = tally.get(outcome.verdict, 0) + 1
        return tally

    def table(self) -> str:
        lines = [f"{'verdict':<12} {'count':>7}"]
        lines.append("-" * 20)
        for verdict, count in sorted(self.by_verdict().items()):
            lines.append(f"{verdict:<12} {count:>7}")
        lines.append("-" * 20)
        lines.append(f"{'score':<12} {self.score:>6.1%}")
        return "\n".join(lines)


def run_mutation_testing(
    program: Program,
    isa: Optional[IsaConfig] = None,
    sample: Optional[int] = 200,
    seed: int = 0,
    budget_multiplier: int = 4,
    min_budget: int = 10_000,
    expected_exit: Optional[int] = 0,
) -> MutationReport:
    """Mutation-test a self-checking binary.

    ``sample`` caps the number of code mutants (``None`` = exhaustive,
    eight per text byte).  ``expected_exit`` is the passing exit code
    (default 0; pass ``None`` to accept whatever the fault-free run
    produces, e.g. a checksum).  The fault-free binary must pass,
    otherwise the score is meaningless.
    """
    isa = isa or IsaConfig.from_string(program.isa_name)

    machine = Machine(MachineConfig(isa=isa))
    machine.load(program)
    golden = machine.run(max_instructions=10_000_000)
    if golden.stop_reason != STOP_EXIT or (
            expected_exit is not None and golden.exit_code != expected_exit):
        raise ValueError(
            "mutation testing needs a passing self-checking binary "
            f"(got stop={golden.stop_reason}, exit={golden.exit_code})"
        )
    expected_exit = golden.exit_code
    budget = max(min_budget, golden.instructions * budget_multiplier)

    faults: Sequence[Fault] = enumerate_code_faults(program)
    if sample is not None and sample < len(faults):
        faults = random.Random(seed).sample(list(faults), sample)

    outcomes: List[MutationOutcome] = []
    for fault in faults:
        machine = Machine(MachineConfig(isa=isa))
        machine.load(program)
        inject(machine, fault)
        result = machine.run(max_instructions=budget)
        if result.stop_reason == STOP_EXIT:
            if result.exit_code == expected_exit:
                verdict = SURVIVED
            else:
                verdict = KILLED_WRONG_EXIT
        elif result.stop_reason in ("unhandled_trap", "trap_livelock"):
            verdict = KILLED_TRAP
        else:
            verdict = KILLED_HANG
        outcomes.append(MutationOutcome(fault, verdict, result.exit_code))
    return MutationReport(outcomes)
