"""Fault-injection campaigns: golden run, mutant simulation, classification.

The campaign runs the unmodified binary once (the *golden run*), then
simulates every mutant and classifies the outcome against the golden
reference:

========== ==========================================================
outcome    meaning
========== ==========================================================
masked     terminated normally with the golden result — fault benign
sdc        terminated normally with a *wrong* result (silent data
           corruption): the paper's "normal termination though executed
           on a faulty hardware model", the cases flagged for further
           countermeasure work
trap       stopped by a hardware-detected error (unhandled trap)
hang       exceeded the instruction budget / halted without exiting
========== ==========================================================
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..asm import Program
from ..isa.decoder import IsaConfig
from ..telemetry.session import resolve as _resolve_telemetry
from ..vp.cpu import STOP_EXIT
from ..vp.machine import Machine, MachineConfig, STOP_UNHANDLED_TRAP
from .checkpoint import CheckpointEngine
from .faults import Fault, TARGET_CODE, TRANSIENT
from .injector import InjectionError, inject

OUTCOME_MASKED = "masked"
OUTCOME_SDC = "sdc"
OUTCOME_TRAP = "trap"
OUTCOME_HANG = "hang"

OUTCOMES = (OUTCOME_MASKED, OUTCOME_SDC, OUTCOME_TRAP, OUTCOME_HANG)


@dataclass
class GoldenRun:
    """Reference behaviour of the fault-free binary."""

    exit_code: int
    uart_output: str
    instructions: int
    cycles: int


@dataclass
class MutantResult:
    fault: Fault
    outcome: str
    exit_code: Optional[int] = None
    trap_cause: Optional[int] = None
    instructions: int = 0


@dataclass
class CampaignResult:
    golden: GoldenRun
    results: List[MutantResult]
    elapsed_seconds: float

    @property
    def counts(self) -> Dict[str, int]:
        tally = {outcome: 0 for outcome in OUTCOMES}
        for result in self.results:
            tally[result.outcome] += 1
        return tally

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def mutants_per_second(self) -> float:
        # 0.0 (not inf) for instantaneous campaigns: inf breaks JSON
        # serialisation of derived reports and reads as nonsense anyway.
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total / self.elapsed_seconds

    @property
    def normal_termination_fraction(self) -> float:
        """Fraction of mutants that terminate normally (masked + sdc)."""
        if not self.total:
            return 0.0
        counts = self.counts
        return (counts[OUTCOME_MASKED] + counts[OUTCOME_SDC]) / self.total

    def of_outcome(self, outcome: str) -> List[MutantResult]:
        return [r for r in self.results if r.outcome == outcome]

    def breakdown_by_target(self) -> Dict[str, Dict[str, int]]:
        """Outcome counts per fault target (gpr/memory/code/...).

        The fault-analysis papers report which hardware structures are the
        dangerous ones; this is that table.
        """
        table: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            row = table.setdefault(
                result.fault.target,
                {outcome: 0 for outcome in OUTCOMES},
            )
            row[result.outcome] += 1
        return table

    def target_table(self) -> str:
        breakdown = self.breakdown_by_target()
        header = f"{'target':<8}" + "".join(
            f"{outcome:>8}" for outcome in OUTCOMES) + f"{'sdc rate':>10}"
        lines = [header, "-" * len(header)]
        for target in sorted(breakdown):
            row = breakdown[target]
            total = sum(row.values())
            sdc_rate = row[OUTCOME_SDC] / total if total else 0.0
            lines.append(
                f"{target:<8}" + "".join(
                    f"{row[outcome]:>8}" for outcome in OUTCOMES)
                + f"{sdc_rate:>9.1%}"
            )
        return "\n".join(lines)

    def table(self) -> str:
        counts = self.counts
        lines = [
            f"{'outcome':<10} {'count':>8} {'fraction':>10}",
            "-" * 30,
        ]
        for outcome in OUTCOMES:
            fraction = counts[outcome] / self.total if self.total else 0.0
            lines.append(f"{outcome:<10} {counts[outcome]:>8} {fraction:>9.1%}")
        lines.append("-" * 30)
        lines.append(f"{'total':<10} {self.total:>8}")
        lines.append(
            f"throughput: {self.mutants_per_second:.1f} mutants/s"
        )
        return "\n".join(lines)

    # -- serialization (consumed by the telemetry event-log exporter) --

    def to_dict(self) -> Dict:
        return {
            "golden": asdict(self.golden),
            "elapsed_seconds": self.elapsed_seconds,
            "results": [
                {
                    "fault": asdict(result.fault),
                    "outcome": result.outcome,
                    "exit_code": result.exit_code,
                    "trap_cause": result.trap_cause,
                    "instructions": result.instructions,
                }
                for result in self.results
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignResult":
        return cls(
            golden=GoldenRun(**data["golden"]),
            results=[
                MutantResult(
                    fault=Fault(**entry["fault"]),
                    outcome=entry["outcome"],
                    exit_code=entry.get("exit_code"),
                    trap_cause=entry.get("trap_cause"),
                    instructions=entry.get("instructions", 0),
                )
                for entry in data["results"]
            ],
            elapsed_seconds=data["elapsed_seconds"],
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))


class FaultCampaign:
    """Runs a fault list against one program on fresh machines.

    ``telemetry`` (see :mod:`repro.telemetry`) defaults to the
    process-wide session — disabled unless the caller or the CLI enabled
    one, in which case :meth:`run` emits per-mutant events, periodic
    progress records, and a campaign summary, and maintains the
    ``faultsim.campaign.*`` metrics.
    """

    def __init__(
        self,
        program: Program,
        isa: Optional[IsaConfig] = None,
        budget_multiplier: int = 4,
        min_budget: int = 10_000,
        golden_budget: int = 10_000_000,
        reuse_machine: bool = True,
        checkpoints: bool = True,
        digest_interval: Optional[int] = None,
        telemetry=None,
        backend: str = "fastpath",
    ) -> None:
        self.program = program
        self.isa = isa or IsaConfig.from_string(program.isa_name)
        #: Execution backend for golden and mutant runs alike (see
        #: :mod:`repro.vp.backends`).  Classifications are backend-
        #: independent; ``compiled`` buys throughput on long workloads.
        self.backend = backend
        self.budget_multiplier = budget_multiplier
        self.min_budget = min_budget
        self.golden_budget = golden_budget
        self._telemetry_arg = telemetry
        # Snapshot-based machine reuse: transient and binary-patch faults
        # leave no structural residue, so the loaded machine can be
        # checkpoint-restored instead of rebuilt — a large speedup for
        # big-RAM configurations.  Stuck-at faults replace register files
        # or wrap the RAM and always get a fresh machine.
        self.reuse_machine = reuse_machine
        # Checkpoint engine (see :mod:`repro.faultsim.checkpoint`):
        # transient mutants start from a warm snapshot at their trigger
        # point instead of replaying the fault-free prefix, and exit
        # early once they provably re-converge with the golden timeline.
        # Classifications are byte-identical either way.
        self.checkpoints = checkpoints
        self.digest_interval = digest_interval
        self._golden: Optional[GoldenRun] = None
        self._shared_machine: Optional[Machine] = None
        self._shared_snapshot = None
        self._engine: Optional[CheckpointEngine] = None
        self._engine_stats_pushed: Dict[str, int] = {}

    def _fresh_machine(self) -> Machine:
        return Machine(MachineConfig(isa=self.isa, backend=self.backend))

    def golden(self) -> GoldenRun:
        """Run (and cache) the fault-free reference."""
        if self._golden is None:
            machine = self._fresh_machine()
            machine.load(self.program)
            result = machine.run(max_instructions=self.golden_budget)
            if result.stop_reason != STOP_EXIT:
                raise ValueError(
                    "golden run did not terminate normally "
                    f"({result.stop_reason}); campaigns need a clean binary"
                )
            self._golden = GoldenRun(
                exit_code=result.exit_code,
                uart_output=machine.uart.output,
                instructions=result.instructions,
                cycles=result.cycles,
            )
        return self._golden

    @property
    def instruction_budget(self) -> int:
        golden = self.golden()
        return max(self.min_budget,
                   golden.instructions * self.budget_multiplier)

    def _reusable(self, fault: Fault) -> bool:
        return self.reuse_machine and (
            fault.kind == TRANSIENT or fault.target == TARGET_CODE
        )

    @property
    def _checkpoints_active(self) -> bool:
        # Checkpointing is a refinement of machine reuse: with reuse off,
        # every mutant gets a fresh machine and there is nothing to warm.
        return self.checkpoints and self.reuse_machine

    def _ensure_engine(self) -> CheckpointEngine:
        if self._engine is None:
            golden = self.golden()
            machine = self._fresh_machine()
            machine.load(self.program)
            self._engine = CheckpointEngine(
                machine,
                golden_exit_code=golden.exit_code,
                golden_instructions=golden.instructions,
                digest_interval=self.digest_interval,
            )
            # The engine machine doubles as the campaign's shared machine
            # (code faults restore its base snapshot and patch in place).
            self._shared_machine = machine
            self._shared_snapshot = self._engine.base_snapshot
        return self._engine

    def prepare_checkpoints(self, triggers: Sequence[int]) -> None:
        """Pre-build warm checkpoints at the given transient triggers.

        Called once per campaign (and once per parallel worker) so that
        every mutant restore is an exact hit; harmless no-op when
        checkpointing is inactive.
        """
        if not self._checkpoints_active or not triggers:
            return
        engine = self._ensure_engine()
        engine.prepare(triggers, self.instruction_budget)

    def _machine_for(self, fault: Fault) -> Machine:
        if not self._reusable(fault):
            machine = self._fresh_machine()
            machine.load(self.program)
            return machine
        if self._shared_machine is None:
            if self._checkpoints_active:
                self._ensure_engine()
            else:
                self._shared_machine = self._fresh_machine()
                self._shared_machine.load(self.program)
                self._shared_snapshot = self._shared_machine.snapshot()
                return self._shared_machine
        if self._engine is not None:
            # The caller is about to mutate the shared machine outside
            # the engine's control; its position bookkeeping is now void.
            self._engine.invalidate_position()
        self._shared_machine.restore(self._shared_snapshot)
        return self._shared_machine

    def _classify(self, fault: Fault, result, machine: Machine
                  ) -> MutantResult:
        golden = self.golden()
        if result.stop_reason == STOP_EXIT:
            same = (result.exit_code == golden.exit_code
                    and machine.uart.output == golden.uart_output)
            outcome = OUTCOME_MASKED if same else OUTCOME_SDC
            return MutantResult(fault, outcome, exit_code=result.exit_code,
                                instructions=result.instructions)
        if result.stop_reason in (STOP_UNHANDLED_TRAP, "trap_livelock"):
            return MutantResult(fault, OUTCOME_TRAP,
                                trap_cause=result.trap_cause,
                                instructions=result.instructions)
        return MutantResult(fault, OUTCOME_HANG,
                            instructions=result.instructions)

    def run_one(self, fault: Fault) -> MutantResult:
        golden = self.golden()
        if fault.kind == TRANSIENT and self._checkpoints_active:
            engine = self._ensure_engine()
            result, early = engine.run_transient(
                fault, self.instruction_budget)
            if early:
                # The mutant provably re-converged with (or never left)
                # the golden timeline: its result is the golden result.
                return MutantResult(fault, OUTCOME_MASKED,
                                    exit_code=golden.exit_code,
                                    instructions=golden.instructions)
            return self._classify(fault, result, engine.machine)
        machine = self._machine_for(fault)
        plugin = None
        try:
            plugin = inject(machine, fault)
        except InjectionError:
            # Not applicable to this binary (e.g. address out of range):
            # architecturally invisible, classify as masked.
            return MutantResult(fault, OUTCOME_MASKED)
        try:
            result = machine.run(max_instructions=self.instruction_budget)
        finally:
            if plugin is not None and machine is self._shared_machine:
                machine.remove_plugin(plugin)
        return self._classify(fault, result, machine)

    @property
    def telemetry(self):
        """The resolved telemetry session for this campaign."""
        return _resolve_telemetry(self._telemetry_arg)

    def checkpoint_stats(self) -> Dict[str, int]:
        """Cumulative ``faultsim.checkpoint.*`` counters (zeros when the
        engine never ran)."""
        if self._engine is None:
            return {key: 0 for key in CheckpointEngine.STAT_KEYS}
        return dict(self._engine.stats)

    def push_checkpoint_stats(self, telemetry) -> None:
        """Fold the engine's counters into the telemetry registry.

        Pushes only the delta since the last push, so repeated ``run()``
        calls on one campaign don't double-count.
        """
        stats = self.checkpoint_stats()
        namespace = telemetry.metrics.namespace("faultsim.checkpoint")
        for key, value in stats.items():
            delta = value - self._engine_stats_pushed.get(key, 0)
            if delta:
                namespace.counter(key).inc(delta)
        self._engine_stats_pushed = stats

    @staticmethod
    def _progress(done: int, total: int, elapsed: float) -> Dict:
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = total - done
        return {
            "done": done,
            "total": total,
            "elapsed_seconds": round(elapsed, 3),
            "mutants_per_second": round(rate, 2),
            "eta_seconds": round(remaining / rate, 1) if rate else None,
        }

    def run(
        self,
        faults: Sequence[Fault],
        on_progress: Optional[Callable[[Dict], None]] = None,
        progress_interval: float = 1.0,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
    ) -> CampaignResult:
        """Classify every fault; returns the aggregated result.

        ``jobs`` > 1 fans the fault list out to a multiprocessing worker
        pool (see :mod:`repro.faultsim.parallel`); the result ordering
        and classification are identical to the sequential run, and the
        engine falls back to in-process execution (with a warning) when
        workers cannot be spawned.  ``jobs=0`` auto-detects
        ``os.cpu_count()``; ``chunk_size`` overrides the work-stealing
        chunk granularity.

        ``on_progress`` (if given) is called with a progress dict
        (``done``/``total``/``mutants_per_second``/``eta_seconds``) at
        most every ``progress_interval`` seconds and once at the end;
        the same records land in the telemetry event log when enabled.
        """
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0:
            import os
            jobs = os.cpu_count() or 1
        if jobs > 1:
            from .parallel import run_parallel
            return run_parallel(self, faults, jobs=jobs,
                                chunk_size=chunk_size,
                                on_progress=on_progress,
                                progress_interval=progress_interval)
        telemetry = self.telemetry
        events = telemetry.events
        golden = self.golden()
        total = len(faults)
        # Build every warm checkpoint in one monotonic golden sweep before
        # classifying, so each transient mutant restores an exact hit no
        # matter what order the fault list arrives in.
        self.prepare_checkpoints(
            [fault.trigger for fault in faults if fault.kind == TRANSIENT])
        track = telemetry.enabled or on_progress is not None
        metrics = telemetry.metrics.namespace("faultsim.campaign")
        done_counter = metrics.counter("mutants_done")
        mutant_timer = metrics.timer("mutant_seconds")
        outcome_counters = {
            outcome: metrics.counter(f"outcome.{outcome}")
            for outcome in OUTCOMES
        }
        if telemetry.enabled:
            events.emit("campaign.started", total=total,
                        golden_instructions=golden.instructions,
                        instruction_budget=self.instruction_budget)
        start = time.perf_counter()
        last_report = start
        results: List[MutantResult] = []
        for index, fault in enumerate(faults):
            with mutant_timer:
                result = self.run_one(fault)
            results.append(result)
            done_counter.inc()
            outcome_counters[result.outcome].inc()
            if not track:
                continue
            if telemetry.enabled:
                events.emit("mutant.classified", index=index,
                            fault=fault.describe(), target=fault.target,
                            kind=fault.kind, outcome=result.outcome,
                            instructions=result.instructions)
            now = time.perf_counter()
            if now - last_report >= progress_interval:
                progress = self._progress(index + 1, total, now - start)
                if telemetry.enabled:
                    events.emit("campaign.progress", **progress)
                if on_progress is not None:
                    on_progress(progress)
                last_report = now
        elapsed = time.perf_counter() - start
        campaign_result = CampaignResult(golden, results, elapsed)
        if telemetry.enabled:
            self.push_checkpoint_stats(telemetry)
        if track:
            final = self._progress(total, total, elapsed)
            if on_progress is not None:
                on_progress(final)
            if telemetry.enabled:
                metrics.gauge("mutants_per_second").set(
                    campaign_result.mutants_per_second)
                events.emit(
                    "campaign.finished",
                    total=total,
                    counts=campaign_result.counts,
                    elapsed_seconds=round(elapsed, 3),
                    mutants_per_second=round(
                        campaign_result.mutants_per_second, 2),
                    normal_termination_fraction=round(
                        campaign_result.normal_termination_fraction, 4),
                )
        return campaign_result
