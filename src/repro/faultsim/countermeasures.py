"""Software-implemented fault-tolerance countermeasures.

The fault-analysis platform flags mutants that terminate normally with a
wrong result as "subject for further investigations and improvements by
the implementation of additional hardware or software safety
countermeasures".  This module implements the software side for a
representative edge workload (an array checksum) in three hardening
levels and the harness to quantify their effect:

* ``unprotected`` — the plain computation,
* ``dwc`` — duplication with comparison: compute twice in disjoint
  registers, compare, and signal *detection* on mismatch,
* ``tmr`` — triple modular redundancy: compute three times and
  majority-vote the result, *correcting* single corruptions (corrected
  runs surface as benign: the result matches the fault-free reference).

:func:`evaluate_countermeasures` runs identical fault populations against
all three and classifies each mutant as benign / detected / corrected /
silent-data-corruption / crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..asm import assemble
from ..isa.decoder import IsaConfig, RV32IMC_ZICSR
from .campaign import FaultCampaign, OUTCOME_MASKED, OUTCOME_SDC
from .faults import Fault, TARGET_GPR, TRANSIENT
from .mutants import MutantBudget, generate_mutants

#: Exit code a protected variant uses to signal "corruption detected".
DETECT_EXIT = 47

_DATA = """
.data
data:
    .word 0x1111, 0x2222, 0x3333, 0x4444
    .word 0x5555, 0x6666, 0x7777, 0x8888
    .word 0x9999, 0xAAAA, 0xBBBB, 0xCCCC
    .word 0xDDDD, 0xEEEE, 0xFFFF, 0x1234
"""

_EXIT = """
    li a7, 93
    ecall
"""

#: One checksum pass.  The template is instantiated per redundant copy
#: with disjoint registers so a single register fault cannot corrupt two
#: copies at once.
_PASS = """
    la {base}, data
    li {count}, 16
    li {acc}, 0
{label}:                 # @loopbound 16
    lw {tmp}, 0({base})
    add {acc}, {acc}, {tmp}
    slli {tmp}, {acc}, 1
    xor {acc}, {acc}, {tmp}
    addi {base}, {base}, 4
    addi {count}, {count}, -1
    bnez {count}, {label}
"""


def _pass(label: str, base: str, count: str, acc: str, tmp: str) -> str:
    return _PASS.format(label=label, base=base, count=count, acc=acc,
                        tmp=tmp)


UNPROTECTED = ("_start:" + _pass("p0", "s0", "s1", "a0", "t0")
               + "    andi a0, a0, 0x7FF\n" + _EXIT + _DATA)

DWC = ("_start:"
       + _pass("p0", "s0", "s1", "s2", "t0")
       + _pass("p1", "s4", "s5", "s6", "t1")
       + """
    bne s2, s6, detected
    andi a0, s2, 0x7FF
""" + _EXIT + f"""
detected:
    li a0, {DETECT_EXIT}
""" + _EXIT + _DATA)

TMR = ("_start:"
       + _pass("p0", "s0", "s1", "s2", "t0")
       + _pass("p1", "s4", "s5", "s6", "t1")
       + _pass("p2", "s8", "s9", "s10", "t2")
       + f"""
    # Majority vote: any two agreeing copies win.
    beq s2, s6, vote_a
    beq s2, s10, vote_a
    beq s6, s10, vote_b
    li a0, {DETECT_EXIT}     # no majority: detected, not correctable
    j done
vote_a:
    andi a0, s2, 0x7FF
    j done
vote_b:
    andi a0, s6, 0x7FF
done:
""" + _EXIT + _DATA)

VARIANTS = {
    "unprotected": UNPROTECTED,
    "dwc": DWC,
    "tmr": TMR,
}

# Countermeasure-aware verdicts.  TMR corrections are indistinguishable
# from naturally benign faults at the architectural interface (the result
# equals the golden one), so corrected runs count as ``benign`` — the
# *absence* of sdc under fault pressure is the correction evidence.
BENIGN = "benign"
DETECTED = "detected"
SDC = "sdc"
CRASH = "crash"


@dataclass
class CountermeasureResult:
    """Fault verdicts for one hardening variant."""

    variant: str
    golden_exit: int
    verdicts: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def rate(self, verdict: str) -> float:
        if not self.total:
            return 0.0
        return self.verdicts.get(verdict, 0) / self.total


def _classify(variant: str, outcome: str, exit_code, golden_exit) -> str:
    if outcome == OUTCOME_MASKED:
        return BENIGN
    if outcome == OUTCOME_SDC:
        if exit_code == DETECT_EXIT and variant != "unprotected":
            return DETECTED
        if exit_code == golden_exit:
            # Exit matches but something else (UART) differed; for these
            # UART-free kernels this cannot happen, keep it distinct.
            return BENIGN
        return SDC
    return CRASH


def _fault_population(count: int, golden_instructions: int,
                      seed: int) -> List[Fault]:
    """Transient GPR flips targeting the computation registers.

    The *same* logical population is applied to every variant: register
    choices stay within the registers all variants use, and triggers are
    expressed as fractions of the golden run so each variant is hit at
    comparable execution phases.
    """
    rng = random.Random(seed)
    faults = []
    registers = (8, 9, 18, 5)  # s0, s1, s2, t0: copy-0 state + temp
    for _ in range(count):
        faults.append(Fault(
            TARGET_GPR, rng.choice(registers), rng.randrange(32), TRANSIENT,
            trigger=rng.randrange(max(1, golden_instructions)),
        ))
    return faults


def evaluate_countermeasures(
    mutants: int = 150,
    seed: int = 0,
    isa: Optional[IsaConfig] = None,
) -> Dict[str, CountermeasureResult]:
    """Run the same fault pressure against all three hardening variants."""
    isa = isa or RV32IMC_ZICSR
    results: Dict[str, CountermeasureResult] = {}
    for variant, source in VARIANTS.items():
        program = assemble(source, isa=isa)
        campaign = FaultCampaign(program, isa=isa)
        golden = campaign.golden()
        faults = _fault_population(mutants, golden.instructions, seed)
        outcome = campaign.run(faults)
        result = CountermeasureResult(
            variant=variant, golden_exit=golden.exit_code, total=mutants)
        for mutant in outcome.results:
            verdict = _classify(variant, mutant.outcome, mutant.exit_code,
                                golden.exit_code)
            result.verdicts[verdict] = result.verdicts.get(verdict, 0) + 1
        results[variant] = result
    return results


def table(results: Dict[str, CountermeasureResult]) -> str:
    verdicts = (BENIGN, DETECTED, SDC, CRASH)
    header = f"{'variant':<14}" + "".join(f"{v:>10}" for v in verdicts)
    lines = [header, "-" * len(header)]
    for variant, result in results.items():
        lines.append(
            f"{variant:<14}" + "".join(
                f"{result.rate(v):>9.1%}" for v in verdicts)
        )
    return "\n".join(lines)
