"""Checkpoint engine for transient-fault campaigns.

Three cooperating mechanisms make per-mutant cost proportional to the
*divergent suffix* of the program instead of its whole length:

1. **Trigger-sorted warm checkpoints.**  One golden machine is
   fast-forwarded monotonically through the sorted fault trigger points
   (never restarting from reset); a snapshot is taken at each point, and
   every transient mutant starts from its trigger's snapshot with the bit
   flip applied immediately — the fault-free prefix ``[0, trigger)`` is
   executed once per campaign, not once per mutant.

2. **Dirty-page delta snapshots.**  Checkpoints along the golden timeline
   are RAM deltas chained to their predecessor (see
   :meth:`repro.vp.machine.Machine.snapshot`), and restores rewrite only
   the pages that can differ — O(pages touched), not O(RAM).

3. **Golden-trace early classification.**  During the golden pass the
   engine records a full architectural digest every ``digest_interval``
   executed-instruction attempts (pc, GPRs, FPRs, CSRs including
   cycle/instret, device state, and a hash of every page written since
   reset).  A mutant that re-converges with the golden timeline at a
   digest point is classified ``masked`` on the spot: the remainder of
   its execution is deterministic and identical to the golden run, so
   its final result *is* the golden result.

Equivalence contract: classifications are byte-identical to full-replay
runs.  Attempt counting mirrors
:class:`~repro.faultsim.injector.TransientInjectorPlugin` exactly (one
count per ``on_insn_exec`` invocation, i.e. per attempted instruction);
the digest compares complete architectural state plus every page either
timeline has written, so a match implies the mutant's future equals the
golden future; and resumed runs account instructions/cycles exactly like
uninterrupted ones (:meth:`Machine.run` with ``resume=True``).  The
engine refuses machines with an icache — its per-block fetch penalties
depend on translation-block partitioning, which a mid-block resume point
perturbs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..vp.cpu import RunResult, STOP_EXIT, StopRun
from ..vp.machine import Machine, MachineSnapshot
from ..vp.plugins import Plugin
from .faults import Fault, TRANSIENT
from .injector import apply_transient_flip

#: Stop recording memory digests once the cumulative written-page set
#: exceeds this many pages: hashing becomes a per-digest cost comparable
#: to just running the instructions, and early exits stop paying off.
DIGEST_PAGE_LIMIT = 1024


@dataclass
class Checkpoint:
    """Warm golden-timeline state at one trigger point.

    ``dirty_cum`` is the set of RAM pages written at least once between
    reset and this point — the only pages whose contents can differ from
    the load image, and therefore the only pages a state digest needs to
    hash.
    """

    trigger: int
    snapshot: MachineSnapshot
    dirty_cum: FrozenSet[int]


class _GoldenTracer(Plugin):
    """Counts instruction attempts on the golden machine, stops the run
    exactly at a requested attempt, and records periodic state digests."""

    name = "checkpoint-golden-tracer"

    def __init__(self, engine: "CheckpointEngine") -> None:
        self._engine = engine
        self.count = 0
        self.stop_at: Optional[int] = None

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        n = self.count
        if n == self.stop_at:
            # Stop *before* this instruction executes; on resume the hook
            # fires again for the same instruction and counting proceeds.
            raise StopRun
        engine = self._engine
        interval = engine.digest_interval
        if (engine._digests_enabled and n % interval == 0
                and n > engine._digest_watermark):
            engine._record_digest(n)
        self.count = n + 1


class _DigestWatcher(Plugin):
    """Compares mutant state against golden digests at the same attempt
    counts; a match means the mutant has re-converged — stop and classify
    masked."""

    name = "checkpoint-digest-watcher"

    def __init__(self, engine: "CheckpointEngine", start: int,
                 cum_base: FrozenSet[int]) -> None:
        self._engine = engine
        self.count = start
        self._cum_base = cum_base
        interval = engine.digest_interval
        self._next_check = (start // interval + 1) * interval
        self.matched = False

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        n = self.count
        if n == self._next_check:
            engine = self._engine
            self._next_check = n + engine.digest_interval
            expected = engine._digests.get(n)
            if expected is not None:
                cum = self._cum_base | engine.machine.ram.dirty_pages()
                if engine._state_tuple(tuple(sorted(cum))) == expected:
                    self.matched = True
                    raise StopRun
        self.count = n + 1


class CheckpointEngine:
    """Owns the golden machine, its checkpoint chain, and the digests.

    ``stats`` (keys in :data:`STAT_KEYS`) feed the
    ``faultsim.checkpoint.*`` telemetry counters.

    Build it with a freshly loaded machine, call :meth:`prepare` with the
    campaign's distinct transient triggers, then :meth:`run_transient`
    per fault.  The machine is shared — between mutant runs its state is
    whatever the last run left behind, and every positioning restores a
    stored checkpoint (cheap: delta-chain restore).
    """

    STAT_KEYS = ("snapshots", "restores", "pages_copied",
                 "instructions_skipped", "early_exits")

    def __init__(self, machine: Machine, golden_exit_code: int,
                 golden_instructions: int,
                 digest_interval: Optional[int] = None) -> None:
        if machine.cpu.icache is not None:
            raise ValueError(
                "checkpointing is incompatible with an icache model: "
                "fetch penalties depend on translation-block partitioning, "
                "which a mid-block resume point changes"
            )
        self.machine = machine
        self.golden_exit_code = golden_exit_code
        self.golden_instructions = golden_instructions
        if digest_interval is None:
            digest_interval = max(64, golden_instructions // 256)
        if digest_interval < 1:
            raise ValueError(
                f"digest_interval must be >= 1, got {digest_interval}")
        self.digest_interval = digest_interval
        self._tracer = _GoldenTracer(self)
        self._checkpoints: Dict[int, Checkpoint] = {}
        self._sorted_triggers: List[int] = []
        self._digests: Dict[int, tuple] = {}
        self._digests_enabled = True
        self._digest_watermark = -1
        #: Attempt count the machine currently sits at on the *golden*
        #: timeline, or None when the state is mutant-polluted.
        self._positioned: Optional[int] = None
        self._golden_complete = False
        #: Total attempts in the full golden run (valid once complete).
        self.total_attempts: Optional[int] = None
        self.stats = {key: 0 for key in self.STAT_KEYS}
        self._dirty_cum_base: FrozenSet[int] = frozenset()
        # Root of the chain: full snapshot of the freshly loaded machine.
        base = machine.snapshot()
        self._store(Checkpoint(0, base, frozenset()))
        self.base_snapshot = base
        self._positioned = 0

    def invalidate_position(self) -> None:
        """Forget where the machine sits: callers that mutate the shared
        machine outside the engine (e.g. code-fault patches) must call
        this so the next positioning restores instead of trusting state."""
        self._positioned = None

    def _restore_snapshot(self, snapshot, trigger: int) -> None:
        """Restore one stored snapshot with stats + telemetry accounting.

        Emits a ``checkpoint.restore`` span (free when telemetry is
        disabled) so traced service jobs show each warm restore as a
        slice in the exported Chrome trace.
        """
        from ..telemetry.session import current_telemetry

        events = current_telemetry().events
        with events.span("checkpoint.restore", trigger=trigger):
            pages = self.machine.restore(snapshot)
        self.stats["pages_copied"] += pages
        self.stats["restores"] += 1

    # -- golden-side machinery -----------------------------------------

    def _store(self, checkpoint: Checkpoint) -> None:
        self._checkpoints[checkpoint.trigger] = checkpoint
        i = bisect_right(self._sorted_triggers, checkpoint.trigger)
        self._sorted_triggers.insert(i, checkpoint.trigger)
        self.stats["snapshots"] += 1
        if checkpoint.snapshot.ram_pages is not None:
            self.stats["pages_copied"] += len(checkpoint.snapshot.ram_pages)

    def _record_digest(self, attempt: int) -> None:
        cum = self._dirty_cum_base | self.machine.ram.dirty_pages()
        if len(cum) > DIGEST_PAGE_LIMIT:
            self._digests_enabled = False
            return
        self._digests[attempt] = self._state_tuple(tuple(sorted(cum)))
        self._digest_watermark = attempt

    def _state_tuple(self, cum_sorted: Tuple[int, ...]) -> tuple:
        """Complete architectural state, with memory reduced to a hash of
        the pages either timeline has written (all other pages still hold
        the load image in both, by construction)."""
        machine = self.machine
        cpu = machine.cpu
        csrs = cpu.csrs
        digest = hashlib.blake2b(digest_size=16)
        page_bytes = machine.ram.page_bytes
        for index in cum_sorted:
            digest.update(page_bytes(index))
        return (
            cpu.pc,
            cpu.regs.snapshot(),
            cpu.fregs.snapshot(),
            tuple(sorted(csrs._regs.items())),
            csrs.cycle,
            csrs.instret,
            (machine.clint.mtime, machine.clint.mtimecmp, machine.clint.msip),
            (bytes(machine.uart.tx_log), tuple(machine.uart._rx_queue),
             machine.uart.interrupt_enable),
            (machine.gpio.out, machine.gpio.inputs,
             tuple(machine.gpio.out_history)),
            machine.exit_device.value,
            cum_sorted,
            digest.digest(),
        )

    def _nearest_at_or_below(self, trigger: int) -> Checkpoint:
        i = bisect_right(self._sorted_triggers, trigger) - 1
        return self._checkpoints[self._sorted_triggers[i]]

    def _forward_to(self, target: Optional[int], budget: int) -> RunResult:
        """Advance the golden machine (tracer attached) to attempt
        ``target``, or to program exit when ``target`` is None."""
        self._tracer.stop_at = target
        machine = self.machine
        machine.add_plugin(self._tracer)
        try:
            return machine.run(max_instructions=budget, resume=True)
        finally:
            machine.remove_plugin(self._tracer)
            self._tracer.stop_at = None

    def _position(self, trigger: int, budget: int
                  ) -> Tuple[FrozenSet[int], int]:
        """Put the machine at golden attempt ``trigger``.

        Returns ``(cumulative written-page set, instructions executed to
        get there)`` — zero when a stored checkpoint restored warm.
        Stores a checkpoint at new triggers so duplicates restore warm.
        """
        checkpoint = self._checkpoints.get(trigger)
        if checkpoint is not None:
            if self._positioned != trigger:
                self._restore_snapshot(checkpoint.snapshot, trigger)
                self._tracer.count = trigger
                self._positioned = trigger
            return checkpoint.dirty_cum, 0
        ancestor = self._nearest_at_or_below(trigger)
        if self._positioned != ancestor.trigger:
            self._restore_snapshot(ancestor.snapshot, ancestor.trigger)
            self._tracer.count = ancestor.trigger
        self._dirty_cum_base = ancestor.dirty_cum
        instret_before = self.machine.cpu.csrs.instret
        result = self._forward_to(trigger, budget)
        forwarded = self.machine.cpu.csrs.instret - instret_before
        if result.stop_reason == STOP_EXIT:
            # Golden exited before the trigger: the whole run is now
            # digest-covered and the trigger is unreachable.
            self._finish_golden()
            self._positioned = None
            return frozenset(), forwarded
        cum = frozenset(ancestor.dirty_cum
                        | self.machine.ram.dirty_pages())
        snap = self.machine.snapshot(parent=ancestor.snapshot)
        self._store(Checkpoint(trigger, snap, cum))
        self._positioned = trigger
        return cum, forwarded

    def _finish_golden(self) -> None:
        self.total_attempts = self._tracer.count
        self._golden_complete = True

    def prepare(self, triggers: Sequence[int], budget: int) -> None:
        """Sweep the golden machine once through ``triggers`` (sorted),
        snapshotting each, then on to program exit recording digests.

        Incremental: later calls with new triggers restore the nearest
        stored checkpoint at or below each and fast-forward the gap; the
        digest watermark keeps already-recorded ranges hash-free.
        """
        for trigger in sorted(set(triggers)):
            if trigger == 0 or trigger in self._checkpoints:
                continue
            if (self._golden_complete
                    and trigger >= self.total_attempts):
                continue
            self._position(trigger, budget)
        if not self._golden_complete:
            # Tail: run the golden timeline to exit so digests cover the
            # whole program (needed for early classification anywhere).
            if self._positioned is None:
                last = self._checkpoints[self._sorted_triggers[-1]]
                self._restore_snapshot(last.snapshot, last.trigger)
                self._tracer.count = last.trigger
                self._dirty_cum_base = last.dirty_cum
            else:
                current = self._checkpoints[self._positioned]
                self._dirty_cum_base = current.dirty_cum
            result = self._forward_to(None, budget)
            if result.stop_reason != STOP_EXIT:
                raise ValueError(
                    "golden replay did not terminate normally "
                    f"({result.stop_reason})"
                )
            self._finish_golden()
            self._positioned = None

    # -- mutant-side machinery -----------------------------------------

    def run_transient(self, fault: Fault, budget: int
                      ) -> Tuple[Optional[RunResult], bool]:
        """Simulate one transient mutant from its trigger's checkpoint.

        Returns ``(run_result, early)``.  ``early`` means the mutant
        re-converged with the golden timeline (or its trigger lies beyond
        program exit): the caller classifies it masked with the golden
        exit code and instruction count, no further simulation needed.
        """
        if fault.kind != TRANSIENT:
            raise ValueError("checkpoint engine only runs transient faults")
        trigger = fault.trigger
        if not self._checkpoints or not self._golden_complete:
            self.prepare([trigger], budget)
        if self._golden_complete and trigger >= self.total_attempts:
            # The flip would fire after the program exited: it never
            # fires, so the mutant *is* the golden run.
            self.stats["early_exits"] += 1
            self.stats["instructions_skipped"] += self.golden_instructions
            return None, True
        cum_base, forwarded = self._position(trigger, budget)
        machine = self.machine
        # Prefix instructions this mutant did NOT re-execute thanks to the
        # warm start (minus any fast-forward gap just filled).
        self.stats["instructions_skipped"] += max(
            0, machine.cpu.csrs.instret - forwarded)
        self._positioned = None  # the flip pollutes the golden timeline
        apply_transient_flip(machine.cpu, fault)
        watcher = _DigestWatcher(self, trigger, cum_base)
        machine.add_plugin(watcher)
        try:
            result = machine.run(max_instructions=budget, resume=True)
        finally:
            machine.remove_plugin(watcher)
        if watcher.matched:
            self.stats["early_exits"] += 1
            self.stats["instructions_skipped"] += max(
                0, self.golden_instructions - machine.cpu.csrs.instret)
            return None, True
        return result, False
