"""Fault injection machinery: applying a :class:`~repro.faultsim.faults.Fault`
to a live :class:`~repro.vp.machine.Machine`.

* **Code faults** patch the loaded binary (the XEMU-style binary mutant)
  and flush the translation cache.
* **Permanent register/CSR faults** interpose subclassed register files
  whose read ports force the stuck bit.
* **Permanent memory faults** wrap the RAM device on the bus.
* **Transient faults** install a countdown plugin that flips the target
  bit after the configured number of retired instructions.
"""

from __future__ import annotations

from typing import Optional

from ..isa.csr import CsrFile
from ..isa.registers import FPRegisterFile, RegisterFile
from ..vp.machine import Machine, RAM_BASE
from ..vp.memory import Device, Ram
from ..vp.plugins import Plugin
from .faults import (
    Fault,
    STUCK_AT_1,
    TARGET_CODE,
    TARGET_CSR,
    TARGET_FPR,
    TARGET_GPR,
    TARGET_MEMORY,
    TRANSIENT,
)


class InjectionError(Exception):
    """The fault cannot be applied to this machine/program combination."""


def _stuck(value: int, mask: int, stuck_one: bool) -> int:
    return (value | mask) if stuck_one else (value & ~mask)


class StuckRegisterFile(RegisterFile):
    """Register file whose read port forces one bit of one register."""

    def __init__(self, reg: int, mask: int, stuck_one: bool,
                 trace: bool = False) -> None:
        super().__init__(trace=trace)
        self._fault_reg = reg
        self._fault_mask = mask
        self._fault_one = stuck_one

    def read(self, num: int) -> int:
        value = super().read(num)
        if num == self._fault_reg:
            value = _stuck(value, self._fault_mask, self._fault_one)
        return value

    def raw_read(self, num: int) -> int:
        value = super().raw_read(num)
        if num == self._fault_reg:
            value = _stuck(value, self._fault_mask, self._fault_one)
        return value


class StuckFPRegisterFile(FPRegisterFile):
    def __init__(self, reg: int, mask: int, stuck_one: bool,
                 trace: bool = False) -> None:
        super().__init__(trace=trace)
        self._fault_reg = reg
        self._fault_mask = mask
        self._fault_one = stuck_one

    def read(self, num: int) -> int:
        value = super().read(num)
        if num == self._fault_reg:
            value = _stuck(value, self._fault_mask, self._fault_one)
        return value


class StuckCsrFile(CsrFile):
    def __init__(self, addr: int, mask: int, stuck_one: bool,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self._fault_addr = addr
        self._fault_mask = mask
        self._fault_one = stuck_one

    def read(self, addr: int) -> int:
        value = super().read(addr)
        if addr == self._fault_addr:
            value = _stuck(value, self._fault_mask, self._fault_one)
        return value

    def raw_read(self, addr: int) -> int:
        value = super().raw_read(addr)
        if addr == self._fault_addr:
            value = _stuck(value, self._fault_mask, self._fault_one)
        return value


class StuckRamWrapper(Device):
    """Bus wrapper forcing one bit of one byte of the wrapped RAM."""

    def __init__(self, inner: Ram, offset: int, mask: int,
                 stuck_one: bool) -> None:
        self.inner = inner
        self._offset = offset
        self._mask = mask
        self._one = stuck_one

    def load(self, offset: int, width: int) -> int:
        value = self.inner.load(offset, width)
        if offset <= self._offset < offset + width:
            byte_shift = 8 * (self._offset - offset)
            value = _stuck(value, self._mask << byte_shift, self._one)
        return value

    def store(self, offset: int, width: int, value: int) -> None:
        self.inner.store(offset, width, value)

    def tick(self, cycles: int) -> None:
        self.inner.tick(cycles)

    def __getattr__(self, name):
        # Forward write_bytes/read_bytes etc. to the real RAM.
        return getattr(self.inner, name)


def apply_transient_flip(cpu, fault: Fault) -> None:
    """Flip the fault's target bit in ``cpu``'s architectural state *now*.

    Shared by :class:`TransientInjectorPlugin` (which fires it after its
    countdown) and the checkpoint engine (which restores a warm snapshot
    at the trigger point and applies the flip immediately) — one
    implementation, so both paths produce identical mutants.
    """
    if fault.target == TARGET_GPR:
        cpu.regs.raw_write(fault.index,
                           cpu.regs.raw_read(fault.index) ^ fault.mask)
    elif fault.target == TARGET_FPR:
        cpu.fregs.write(fault.index,
                        cpu.fregs.read(fault.index) ^ fault.mask)
    elif fault.target == TARGET_CSR:
        cpu.csrs.raw_write(fault.index,
                           cpu.csrs.raw_read(fault.index) ^ fault.mask)
    elif fault.target == TARGET_MEMORY:
        offset = fault.index - RAM_BASE
        ram = cpu.bus.ram()
        byte = ram.load(offset, 1)
        ram.store(offset, 1, byte ^ fault.mask)
    else:
        raise InjectionError(
            f"transient fault target {fault.target} unsupported"
        )


class TransientInjectorPlugin(Plugin):
    """Flips the target bit once, after ``trigger`` retired instructions."""

    name = "fault-injector"

    def __init__(self, fault: Fault) -> None:
        if fault.kind != TRANSIENT:
            raise InjectionError("plugin only handles transient faults")
        self.fault = fault
        self._remaining = fault.trigger
        self.fired = False

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        if self.fired:
            return
        if self._remaining > 0:
            self._remaining -= 1
            return
        self.fired = True
        apply_transient_flip(cpu, self.fault)


def inject(machine: Machine, fault: Fault) -> Optional[Plugin]:
    """Apply ``fault`` to a loaded machine (before :meth:`Machine.run`).

    Returns the transient-injector plugin when one was installed (callers
    can check ``plugin.fired``), ``None`` for permanent faults.
    """
    if fault.kind == TRANSIENT:
        plugin = TransientInjectorPlugin(fault)
        machine.add_plugin(plugin)
        return plugin

    stuck_one = fault.kind == STUCK_AT_1
    if fault.target == TARGET_CODE or fault.target == TARGET_MEMORY:
        offset = fault.index - RAM_BASE
        if not 0 <= offset < machine.ram.size:
            raise InjectionError(
                f"fault address {fault.index:#x} outside RAM"
            )
        if fault.target == TARGET_CODE:
            # Binary mutation: patch the byte in place, once.
            byte = machine.ram.load(offset, 1)
            machine.ram.store(offset, 1, _stuck(byte, fault.mask, stuck_one))
            machine.cpu.flush_translation_cache()
        else:
            wrapper = StuckRamWrapper(machine.ram, offset, fault.mask,
                                      stuck_one)
            machine.bus.replace(RAM_BASE, wrapper)
        return None

    if fault.target == TARGET_GPR:
        faulty = StuckRegisterFile(fault.index, fault.mask, stuck_one,
                                   trace=machine.cpu.regs.trace)
        faulty.restore(machine.cpu.regs.snapshot())
        machine.cpu.regs = faulty
        return None
    if fault.target == TARGET_FPR:
        faulty_fpr = StuckFPRegisterFile(fault.index, fault.mask, stuck_one,
                                         trace=machine.cpu.fregs.trace)
        faulty_fpr.restore(machine.cpu.fregs.snapshot())
        machine.cpu.fregs = faulty_fpr
        return None
    if fault.target == TARGET_CSR:
        old = machine.cpu.csrs
        faulty_csr = StuckCsrFile(
            fault.index, fault.mask, stuck_one,
            modules=set(machine.decoder.config.modules),
            trace=old.trace,
        )
        faulty_csr.restore(old.snapshot())
        faulty_csr._time_source = old._time_source
        faulty_csr._mip_source = old._mip_source
        machine.cpu.csrs = faulty_csr
        return None
    raise InjectionError(f"unsupported fault: {fault}")
