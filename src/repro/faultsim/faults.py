"""Fault models: where a fault sits and how it behaves.

The platform supports the two fault classes of the Scale4Edge fault-effect
analysis — *transient* bitflips (a single event upset at a chosen point in
the execution) and *permanent* stuck-at faults — across four hardware
targets: GPRs, CSRs, data memory, and instruction memory (the latter being
the classic "binary mutant").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Fault kinds.
TRANSIENT = "transient"        # flip the bit once, at `trigger`
STUCK_AT_0 = "stuck_at_0"      # bit reads as 0 from the start
STUCK_AT_1 = "stuck_at_1"      # bit reads as 1 from the start

KINDS = (TRANSIENT, STUCK_AT_0, STUCK_AT_1)

# Fault targets.
TARGET_GPR = "gpr"
TARGET_FPR = "fpr"
TARGET_CSR = "csr"
TARGET_MEMORY = "memory"       # data memory byte (physical address)
TARGET_CODE = "code"           # instruction memory byte (physical address)

TARGETS = (TARGET_GPR, TARGET_FPR, TARGET_CSR, TARGET_MEMORY, TARGET_CODE)


@dataclass(frozen=True)
class Fault:
    """One injectable fault.

    Attributes:
        target: one of :data:`TARGETS`.
        index: register number (gpr/fpr), CSR address (csr), or physical
            byte address (memory/code).
        bit: bit position — 0..31 for registers/CSRs, 0..7 for memory and
            code bytes.
        kind: one of :data:`KINDS`.
        trigger: for transient faults, the dynamic instruction count after
            which the flip is applied (0 = before the first instruction).
            Ignored for stuck-at faults.
    """

    target: str
    index: int
    bit: int
    kind: str
    trigger: int = 0

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        bit_limit = 8 if self.target in (TARGET_MEMORY, TARGET_CODE) else 32
        if not 0 <= self.bit < bit_limit:
            raise ValueError(
                f"bit {self.bit} out of range for target {self.target}"
            )
        if self.target in (TARGET_GPR, TARGET_FPR) and not 0 <= self.index < 32:
            raise ValueError(f"register {self.index} out of range")
        if self.trigger < 0:
            raise ValueError("trigger must be non-negative")
        if self.target == TARGET_CODE and self.kind == TRANSIENT:
            raise ValueError(
                "code faults are permanent binary mutations; "
                "use a stuck-at kind"
            )

    @property
    def mask(self) -> int:
        return 1 << self.bit

    def describe(self) -> str:
        where = {
            TARGET_GPR: f"x{self.index}",
            TARGET_FPR: f"f{self.index}",
            TARGET_CSR: f"csr {self.index:#x}",
            TARGET_MEMORY: f"mem[{self.index:#010x}]",
            TARGET_CODE: f"code[{self.index:#010x}]",
        }[self.target]
        if self.kind == TRANSIENT:
            return f"transient flip of {where} bit {self.bit} @ insn {self.trigger}"
        stuck = "1" if self.kind == STUCK_AT_1 else "0"
        return f"{where} bit {self.bit} stuck at {stuck}"
