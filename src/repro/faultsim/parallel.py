"""Parallel fault-campaign engine: a multiprocessing mutant worker pool.

Campaigns are embarrassingly parallel after the golden run — every mutant
simulation is independent — so this module fans the fault list out to a
``multiprocessing`` pool:

* workers are **seeded once** with a picklable :class:`CampaignSpec`
  (program image, ISA name, budgets, the parent's golden reference) and
  build their own :class:`~repro.faultsim.campaign.FaultCampaign`;
* mutants are dispatched in **chunks through the pool's shared task
  queue** — idle workers steal the next chunk, so stragglers (hang
  mutants burning their full instruction budget) don't serialize the
  campaign;
* when checkpointing is active the work list is **trigger-sorted** so
  each chunk covers a contiguous band of checkpoint triggers (mutants
  sharing a trigger land together, warm restores stay local), the spec
  carries the campaign's distinct triggers so every worker builds its
  checkpoint chain in one golden sweep at init, and each chunk reports
  the worker's ``faultsim.checkpoint.*`` counter deltas for the merge;
* every chunk returns with its **original fault indices**, so the merged
  ``CampaignResult.results`` ordering is byte-identical to a sequential
  run;
* per-worker throughput (mutants/s, outcome counts) is merged into the
  parent session's :class:`~repro.telemetry.MetricsRegistry` and event
  log.

Entry point: :meth:`FaultCampaign.run(faults, jobs=N)
<repro.faultsim.campaign.FaultCampaign.run>` (or ``repro faults --jobs N``
on the command line).  If the platform cannot spawn worker processes the
engine warns and falls back to the sequential path instead of crashing.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..asm import Program

__all__ = ["CampaignSpec", "run_parallel", "default_chunk_size"]

#: Upper bound on mutants per chunk — small enough that work stealing can
#: rebalance around slow (hang/budget-exhausting) mutants.
MAX_CHUNK = 64

# Worker-process state, populated once by _worker_init.
_WORKER_CAMPAIGN = None


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to rebuild the campaign — plain picklable
    data, safe under the ``spawn`` start method."""

    program: Program
    isa_name: str
    budget_multiplier: int
    min_budget: int
    golden_budget: int
    reuse_machine: bool
    golden: "GoldenRun"
    checkpoints: bool = True
    digest_interval: Optional[int] = None
    #: Sorted distinct transient triggers — each worker pre-builds its
    #: checkpoint chain for these in one golden sweep at init.
    checkpoint_triggers: Tuple[int, ...] = ()
    backend: str = "fastpath"


def _spec_for(campaign, faults: Sequence = ()) -> CampaignSpec:
    from .faults import TRANSIENT

    triggers: Tuple[int, ...] = ()
    if campaign._checkpoints_active:
        triggers = tuple(sorted({
            fault.trigger for fault in faults if fault.kind == TRANSIENT
        }))
    return CampaignSpec(
        program=campaign.program,
        isa_name=campaign.isa.name,
        budget_multiplier=campaign.budget_multiplier,
        min_budget=campaign.min_budget,
        golden_budget=campaign.golden_budget,
        reuse_machine=campaign.reuse_machine,
        golden=campaign.golden(),
        checkpoints=campaign.checkpoints,
        digest_interval=campaign.digest_interval,
        checkpoint_triggers=triggers,
        backend=campaign.backend,
    )


def _worker_init(spec: CampaignSpec) -> None:
    """Pool initializer: seed this worker with its own campaign."""
    global _WORKER_CAMPAIGN
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)
    from ..isa.decoder import IsaConfig
    from .campaign import FaultCampaign

    campaign = FaultCampaign(
        spec.program,
        isa=IsaConfig.from_string(spec.isa_name),
        budget_multiplier=spec.budget_multiplier,
        min_budget=spec.min_budget,
        golden_budget=spec.golden_budget,
        reuse_machine=spec.reuse_machine,
        checkpoints=spec.checkpoints,
        digest_interval=spec.digest_interval,
        backend=spec.backend,
    )
    # Reuse the parent's golden reference: workers never re-run it.
    campaign._golden = spec.golden
    # One golden sweep builds every checkpoint this worker will need;
    # chunk arrival order then only ever triggers warm restores.
    campaign.prepare_checkpoints(spec.checkpoint_triggers)
    _WORKER_CAMPAIGN = campaign


def _run_chunk(
    job: Tuple[Tuple[int, ...], Sequence],
) -> Tuple[Tuple[int, ...], List, float, int, Dict[str, int]]:
    """Classify one chunk of faults.

    Returns ``(indices, results, busy_seconds, worker_pid, ckpt_stats)``
    — the original fault indices re-order the merged results, the pid
    attributes the chunk to its worker for the merged telemetry, and the
    checkpoint stats are this worker's *cumulative* counters (the parent
    diffs consecutive reports per pid).
    """
    import os

    indices, faults = job
    started = time.perf_counter()
    results = [_WORKER_CAMPAIGN.run_one(fault) for fault in faults]
    return (indices, results, time.perf_counter() - started, os.getpid(),
            _WORKER_CAMPAIGN.checkpoint_stats())


def default_chunk_size(total: int, jobs: int) -> int:
    """Chunks sized for load balancing: ~8 chunks per worker, capped."""
    if total <= 0:
        return 1
    return max(1, min(MAX_CHUNK, -(-total // (jobs * 8))))


def _make_pool(jobs: int, spec: CampaignSpec):
    """A worker pool on the cheapest available start method.

    ``fork`` (where offered) avoids re-importing the interpreter per
    worker; the job specs stay fully picklable so ``spawn`` platforms
    (macOS/Windows) work identically.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=jobs, initializer=_worker_init,
                    initargs=(spec,))


def run_parallel(
    campaign,
    faults: Sequence,
    jobs: int,
    chunk_size: Optional[int] = None,
    on_progress: Optional[Callable[[Dict], None]] = None,
    progress_interval: float = 1.0,
):
    """Run ``campaign`` over ``faults`` on ``jobs`` worker processes.

    Falls back to the sequential engine (with a warning) when worker
    processes cannot be created.  The returned
    :class:`~repro.faultsim.campaign.CampaignResult` matches the
    sequential result ordering and classification exactly.
    """
    from .campaign import CampaignResult, OUTCOMES

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    faults = list(faults)
    total = len(faults)
    golden = campaign.golden()  # validates the binary before forking
    if jobs == 1 or total <= 1:
        return campaign.run(faults, on_progress=on_progress,
                            progress_interval=progress_interval)

    spec = _spec_for(campaign, faults)
    try:
        pool = _make_pool(jobs, spec)
    except (OSError, ImportError, ValueError, RuntimeError) as exc:
        warnings.warn(
            f"could not start {jobs} campaign workers ({exc}); "
            "falling back to the sequential engine", RuntimeWarning,
            stacklevel=2)
        return campaign.run(faults, on_progress=on_progress,
                            progress_interval=progress_interval)

    telemetry = campaign.telemetry
    events = telemetry.events
    metrics = telemetry.metrics.namespace("faultsim.campaign")
    track = telemetry.enabled or on_progress is not None
    size = chunk_size or default_chunk_size(total, jobs)
    if spec.checkpoint_triggers:
        # Trigger-sorted dispatch: each chunk covers a contiguous band of
        # checkpoint triggers, so a worker's restores stay near the
        # snapshots it just touched.  Non-transients keep their relative
        # order at the front.
        from .faults import TRANSIENT

        def _dispatch_key(pair):
            index, fault = pair
            if fault.kind == TRANSIENT:
                return (1, fault.trigger, index)
            return (0, 0, index)

        work = sorted(enumerate(faults), key=_dispatch_key)
    else:
        work = list(enumerate(faults))
    chunks = [
        (tuple(index for index, _ in work[start:start + size]),
         [fault for _, fault in work[start:start + size]])
        for start in range(0, total, size)
    ]
    if telemetry.enabled:
        events.emit("campaign.started", total=total,
                    golden_instructions=golden.instructions,
                    instruction_budget=campaign.instruction_budget,
                    jobs=jobs, chunks=len(chunks), chunk_size=size)
        metrics.gauge("jobs").set(jobs)

    done_counter = metrics.counter("mutants_done")
    chunk_timer = metrics.timer("chunk_seconds")
    outcome_counters = {
        outcome: metrics.counter(f"outcome.{outcome}")
        for outcome in OUTCOMES
    }
    ordered: List = [None] * total
    worker_stats: Dict[int, Dict] = {}
    # Per-pid last-seen cumulative checkpoint counters: chunk reports are
    # cumulative, so the first delta also captures the worker-init
    # checkpoint build.
    ckpt_seen: Dict[int, Dict[str, int]] = {}
    ckpt_totals: Dict[str, int] = {}
    start = time.perf_counter()
    last_report = start
    done = 0
    try:
        for indices, results, busy_seconds, pid, ckpt_stats in \
                pool.imap_unordered(_run_chunk, chunks):
            for index, mutant in zip(indices, results):
                ordered[index] = mutant
            done += len(results)
            previous = ckpt_seen.get(pid, {})
            for key, value in ckpt_stats.items():
                delta = value - previous.get(key, 0)
                if delta:
                    ckpt_totals[key] = ckpt_totals.get(key, 0) + delta
            ckpt_seen[pid] = ckpt_stats
            done_counter.inc(len(results))
            chunk_timer.observe(busy_seconds)
            stats = worker_stats.setdefault(
                pid, {"mutants": 0, "seconds": 0.0,
                      "outcomes": {outcome: 0 for outcome in OUTCOMES}})
            stats["mutants"] += len(results)
            stats["seconds"] += busy_seconds
            for result in results:
                outcome_counters[result.outcome].inc()
                stats["outcomes"][result.outcome] += 1
            if not track:
                continue
            now = time.perf_counter()
            if now - last_report >= progress_interval:
                progress = campaign._progress(done, total, now - start)
                if telemetry.enabled:
                    events.emit("campaign.progress", **progress)
                if on_progress is not None:
                    on_progress(progress)
                last_report = now
    finally:
        pool.close()
        pool.join()
    elapsed = time.perf_counter() - start
    result = CampaignResult(golden, ordered, elapsed)
    if telemetry.enabled:
        # Merge the per-worker ledger into the session registry: stable
        # worker indices (sorted by pid), throughput, outcome mix.
        for index, pid in enumerate(sorted(worker_stats)):
            stats = worker_stats[pid]
            rate = (stats["mutants"] / stats["seconds"]
                    if stats["seconds"] > 0 else 0.0)
            worker_metrics = metrics.namespace(f"worker.{index}")
            worker_metrics.counter("mutants").inc(stats["mutants"])
            worker_metrics.gauge("busy_seconds").set(
                round(stats["seconds"], 6))
            worker_metrics.gauge("mutants_per_second").set(round(rate, 2))
            events.emit("campaign.worker", worker=index, pid=pid,
                        mutants=stats["mutants"],
                        busy_seconds=round(stats["seconds"], 3),
                        mutants_per_second=round(rate, 2),
                        outcomes=stats["outcomes"])
        if ckpt_totals:
            ckpt_metrics = telemetry.metrics.namespace("faultsim.checkpoint")
            for key, value in sorted(ckpt_totals.items()):
                ckpt_metrics.counter(key).inc(value)
    if track:
        final = campaign._progress(total, total, elapsed)
        if on_progress is not None:
            on_progress(final)
        if telemetry.enabled:
            metrics.gauge("mutants_per_second").set(result.mutants_per_second)
            events.emit(
                "campaign.finished",
                total=total,
                counts=result.counts,
                elapsed_seconds=round(elapsed, 3),
                mutants_per_second=round(result.mutants_per_second, 2),
                normal_termination_fraction=round(
                    result.normal_termination_fraction, 4),
                jobs=jobs,
            )
    return result
