"""Differential verification campaigns: corpus x configuration matrix.

A :class:`DiffCampaign` runs every program of a deterministic corpus
under every machine configuration a :class:`~repro.verify.matrix.VerifyMatrix`
names, captures a golden architectural digest per run
(:mod:`repro.verify.digest`), and compares each configured pair.  A
digest mismatch escalates automatically: the pair re-runs under
per-instruction lockstep to pinpoint the first diverging instruction,
and the witness program is minimized while its divergence signature is
preserved (:mod:`repro.verify.escalate`).

Determinism contract: a campaign is a pure function of ``(isa, config)``
— the corpus is seeded, the matrix parse is pure, per-program results
are independent, and escalation is deterministic — so ``jobs=N`` local
pools, the ``verify`` service kind, and cluster ``verify_shard`` ranges
all reproduce the single-process report byte-for-byte (wall-clock
``elapsed_seconds`` aside).

Corpus sources (``config.corpus``):

================ =====================================================
``suites``       the three testgen suites (arch + unit + torture), as
                 instruction-word lists — same corpus the fuzzer seeds
``torture:N``    N fresh seeded Torture programs
``fuzz:N``       a synthetic fuzz corpus: N mutants drawn from the
                 suite seeds with the fuzzer's ISA-aware mutator under
                 a seeded PRNG (the saved-corpus shape without a run)
``file:PATH``    a saved corpus: JSONL rows ``{"name", "words"}``
================ =====================================================

Every corpus program is wrapped in a counted repeat loop
(:class:`RepeatBuilder`) so hot-block tiers — the template JIT and its
trace fusion — actually engage on otherwise straight-line programs.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fuzz.executor import ProgramBuilder, words_from_program
from ..isa.decoder import IsaConfig
from ..isa.encoder import encode
from ..vp.cpu import STOP_MAX_INSNS
from ..vp.machine import Machine
from .digest import StateDigest, capture_state, compare_digests
from .escalate import escalate_divergence
from .matrix import ConfigPair, VerifyConfig, VerifyMatrix, parse_matrix
from .report import corpus_digest, render_verify, verify_report_dict

__all__ = [
    "DiffCampaign",
    "RepeatBuilder",
    "VerifyCampaignConfig",
    "VerifyResult",
    "build_corpus",
    "corpus_size_hint",
]


@dataclass(frozen=True)
class VerifyCampaignConfig:
    """Knobs for one differential verification campaign (picklable)."""

    corpus: str = "suites"          # suites | torture:N | fuzz:N | file:PATH
    matrix: str = "backends"        # see repro.verify.matrix.parse_matrix
    seed: int = 0                   # corpus PRNG seed
    max_instructions: int = 20_000  # per-run budget (both sides share it)
    repeats: int = 4                # repeat-loop iterations per program
    checkpoint_split: int = 200     # ckpt-resume: snapshot after N insns
    minimize_evals: int = 24        # lockstep re-runs per minimization
    jobs: int = 1                   # worker processes (0 = auto, 1 = inline)


class RepeatBuilder(ProgramBuilder):
    """A :class:`ProgramBuilder` that loops the body ``repeats`` times.

    Corpus programs are predominantly straight-line (Torture branches
    only jump forward), so without a loop no block ever gets hot and the
    compiled tier would never be exercised.  The wrapper brackets the
    body with a counted loop on ``x28``::

        addi x28, x0, repeats
    head:                       # body start
        <body words>
        addi x28, x28, -1
        beq  x28, x0, +8        # done -> skip the back-jump
        jal  x0, head           # JAL reach covers any body length

    A body that clobbers ``x28`` may loop a different number of times or
    hang — both deterministic, hence identical on the two sides of every
    pair (hangs stop at the shared instruction budget).
    """

    def __init__(self, isa: IsaConfig, repeats: int = 4) -> None:
        super().__init__(isa)
        self.repeats = repeats

    def build(self, words: Sequence[int]):
        if self.repeats <= 1:
            return super().build(words)
        enc = lambda name, *ops: encode(self.decoder, name, *ops)  # noqa: E731
        body_len = sum(4 if word & 0x3 == 0x3 else 2 for word in words)
        wrapped = (
            (enc("addi", 28, 0, self.repeats),)
            + tuple(words)
            + (enc("addi", 28, 28, -1),
               enc("beq", 28, 0, 8),
               enc("jal", 0, -(body_len + 8)))
        )
        return super().build(wrapped)


# ----------------------------------------------------------------------
# Corpus construction (pure functions of (isa, spec, seed))
# ----------------------------------------------------------------------

def _parse_counted(spec: str, prefix: str) -> Optional[int]:
    if not spec.startswith(prefix + ":"):
        return None
    count = spec[len(prefix) + 1:]
    if not count.isdigit() or int(count) < 1:
        raise ValueError(f"corpus {spec!r}: expected {prefix}:N with N >= 1")
    return int(count)


def corpus_size_hint(spec: str) -> Optional[int]:
    """The corpus size when it is cheap to know (``torture:N`` /
    ``fuzz:N``), else ``None`` — used to cap cluster shard counts
    without generating the corpus on the coordinator."""
    for prefix in ("torture", "fuzz"):
        count = _parse_counted(spec, prefix)
        if count is not None:
            return count
    return None


def build_corpus(isa: IsaConfig, spec: str, seed: int
                 ) -> List[Tuple[str, Tuple[int, ...]]]:
    """The deterministic ``(name, words)`` program list a spec names."""
    from ..fuzz.engine import suite_seeds

    if spec == "suites":
        return suite_seeds(isa, seed=seed)
    count = _parse_counted(spec, "torture")
    if count is not None:
        from ..testgen import TortureConfig, TortureGenerator

        generator = TortureGenerator(
            isa, TortureConfig(length=120, seed=seed))
        corpus = []
        for name, program in generator.generate_suite(count,
                                                      start_seed=seed):
            words = words_from_program(program, isa)
            if words:
                corpus.append((name, words))
        return corpus
    count = _parse_counted(spec, "fuzz")
    if count is not None:
        from ..fuzz.mutators import IsaMutator

        donors = [words for _name, words in suite_seeds(isa, seed=seed)]
        mutator = IsaMutator(isa)
        rng = random.Random(0x5EED_F00D + seed)
        return [(f"fuzz-{index:04d}",
                 mutator.mutate(donors[index % len(donors)], rng,
                                donors=donors))
                for index in range(count)]
    if spec.startswith("file:"):
        path = spec[len("file:"):]
        corpus = []
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                if not line.strip():
                    continue
                row = json.loads(line)
                words = tuple(int(word) for word in row["words"])
                if words:
                    corpus.append(
                        (str(row.get("name", f"file-{line_number:04d}")),
                         words))
        if not corpus:
            raise ValueError(f"corpus file {path!r} holds no programs")
        return corpus
    raise ValueError(
        f"unknown corpus {spec!r}; expected 'suites', 'torture:N', "
        f"'fuzz:N', or 'file:PATH'")


# ----------------------------------------------------------------------
# Per-configuration runner
# ----------------------------------------------------------------------

class ConfigRunner:
    """Runs corpus programs under one named configuration.

    One reused machine, restored to its pristine snapshot between
    programs (O(dirty pages)); a ``checkpoint`` configuration executes
    through snapshot -> roll forward -> restore -> resume, which must be
    digest-identical to a straight run (the determinism contract the
    snapshot round-trip suite pins per backend).
    """

    def __init__(self, isa: IsaConfig, config: VerifyConfig,
                 builder: ProgramBuilder, max_instructions: int,
                 checkpoint_split: int) -> None:
        self.config = config
        self.builder = builder
        self.max_instructions = max_instructions
        self.checkpoint_split = min(checkpoint_split,
                                    max(1, max_instructions // 2))
        self.machine = Machine(config.machine_config(isa))
        self._baseline = self.machine.snapshot()

    def run(self, words: Sequence[int]) -> StateDigest:
        machine = self.machine
        machine.restore(self._baseline)
        machine.load(self.builder.build(words))
        if not self.config.checkpoint:
            result = machine.run(max_instructions=self.max_instructions)
            return capture_state(machine, result,
                                 machine.ram.dirty_pages())
        # Checkpoint-restore-resume: run to the split point, snapshot,
        # roll forward to completion, roll *back*, and resume to the
        # same budget.  The cumulative written-page set is tracked
        # explicitly because snapshot/restore clear dirty tracking.
        result = machine.run(max_instructions=self.checkpoint_split)
        pages = set(machine.ram.dirty_pages())
        if result.stop_reason == STOP_MAX_INSNS:
            snap = machine.snapshot(parent=self._baseline)
            machine.run(max_instructions=self.max_instructions,
                        resume=True)
            pages |= machine.ram.dirty_pages()
            machine.restore(snap)
            result = machine.run(max_instructions=self.max_instructions,
                                 resume=True)
            pages |= machine.ram.dirty_pages()
        return capture_state(machine, result, pages)


# ----------------------------------------------------------------------
# Campaign result
# ----------------------------------------------------------------------

@dataclass
class VerifyResult:
    """Outcome of one campaign (or one merged set of shard ranges)."""

    meta: Dict[str, object]
    escalations: List[Dict[str, object]]
    elapsed_seconds: float

    @property
    def divergences(self) -> int:
        return len(self.escalations)

    def to_dict(self) -> Dict[str, object]:
        return verify_report_dict(self.meta, self.escalations,
                                  self.elapsed_seconds)

    def table(self) -> str:
        return render_verify(self.to_dict())


# ----------------------------------------------------------------------
# Worker pool (spawn-safe, same pattern as fuzz/faultsim)
# ----------------------------------------------------------------------

_WORKER_CAMPAIGN: Optional["DiffCampaign"] = None


def _worker_init(isa_name: str, config: VerifyCampaignConfig) -> None:
    global _WORKER_CAMPAIGN
    import repro.bmi  # noqa: F401 — register optional ISA modules (Zbb)

    _WORKER_CAMPAIGN = DiffCampaign(IsaConfig.from_string(isa_name),
                                    replace(config, jobs=1))


def _worker_range(bounds: Tuple[int, int]) -> List[Dict[str, object]]:
    lo, hi = bounds
    return _WORKER_CAMPAIGN.run_range(lo, hi)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------

class DiffCampaign:
    """Differential verification across a configuration matrix.

    ::

        campaign = DiffCampaign(RV32IMC_ZICSR,
                                VerifyCampaignConfig(matrix="backends"))
        result = campaign.run()
        assert result.divergences == 0
    """

    def __init__(self, isa: IsaConfig,
                 config: Optional[VerifyCampaignConfig] = None,
                 telemetry=None) -> None:
        from ..telemetry.session import resolve

        self.isa = isa
        self.config = config or VerifyCampaignConfig()
        self.matrix: VerifyMatrix = parse_matrix(self.config.matrix)
        self.builder = RepeatBuilder(isa, repeats=self.config.repeats)
        self.telemetry = resolve(telemetry)
        self._metrics = self.telemetry.metrics.namespace("verify")
        self._corpus: Optional[List[Tuple[str, Tuple[int, ...]]]] = None

    # -- corpus ---------------------------------------------------------

    def corpus(self) -> List[Tuple[str, Tuple[int, ...]]]:
        if self._corpus is None:
            self._corpus = build_corpus(self.isa, self.config.corpus,
                                        self.config.seed)
        return self._corpus

    def meta(self) -> Dict[str, object]:
        """The deterministic report header — shared verbatim by direct
        runs, service jobs, and the cluster's shard merge."""
        corpus = self.corpus()
        return {
            "isa": self.isa.name,
            "corpus": self.config.corpus,
            "matrix": self.matrix.spec,
            "seed": self.config.seed,
            "pairs": self.matrix.pair_names,
            "programs": len(corpus),
            "comparisons": len(corpus) * len(self.matrix.pairs),
            "corpus_digest": corpus_digest(corpus),
            "max_instructions": self.config.max_instructions,
            "repeats": self.config.repeats,
        }

    # -- execution ------------------------------------------------------

    def _runners(self) -> Dict[str, ConfigRunner]:
        return {
            config.name: ConfigRunner(
                self.isa, config, self.builder,
                self.config.max_instructions,
                self.config.checkpoint_split)
            for config in self.matrix.configs()
        }

    def run_range(self, lo: int, hi: int,
                  on_progress: Optional[Callable[[int], None]] = None
                  ) -> List[Dict[str, object]]:
        """Verify corpus programs ``[lo, hi)``; the escalation records.

        Per-program work is independent and deterministic, so any
        partition of ``range(len(corpus))`` concatenated back in index
        order reproduces the full-run escalation list exactly — the
        property local pools and cluster shards both rest on.
        """
        corpus = self.corpus()
        runners = self._runners()
        events = self.telemetry.events
        escalations: List[Dict[str, object]] = []
        for index in range(lo, min(hi, len(corpus))):
            name, words = corpus[index]
            digests: Dict[str, StateDigest] = {
                config_name: runner.run(words)
                for config_name, runner in runners.items()
            }
            self._metrics.counter("programs").inc()
            self._metrics.counter("comparisons").inc(
                len(self.matrix.pairs))
            for pair in self.matrix.pairs:
                mismatches = compare_digests(
                    digests[pair.a.name], digests[pair.b.name],
                    include_timing=pair.compare_cycles)
                if not mismatches:
                    continue
                self._metrics.counter("divergences").inc()
                if self.telemetry.enabled:
                    events.emit("verify.divergence", program=name,
                                index=index, pair=pair.name,
                                mismatches=len(mismatches))
                def digest_fn(candidate, _pair=pair):
                    return compare_digests(
                        runners[_pair.a.name].run(candidate),
                        runners[_pair.b.name].run(candidate),
                        include_timing=_pair.compare_cycles)

                record = escalate_divergence(
                    self.isa, self.builder, pair, index, name, words,
                    mismatches, digest_fn=digest_fn,
                    max_instructions=self.config.max_instructions,
                    minimize_evals=self.config.minimize_evals)
                escalations.append(record.to_dict())
                self._metrics.counter("escalations").inc()
                if self.telemetry.enabled:
                    events.emit("verify.escalated", program=name,
                                pair=pair.name, kind=record.kind,
                                signature=record.signature,
                                pc=record.pc,
                                lockstep_clean=record.lockstep_clean,
                                minimized_words=len(record.words))
            if on_progress is not None:
                on_progress(index + 1 - lo)
        return escalations

    def run(self,
            on_progress: Optional[Callable[[int], None]] = None,
            progress_interval: float = 0.2) -> VerifyResult:
        """Run the full campaign; ``jobs>1`` fans program ranges out to
        spawn-started worker processes (byte-identical results)."""
        started = time.perf_counter()
        meta = self.meta()
        # Touch every campaign counter up front so a clean run still
        # exposes the full verify.* series (zeroes) on /metrics.
        for name in ("programs", "comparisons", "divergences",
                     "escalations"):
            self._metrics.counter(name).inc(0)
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "verify.started", corpus=self.config.corpus,
                matrix=self.matrix.spec, seed=self.config.seed,
                programs=meta["programs"], pairs=len(self.matrix.pairs))
        total = meta["programs"]
        jobs = self.config.jobs
        if jobs == 0:
            import os

            jobs = os.cpu_count() or 1
        jobs = max(1, min(jobs, total)) if total else 1
        if jobs > 1:
            escalations = self._run_pooled(jobs, total)
        else:
            last = [started]

            def tick(done: int) -> None:
                if on_progress is None:
                    return
                now = time.perf_counter()
                if now - last[0] >= progress_interval:
                    last[0] = now
                    on_progress(done)

            escalations = self.run_range(0, total, on_progress=tick)
        elapsed = time.perf_counter() - started
        result = VerifyResult(meta=meta, escalations=escalations,
                              elapsed_seconds=elapsed)
        report = result.to_dict()
        self._metrics.gauge("findings").set(report["classes"])
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "verify.finished", programs=meta["programs"],
                comparisons=meta["comparisons"],
                divergences=result.divergences,
                findings=report["classes"],
                elapsed_seconds=round(elapsed, 6))
        return result

    def _run_pooled(self, jobs: int, total: int
                    ) -> List[Dict[str, object]]:
        """Contiguous index ranges over a worker pool, merged in order.

        ``fork`` where offered (cheap, like the fuzz/faultsim pools),
        the platform default elsewhere — the worker state is fully
        picklable either way.  Falls back to inline execution when
        workers cannot start (some sandboxes); the result is identical
        because ranges are independent and merged by range order.
        """
        import multiprocessing

        from ..serve.executors import shard_bounds

        bounds = [shard_bounds(total, jobs, index) for index in range(jobs)]
        bounds = [(lo, hi) for lo, hi in bounds if hi > lo]
        try:
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            with context.Pool(
                    processes=len(bounds), initializer=_worker_init,
                    initargs=(self.isa.name, self.config)) as pool:
                chunks = pool.map(_worker_range, bounds)
        except (OSError, ValueError, ImportError, RuntimeError):
            chunks = [self.run_range(lo, hi) for lo, hi in bounds]
        escalations: List[Dict[str, object]] = []
        for chunk in chunks:
            escalations.extend(chunk)
        return escalations
