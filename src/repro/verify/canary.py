"""Seeded-bug canary: prove the campaign catches a real bug class.

The bug this injects is exactly the one :mod:`repro.isa.semantics` warns
about in its docstring: an instruction's ``execute`` function changes
but its JIT emitter does not.  :func:`perturbed_semantics` patches the
named instruction's semantics globally (interpreted tiers — the interp
and fastpath backends, and the compiled backend's cold tier — all run
the perturbed function) while aliasing the original emitter onto the
perturbed function, so the compiled backend's *hot* tier keeps emitting
faithful code.  Any ``interp~compiled`` or ``fastpath~compiled`` pair
must then report a genuine cross-tier divergence — detected by digest,
pinpointed by lockstep to the perturbed instruction, and minimized.

Pairs that never reach the JIT tier (``interp~fastpath``) agree on the
perturbed semantics and stay silent: the canary specifically exercises
the tier boundary, which is where this bug class lives.

Used by the CI ``verify-smoke`` job and the escalation tests; never
imported by production campaign code.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..isa.decoder import Decoder, IsaConfig

__all__ = ["perturbed_semantics"]


@contextmanager
def perturbed_semantics(isa: IsaConfig, mnemonic: str = "add",
                        delta: int = 1):
    """Globally perturb ``mnemonic``'s semantics by ``+delta`` on the
    result register, keeping the JIT emitter faithful.  Restores the
    original semantics (and removes the emitter alias) on exit.

    Mutates shared spec tables — strictly a test/CI context manager.
    """
    from ..vp.jit import templates

    spec = Decoder(isa).spec_by_name.get(mnemonic)
    if spec is None:
        raise ValueError(f"{mnemonic!r} is not decodable under {isa.name}")
    original = spec.execute
    if original not in templates.EMITTERS:
        raise ValueError(
            f"{mnemonic!r} has no JIT emitter; the canary needs an "
            f"instruction the compiled tier specializes")

    def buggy(cpu, d, _original=original, _delta=delta):
        _original(cpu, d)
        cpu.regs.write(d.rd, cpu.regs.read(d.rd) + _delta)

    # InstructionSpec is frozen by design; the canary deliberately
    # reaches around that to model an in-place semantics change.
    object.__setattr__(spec, "execute", buggy)
    templates.EMITTERS[buggy] = templates.EMITTERS[original]
    try:
        yield spec
    finally:
        object.__setattr__(spec, "execute", original)
        del templates.EMITTERS[buggy]
