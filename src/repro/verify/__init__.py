"""Differential verification campaigns (V&V-in-the-loop).

Runs deterministic program corpora under a matrix of machine
configurations — execution backends, caches, JIT trace fusion,
checkpoint-restore — comparing full architectural state per program and
escalating every divergence to a lockstep-pinpointed, signature-
preserving minimized repro.  See ``docs/verification.md``.
"""

from .campaign import (DiffCampaign, RepeatBuilder, VerifyCampaignConfig,
                       VerifyResult, build_corpus, corpus_size_hint)
from .digest import StateDigest, capture_state, compare_digests
from .escalate import EscalationRecord, divergence_signature, \
    escalate_divergence
from .matrix import (AXES, CONFIGS, ConfigPair, VerifyConfig, VerifyMatrix,
                     parse_matrix)
from .report import corpus_digest, render_verify, verify_report_dict

__all__ = [
    "AXES",
    "CONFIGS",
    "ConfigPair",
    "DiffCampaign",
    "EscalationRecord",
    "RepeatBuilder",
    "StateDigest",
    "VerifyCampaignConfig",
    "VerifyConfig",
    "VerifyMatrix",
    "VerifyResult",
    "build_corpus",
    "capture_state",
    "compare_digests",
    "corpus_digest",
    "corpus_size_hint",
    "divergence_signature",
    "escalate_divergence",
    "parse_matrix",
    "render_verify",
    "verify_report_dict",
]
