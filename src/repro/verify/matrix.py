"""The verification matrix: named machine configurations and the DSL.

A differential campaign compares *pairs* of machine configurations over
the same program corpus.  Each named configuration
(:class:`VerifyConfig`) maps onto :class:`~repro.vp.machine.MachineConfig`
knobs — execution backend, translation-block cache, instruction cache,
JIT trace fusion — plus one knob the machine config cannot express: a
``checkpoint`` run executes through a mid-run snapshot/rollback/resume
cycle instead of straight through.

The ``--matrix`` DSL is a comma-separated list of axes::

    backends     interp ~ fastpath ~ compiled (all three pairings)
    cache        translation-block cache on vs off
    icache       instruction-cache model off vs on (timing-variant)
    traces       compiled tier with trace fusion off vs on
    checkpoint   straight-through vs checkpoint-restore-resumed

plus explicit ``a:b`` pair tokens between any two named configurations
(e.g. ``--matrix interp:compiled``).  Parsing is pure and deterministic:
the same spec string always yields the same ordered pair list, which is
one of the properties the cluster's byte-identical shard merge rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AXES",
    "CONFIGS",
    "ConfigPair",
    "VerifyConfig",
    "VerifyMatrix",
    "parse_matrix",
]


@dataclass(frozen=True)
class VerifyConfig:
    """One named machine configuration in the verification matrix."""

    name: str
    backend: str = "fastpath"
    block_cache: bool = True
    icache: bool = False
    jit_threshold: Optional[int] = None
    jit_trace_threshold: Optional[int] = None
    #: Run through a mid-run snapshot -> roll forward -> restore -> resume
    #: cycle instead of straight through (same MachineConfig as baseline).
    checkpoint: bool = False
    #: True when the config changes the *timing* model (cycle counts are
    #: then excluded from digest comparison for pairs touching it).
    timing_variant: bool = False

    def machine_config(self, isa):
        """The :class:`~repro.vp.machine.MachineConfig` this names."""
        from ..vp.icache import ICacheConfig
        from ..vp.machine import MachineConfig

        kwargs = {
            "isa": isa,
            "backend": self.backend,
            "block_cache_enabled": self.block_cache,
        }
        if self.icache:
            kwargs["icache"] = ICacheConfig()
        if self.jit_threshold is not None:
            kwargs["jit_threshold"] = self.jit_threshold
        if self.jit_trace_threshold is not None:
            kwargs["jit_trace_threshold"] = self.jit_trace_threshold
        return MachineConfig(**kwargs)


@dataclass(frozen=True)
class ConfigPair:
    """Two configurations to run and compare over every program."""

    a: VerifyConfig
    b: VerifyConfig

    @property
    def name(self) -> str:
        return f"{self.a.name}~{self.b.name}"

    @property
    def compare_cycles(self) -> bool:
        """Cycle counts only compare when neither side alters timing."""
        return not (self.a.timing_variant or self.b.timing_variant)


#: Named configurations the DSL can reference.  ``compiled`` promotes
#: blocks after one execution so the repeat-wrapped corpus programs
#: actually exercise the JIT tier; ``compiled+traces`` additionally fuses
#: hot chains into multi-block traces on the first hot edge.
CONFIGS: Dict[str, VerifyConfig] = {
    config.name: config
    for config in (
        VerifyConfig(name="interp", backend="interp"),
        VerifyConfig(name="fastpath", backend="fastpath"),
        VerifyConfig(name="compiled", backend="compiled",
                     jit_threshold=1, jit_trace_threshold=1_000_000),
        VerifyConfig(name="compiled+traces", backend="compiled",
                     jit_threshold=1, jit_trace_threshold=1),
        VerifyConfig(name="nocache", backend="fastpath", block_cache=False),
        VerifyConfig(name="icache", backend="fastpath", icache=True,
                     timing_variant=True),
        VerifyConfig(name="ckpt-resume", backend="fastpath",
                     checkpoint=True),
    )
}

#: Axis name -> the (a, b) config-name pairs it contributes.
AXES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "backends": (("interp", "fastpath"), ("interp", "compiled"),
                 ("fastpath", "compiled")),
    "cache": (("fastpath", "nocache"),),
    "icache": (("fastpath", "icache"),),
    "traces": (("compiled", "compiled+traces"),),
    "checkpoint": (("fastpath", "ckpt-resume"),),
}


@dataclass(frozen=True)
class VerifyMatrix:
    """A parsed matrix: the spec string and its ordered config pairs."""

    spec: str
    pairs: Tuple[ConfigPair, ...]

    @property
    def pair_names(self) -> List[str]:
        return [pair.name for pair in self.pairs]

    def configs(self) -> List[VerifyConfig]:
        """The distinct configurations the matrix touches, in first-use
        order — each is built (and its machine reused) exactly once."""
        seen: Dict[str, VerifyConfig] = {}
        for pair in self.pairs:
            for config in (pair.a, pair.b):
                seen.setdefault(config.name, config)
        return list(seen.values())


def _pair(a_name: str, b_name: str) -> ConfigPair:
    for name in (a_name, b_name):
        if name not in CONFIGS:
            raise ValueError(
                f"unknown verify configuration {name!r}; "
                f"known: {', '.join(sorted(CONFIGS))}")
    if a_name == b_name:
        raise ValueError(f"a pair needs two distinct configurations, "
                         f"got {a_name!r} twice")
    return ConfigPair(CONFIGS[a_name], CONFIGS[b_name])


def parse_matrix(spec: str) -> VerifyMatrix:
    """Parse a ``--matrix`` spec into its ordered, deduplicated pairs.

    Tokens are axis names (expanding to their pair lists) or explicit
    ``a:b`` pairs of named configurations.  Raises :class:`ValueError`
    naming the valid axes/configs on any unknown token.
    """
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ValueError(
            f"empty matrix spec; valid axes: {', '.join(AXES)}")
    pairs: List[ConfigPair] = []
    seen = set()
    for token in tokens:
        if ":" in token:
            a_name, _, b_name = token.partition(":")
            expanded = [_pair(a_name.strip(), b_name.strip())]
        elif token in AXES:
            expanded = [_pair(a, b) for a, b in AXES[token]]
        else:
            raise ValueError(
                f"unknown matrix axis {token!r}; valid axes: "
                f"{', '.join(AXES)} (or an explicit 'a:b' pair of "
                f"{', '.join(sorted(CONFIGS))})")
        for pair in expanded:
            if pair.name not in seen:
                seen.add(pair.name)
                pairs.append(pair)
    return VerifyMatrix(spec=",".join(tokens), pairs=tuple(pairs))
