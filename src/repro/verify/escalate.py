"""Escalation: digest divergence -> lockstep pinpoint -> minimized repro.

When a campaign finds two configurations disagreeing on the golden
digest of a program, the pair is automatically re-run under
per-instruction lockstep (:mod:`repro.vp.lockstep`) to pinpoint the
*first* diverging instruction — its index, pc, disassembly, and the
register delta.  The witness program is then minimized greedily while a
**divergence signature** is preserved, so the shrunk repro provably
still triggers the same class of bug:

* lockstep-confirmed divergence: ``kind : differing-registers : culprit
  mnemonic`` (e.g. ``registers:x10:add``);
* digest-only divergence (state lockstep does not step-compare, e.g.
  CSRs or device state): ``digest:`` plus the sorted set of differing
  digest fields.

Signatures are also the deduplication key: campaigns funnel escalations
through the fuzz :class:`~repro.fuzz.triage.TriageReport`, collapsing
every program that trips the same signature into one finding with a
single minimized repro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fuzz.executor import ProgramBuilder
from ..vp.lockstep import LockstepDivergence, run_lockstep
from ..vp.machine import Machine
from .matrix import ConfigPair

__all__ = ["EscalationRecord", "divergence_signature", "escalate_divergence"]

DigestFn = Callable[[Sequence[int]], List[str]]


@dataclass
class EscalationRecord:
    """One digest divergence, lockstep-pinpointed and minimized."""

    program_index: int
    program: str
    pair: str
    kind: str                     # lockstep kind, or "digest-only"
    signature: str                # dedup / minimization-preservation key
    detail: str
    instruction_index: Optional[int]
    pc: Optional[int]
    disasm: Optional[str]
    reg_delta: Tuple[Tuple[int, int, int], ...]
    digest_mismatch: List[str]
    lockstep_clean: bool
    words: Tuple[int, ...]        # minimized witness program
    minimized_from: int           # original word count
    minimize_evals_used: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "program_index": self.program_index,
            "program": self.program,
            "pair": self.pair,
            "kind": self.kind,
            "signature": self.signature,
            "detail": self.detail,
            "instruction_index": self.instruction_index,
            "pc": self.pc,
            "disasm": self.disasm,
            "reg_delta": [list(entry) for entry in self.reg_delta],
            "digest_mismatch": list(self.digest_mismatch),
            "lockstep_clean": self.lockstep_clean,
            "words": [int(word) for word in self.words],
            "code_hex": ProgramBuilder.encode_words(self.words).hex(),
            "minimized_from": self.minimized_from,
            "minimize_evals_used": self.minimize_evals_used,
        }


def divergence_signature(divergence: LockstepDivergence) -> str:
    """The class of a lockstep divergence, independent of register
    *values* and instruction index: kind, differing register names, and
    the culprit mnemonic."""
    parts = [divergence.kind]
    if divergence.reg_delta:
        parts.append(",".join(
            f"x{index}" for index, _a, _b in divergence.reg_delta))
    if divergence.disasm:
        parts.append(divergence.disasm.split()[0])
    return ":".join(parts)


def _digest_signature(mismatches: Sequence[str]) -> str:
    fields = sorted({entry.split(":", 1)[0] for entry in mismatches})
    return "digest:" + ",".join(fields)


def _run_pair_lockstep(isa, builder, pair: ConfigPair,
                       words: Sequence[int], max_instructions: int):
    """Fresh machines (lockstep mutates plugin state), one lockstep run."""
    primary = Machine(pair.a.machine_config(isa))
    secondary = Machine(pair.b.machine_config(isa))
    return run_lockstep(primary, secondary, builder.build(words),
                        max_instructions=max_instructions,
                        raise_on_divergence=False)


def _minimize(words: Sequence[int],
              predicate: Callable[[Tuple[int, ...]], bool],
              budget: int) -> Tuple[Tuple[int, ...], int]:
    """Greedy chunked trim (the fuzz engine's shape): drop spans while
    ``predicate`` (signature preserved) holds, within ``budget`` evals."""
    best = list(words)
    evals = 0
    chunk = max(1, len(best) // 2)
    while evals < budget:
        index = 0
        shrunk = False
        while index < len(best) and evals < budget:
            if len(best) <= 1:
                break
            candidate = best[:index] + best[index + chunk:]
            if not candidate:
                index += chunk
                continue
            evals += 1
            if predicate(tuple(candidate)):
                best = candidate
                shrunk = True
            else:
                index += chunk
        if chunk == 1 and not shrunk:
            break
        chunk = max(1, chunk // 2)
    return tuple(best), evals


def escalate_divergence(isa, builder, pair: ConfigPair,
                        program_index: int, program_name: str,
                        words: Sequence[int],
                        digest_mismatch: Sequence[str],
                        digest_fn: Optional[DigestFn] = None,
                        max_instructions: int = 20_000,
                        minimize_evals: int = 24) -> EscalationRecord:
    """Escalate one digest divergence into a pinpointed, minimized repro.

    ``digest_fn(words) -> mismatches`` re-checks a candidate under the
    campaign's own (restored, reused) machines; it is the minimization
    oracle for digest-only divergences, where lockstep sees nothing.
    """
    words = tuple(words)
    result = _run_pair_lockstep(isa, builder, pair, words,
                                max_instructions)
    if result.diverged and result.divergence is not None:
        divergence = result.divergence
        kind = divergence.kind
        signature = divergence_signature(divergence)

        def preserved(candidate: Tuple[int, ...]) -> bool:
            rerun = _run_pair_lockstep(isa, builder, pair, candidate,
                                       max_instructions)
            return (rerun.diverged and rerun.divergence is not None
                    and divergence_signature(rerun.divergence)
                    == signature)

        minimized, evals = _minimize(words, preserved, minimize_evals)
        # Re-derive the pinpoint on the minimized witness so index / pc /
        # disasm in the report describe the repro being shipped.
        final = _run_pair_lockstep(isa, builder, pair, minimized,
                                   max_instructions)
        if final.diverged and final.divergence is not None:
            divergence = final.divergence
        return EscalationRecord(
            program_index=program_index, program=program_name,
            pair=pair.name, kind=kind, signature=signature,
            detail=divergence.detail,
            instruction_index=divergence.index, pc=divergence.pc,
            disasm=divergence.disasm,
            reg_delta=tuple(divergence.reg_delta),
            digest_mismatch=list(digest_mismatch),
            lockstep_clean=False, words=minimized,
            minimized_from=len(words), minimize_evals_used=evals)

    # Lockstep-clean: the disagreement lives in state lockstep does not
    # step-compare (CSRs, memory, devices, timing).  Minimize against the
    # digest signature instead, when the campaign gave us the oracle.
    signature = _digest_signature(digest_mismatch)
    minimized, evals = words, 0
    if digest_fn is not None:

        def digest_preserved(candidate: Tuple[int, ...]) -> bool:
            return _digest_signature(digest_fn(candidate)) == signature

        minimized, evals = _minimize(words, digest_preserved,
                                     minimize_evals)
    return EscalationRecord(
        program_index=program_index, program=program_name,
        pair=pair.name, kind="digest-only", signature=signature,
        detail="; ".join(digest_mismatch),
        instruction_index=None, pc=None, disasm=None, reg_delta=(),
        digest_mismatch=list(digest_mismatch), lockstep_clean=True,
        words=minimized, minimized_from=len(words),
        minimize_evals_used=evals)
