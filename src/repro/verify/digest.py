"""Golden architectural-state digests of finished runs.

Adapts the fault-injection checkpoint engine's golden-digest model (PR 4,
:meth:`repro.faultsim.checkpoint.CheckpointEngine._state_tuple`) into a
standalone capture: the complete architectural state of a machine after a
run — pc, GPRs, FPRs, CSRs, retired-instruction count, device state —
with memory reduced to a hash of the pages the run has written (every
other page still holds the load image, by construction, so hashing the
written set is exact as long as both sides of a pair execute the same
stores — and executing *different* stores is itself a divergence).

Cycle counts and CLINT time are kept in separate fields so pairs whose
configurations legitimately alter the timing model (e.g. an instruction
cache) can compare pure architectural state while timing-identical pairs
compare cycles too.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = ["StateDigest", "capture_state", "compare_digests"]


@dataclass(frozen=True)
class StateDigest:
    """Complete post-run architectural state, hash-compressed memory."""

    stop_reason: str
    exit_code: Optional[int]
    trap_cause: Optional[int]
    instructions: int
    pc: int
    regs: Tuple[int, ...]
    fregs: Tuple[int, ...]
    csrs: Tuple[Tuple[int, int], ...]
    uart_tx: bytes
    gpio: tuple
    exit_value: Optional[int]
    pages: Tuple[int, ...]
    ram_digest: bytes
    # Timing-model-dependent state, compared only for timing-identical
    # configuration pairs:
    cycles: int
    clint: Tuple[int, int, int]

    def arch_key(self, include_timing: bool = True) -> tuple:
        key = (self.stop_reason, self.exit_code, self.trap_cause,
               self.instructions, self.pc, self.regs, self.fregs,
               self.csrs, self.uart_tx, self.gpio, self.exit_value,
               self.pages, self.ram_digest)
        if include_timing:
            key += (self.cycles, self.clint)
        return key

    def hexdigest(self, include_timing: bool = True) -> str:
        """A short stable hex digest of the (canonical) state tuple."""
        payload = repr(self.arch_key(include_timing)).encode()
        return hashlib.blake2b(payload, digest_size=16).hexdigest()


def capture_state(machine, result, pages: Iterable[int]) -> StateDigest:
    """Digest a machine's state after ``result`` finished on it.

    ``pages`` is the cumulative set of RAM page indices the run may have
    written (including the load image); callers that roll through
    checkpoints must pass the union of the dirty sets observed across
    every segment, since :meth:`~repro.vp.machine.Machine.restore` clears
    the dirty tracking.
    """
    cpu = machine.cpu
    csrs = cpu.csrs
    sorted_pages = tuple(sorted(set(pages)))
    ram = hashlib.blake2b(digest_size=16)
    page_bytes = machine.ram.page_bytes
    for index in sorted_pages:
        ram.update(page_bytes(index))
    return StateDigest(
        stop_reason=result.stop_reason,
        exit_code=result.exit_code,
        trap_cause=result.trap_cause,
        instructions=result.instructions,
        pc=cpu.pc,
        regs=cpu.regs.snapshot(),
        fregs=cpu.fregs.snapshot(),
        csrs=tuple(sorted(csrs._regs.items())),
        uart_tx=bytes(machine.uart.tx_log),
        gpio=(machine.gpio.out, machine.gpio.inputs,
              tuple(machine.gpio.out_history)),
        exit_value=machine.exit_device.value,
        pages=sorted_pages,
        ram_digest=ram.digest(),
        cycles=csrs.cycle,
        clint=(machine.clint.mtime, machine.clint.mtimecmp,
               machine.clint.msip),
    )


def compare_digests(a: StateDigest, b: StateDigest,
                    include_timing: bool = True) -> List[str]:
    """Field-level mismatch descriptions; empty when the states agree."""
    mismatches: List[str] = []
    for field in ("stop_reason", "exit_code", "trap_cause",
                  "instructions", "pc", "exit_value"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            mismatches.append(f"{field}: {va!r} vs {vb!r}")
    if a.regs != b.regs:
        diffs = [f"x{i}: {ra:#x} vs {rb:#x}"
                 for i, (ra, rb) in enumerate(zip(a.regs, b.regs))
                 if ra != rb]
        mismatches.append("regs: " + "; ".join(diffs))
    if a.fregs != b.fregs:
        mismatches.append("fregs differ")
    if a.csrs != b.csrs:
        ca, cb = dict(a.csrs), dict(b.csrs)
        diffs = [f"csr {addr:#x}: {ca.get(addr)!r} vs {cb.get(addr)!r}"
                 for addr in sorted(set(ca) | set(cb))
                 if ca.get(addr) != cb.get(addr)]
        mismatches.append("csrs: " + "; ".join(diffs))
    if a.uart_tx != b.uart_tx:
        mismatches.append(f"uart tx: {a.uart_tx!r} vs {b.uart_tx!r}")
    if a.gpio != b.gpio:
        mismatches.append("gpio state differs")
    if a.pages != b.pages or a.ram_digest != b.ram_digest:
        mismatches.append(
            f"ram: {len(a.pages)} written pages "
            f"{a.ram_digest.hex()[:12]} vs {len(b.pages)} pages "
            f"{b.ram_digest.hex()[:12]}")
    if include_timing:
        if a.cycles != b.cycles:
            mismatches.append(f"cycles: {a.cycles} vs {b.cycles}")
        if a.clint != b.clint:
            mismatches.append(f"clint: {a.clint} vs {b.clint}")
    return mismatches
