"""Campaign reports: deduplicated findings and the shared envelope.

:func:`verify_report_dict` is *the* report builder — direct campaign
runs, the ``verify`` service executor, and the cluster's shard merge all
produce their JSON through this one function, which is what makes a
fixed-seed campaign byte-identical across all three execution paths
(``elapsed_seconds`` aside; parity comparisons strip it).

Escalation records are funnelled through the fuzz
:class:`~repro.fuzz.triage.TriageReport`, keyed by ``pair + divergence
signature``: ten programs tripping the same wrong-emitter bug collapse
into one finding carrying a count and a single minimized repro.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from ..fuzz.triage import TriageReport

__all__ = ["corpus_digest", "render_verify", "verify_report_dict"]

#: Pinpoint fields copied from a class's first escalation record onto
#: the deduplicated finding.
_PINPOINT_FIELDS = (
    "pair", "kind", "signature", "program", "program_index",
    "instruction_index", "pc", "disasm", "reg_delta", "digest_mismatch",
    "lockstep_clean", "minimized_from", "minimize_evals_used",
)


def corpus_digest(corpus: Sequence[Tuple[str, Sequence[int]]]) -> str:
    """A short stable digest of a ``(name, words)`` program corpus, so
    reports (and parity checks) can assert two runs saw the same input."""
    payload = repr([(name, tuple(words)) for name, words in corpus])
    return hashlib.blake2b(payload.encode(),
                           digest_size=16).hexdigest()


def verify_report_dict(meta: Dict[str, object],
                       escalations: Sequence[Dict[str, object]],
                       elapsed_seconds: float) -> Dict[str, object]:
    """The canonical campaign report for ``meta`` + escalation records.

    Pure function of its inputs (except the caller-measured
    ``elapsed_seconds``): triage-deduplicates the escalations by
    ``pair signature`` and enriches each finding class with the
    pinpoint data of its first witness.
    """
    triage = TriageReport()
    first_by_detail: Dict[str, Dict[str, object]] = {}
    for record in escalations:
        detail = f"{record['pair']} {record['signature']}"
        first_by_detail.setdefault(detail, record)
        triage.record_divergence(
            record["words"], detail=detail,
            instructions=record.get("instruction_index") or 0,
            found_at=record["program_index"])
    findings: List[Dict[str, object]] = []
    for finding in triage.ordered():
        entry = finding.to_dict()
        witness = first_by_detail[finding.detail]
        for field in _PINPOINT_FIELDS:
            entry[field] = witness.get(field)
        findings.append(entry)
    report = dict(meta)
    report.update({
        "divergences": len(escalations),
        "classes": len(findings),
        "findings": findings,
        "elapsed_seconds": round(elapsed_seconds, 6),
    })
    return report


def render_verify(report: Dict[str, object]) -> str:
    """Human-readable campaign summary (the ``repro verify`` output)."""
    lines = [
        f"verify: corpus={report['corpus']} ({report['programs']} "
        f"programs, digest {str(report['corpus_digest'])[:12]}) "
        f"matrix={report['matrix']} seed={report['seed']}",
        f"pairs: {', '.join(report['pairs'])}",
        f"comparisons: {report['comparisons']}  "
        f"divergences: {report['divergences']}  "
        f"classes: {report['classes']}  "
        f"elapsed: {report['elapsed_seconds']:.3f}s",
    ]
    findings = report.get("findings") or []
    if not findings:
        lines.append("all configurations agree (zero divergences)")
        return "\n".join(lines)
    header = (f"{'pair':<22} {'signature':<26} {'count':>6} "
              f"{'insn@':>6} {'pc':>10} culprit")
    lines += [header, "-" * len(header)]
    for finding in findings:
        insn = finding.get("instruction_index")
        pc = finding.get("pc")
        lines.append(
            f"{str(finding['pair']):<22.22} "
            f"{str(finding['signature']):<26.26} "
            f"{finding['count']:>6} "
            f"{'-' if insn is None else insn:>6} "
            f"{'-' if pc is None else format(pc, '#010x'):>10} "
            f"{finding.get('disasm') or '-'}")
        lines.append(
            f"    repro: {finding['words']} words "
            f"(from {finding['minimized_from']}), "
            f"code {str(finding['code_hex'])[:48]}"
            f"{'...' if len(str(finding['code_hex'])) > 48 else ''}")
    return "\n".join(lines)
