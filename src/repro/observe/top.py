"""``repro top`` — a live terminal view of a running batch service.

Polls the service's observability surface — ``GET /v1/health``,
``GET /metrics`` (Prometheus text), ``GET /v1/events?since=`` and
``GET /v1/fuzz/frontier`` — and renders a refreshing status screen:
worker/queue occupancy, job-state tallies, queue-wait and job-duration
percentiles (estimated client-side from the scraped histogram buckets),
the live fuzz coverage frontier, and the most recent events.  Pure
stdlib; the rendering is a pure function of the fetched snapshots so it
is directly testable without a terminal.
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from ..telemetry.prometheus import parse_prometheus
from .frontier import render_frontier

__all__ = ["ServiceStatus", "fetch_status", "render_top", "run_top",
           "quantile_from_buckets"]


def quantile_from_buckets(buckets: Dict[Tuple, float],
                          q: float) -> Optional[float]:
    """Estimate a quantile from Prometheus cumulative ``_bucket`` samples.

    ``buckets`` is the ``{(("le", bound),): cumulative_count}`` mapping
    :func:`parse_prometheus` produces for one ``*_bucket`` series.
    """
    bounds: List[Tuple[float, float]] = []
    for labels, cumulative in buckets.items():
        le = dict(labels).get("le")
        if le is None:
            continue
        bound = math.inf if le in ("+Inf", "Inf") else float(le)
        bounds.append((bound, cumulative))
    if not bounds:
        return None
    bounds.sort(key=lambda pair: pair[0])
    total = bounds[-1][1]
    if total <= 0:
        return None
    target = q * total
    previous_bound, previous_cum = 0.0, 0.0
    for bound, cumulative in bounds:
        if cumulative >= target:
            if math.isinf(bound):
                return previous_bound
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return bound
            fraction = (target - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cumulative
    return previous_bound


class ServiceStatus:
    """One polled snapshot of a service's observability surface."""

    def __init__(self, health: Dict, metrics: Dict[str, Dict],
                 frontier: Dict, events: List[Dict],
                 events_cursor: int = 0, error: Optional[str] = None) -> None:
        self.health = health
        self.metrics = metrics
        self.frontier = frontier
        self.events = events
        self.events_cursor = events_cursor
        self.error = error


def _get(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def fetch_status(base_url: str, since: int = 0,
                 timeout: float = 5.0) -> ServiceStatus:
    """Poll all observability endpoints once (errors become a status)."""
    base = base_url.rstrip("/")
    try:
        health = json.loads(_get(f"{base}/v1/health", timeout))
        metrics = parse_prometheus(
            _get(f"{base}/metrics", timeout).decode("utf-8"))
        frontier = json.loads(_get(f"{base}/v1/fuzz/frontier", timeout))
        tail = json.loads(_get(f"{base}/v1/events?since={since}", timeout))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return ServiceStatus({}, {}, {}, [], since,
                             error=f"{base}: {exc}")
    return ServiceStatus(health, metrics, frontier,
                         tail.get("events", []), tail.get("next", since))


def _metric(metrics: Dict[str, Dict], name: str, default=0.0) -> float:
    series = metrics.get(name)
    if not series:
        return default
    return next(iter(series.values()))


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_top(status: ServiceStatus, url: str = "",
               recent_events: int = 8) -> str:
    """Render one status snapshot as the ``repro top`` screen."""
    if status.error:
        return f"repro top — cannot reach service\n  {status.error}"
    health = status.health
    metrics = status.metrics
    lines = [f"repro top — {url or 'service'}  "
             f"[{health.get('status', '?')}]"]
    lines.append(
        f"workers {health.get('running', 0)}/{health.get('workers', 0)} busy"
        f"  mode {health.get('mode', '?')}"
        f"  queue {health.get('queue_depth', 0)}/"
        f"{health.get('queue_limit', 0)}")
    jobs = health.get("jobs", {})
    lines.append("jobs   " + "  ".join(
        f"{state}:{jobs.get(state, 0)}"
        for state in ("pending", "running", "succeeded", "failed",
                      "cancelled", "timeout")))
    submitted = _metric(metrics, "repro_serve_submitted_total")
    rejected = _metric(metrics, "repro_serve_rejected_total")
    dropped = _metric(metrics, "repro_events_dropped")
    lines.append(f"totals submitted:{submitted:.0f}  rejected:{rejected:.0f}"
                 f"  events_dropped:{dropped:.0f}")
    queue_buckets = metrics.get("repro_serve_queue_wait_seconds_bucket", {})
    job_buckets = metrics.get("repro_serve_job_seconds_bucket", {})
    lines.append(
        "queue wait p50/p99  "
        f"{_fmt_seconds(quantile_from_buckets(queue_buckets, 0.5))}/"
        f"{_fmt_seconds(quantile_from_buckets(queue_buckets, 0.99))}"
        "    job time p50/p99  "
        f"{_fmt_seconds(quantile_from_buckets(job_buckets, 0.5))}/"
        f"{_fmt_seconds(quantile_from_buckets(job_buckets, 0.99))}")
    # Present only when a vp_run executed under the compiled backend —
    # the machine publishes its tier counters as vp.jit.* gauges.
    if "repro_vp_jit_blocks_compiled" in metrics:
        compiled = _metric(metrics, "repro_vp_jit_compiled_instructions")
        interp = _metric(metrics, "repro_vp_jit_interp_instructions")
        traced = _metric(metrics, "repro_vp_jit_trace_instructions")
        total = compiled + interp + traced
        share = (compiled + traced) / total if total else 0.0
        lines.append(
            f"jit    blocks:"
            f"{_metric(metrics, 'repro_vp_jit_blocks_compiled'):.0f}"
            f"  traces:"
            f"{_metric(metrics, 'repro_vp_jit_traces_compiled'):.0f}"
            f"  trace-tier:{traced:.0f}"
            f"  compiled-tier:{compiled:.0f} ({share:.1%} compiled)"
            f"  interp-tier:{interp:.0f}"
            f"  failures:"
            f"{_metric(metrics, 'repro_vp_jit_compile_failures'):.0f}")
    # vp.mem.* gauges: published by every backend once a run executes.
    if "repro_vp_mem_fastpath_hit_rate" in metrics:
        fast = (_metric(metrics, "repro_vp_mem_fastpath_loads")
                + _metric(metrics, "repro_vp_mem_fastpath_stores"))
        bus = (_metric(metrics, "repro_vp_mem_fastpath_fallback_loads")
               + _metric(metrics, "repro_vp_mem_fastpath_fallback_stores"))
        rate = _metric(metrics, "repro_vp_mem_fastpath_hit_rate")
        lines.append(f"mem    fastpath:{fast:.0f} ({rate:.1%} hit)"
                     f"  bus:{bus:.0f}")
    # verify.* counters: published once a verify job has compared
    # anything on this service (or a worker that reported through it).
    if "repro_verify_comparisons_total" in metrics:
        lines.append("")
        lines.append("--- verify ---")
        lines.append(
            f"progs:"
            f"{_metric(metrics, 'repro_verify_programs_total'):.0f}"
            f"  comparisons:"
            f"{_metric(metrics, 'repro_verify_comparisons_total'):.0f}"
            f"  divergences:"
            f"{_metric(metrics, 'repro_verify_divergences_total'):.0f}"
            f"  escalations:"
            f"{_metric(metrics, 'repro_verify_escalations_total'):.0f}"
            f"  findings:"
            f"{_metric(metrics, 'repro_verify_findings'):.0f}")
    cluster = health.get("cluster")
    if cluster:
        work = cluster.get("work", {})
        lines.append("")
        lines.append("--- cluster ---")
        lines.append(
            f"work   pending:{work.get('pending', 0)}"
            f"  leased:{work.get('leased', 0)}"
            f"  done:{work.get('done', 0)}"
            f"  failed:{work.get('failed', 0)}"
            f"  requeued:{cluster.get('work_requeued', 0)}"
            f"  nodes_lost:{cluster.get('nodes_lost', 0)}")
        nodes = cluster.get("nodes") or []
        if not nodes:
            lines.append("nodes  (none attached)")
        for row in nodes:
            node_stats = row.get("stats") or {}
            busy = "*" if node_stats.get("busy") else " "
            state = "draining" if row.get("draining") else "live"
            lines.append(
                f"  {row.get('id', '?'):<9}{busy}"
                f"{(row.get('name') or '-'):<16} "
                f"{state:<9} "
                f"exec:{node_stats.get('executed', 0):<6} "
                f"fail:{node_stats.get('failed', 0):<4} "
                f"hb:{row.get('heartbeat_age_seconds', 0):.1f}s")
    lines.append("")
    lines.append("--- fuzz frontier ---")
    lines.append(render_frontier(status.frontier))
    if status.events:
        lines.append("")
        lines.append("--- recent events ---")
        for event in status.events[-recent_events:]:
            ts = event.get("ts_us", 0) / 1e6
            detail = {k: v for k, v in event.items()
                      if k not in ("type", "ts_us", "dur_us")
                      and not isinstance(v, (dict, list))}
            text = " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
            lines.append(f"  {ts:>10.3f}s  {event.get('type', '?'):<20} "
                         f"{text}"[:100])
    return "\n".join(lines)


def run_top(url: str, interval: float = 2.0, iterations: int = 0,
            out=None, clock=time.monotonic,
            sleep=time.sleep) -> int:
    """The polling loop behind ``repro top``.

    ``iterations=0`` polls until interrupted; a positive count renders
    that many frames (used by tests and one-shot ``--once`` scrapes).
    Returns 0 when the final poll succeeded, 1 when it errored.
    """
    import sys

    out = out if out is not None else sys.stdout
    cursor = 0
    frame = 0
    status = None
    try:
        while True:
            status = fetch_status(url, since=cursor)
            cursor = status.events_cursor
            frame += 1
            if frame > 1 and out.isatty():  # pragma: no cover - terminal
                out.write("\x1b[2J\x1b[H")
            out.write(render_top(status, url=url))
            out.write("\n")
            out.flush()
            if iterations and frame >= iterations:
                break
            sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 1 if (status is None or status.error) else 0
