"""Live observability for the repro stack.

The pieces that turn the existing telemetry substrate into an
*observatory* for running work:

* :class:`SamplingProfiler` / :class:`Profile` — a guest-level sampling
  profiler for the VP (``repro profile``, ``--profile-out``),
* :class:`TraceContext` — end-to-end trace propagation from
  ``repro submit`` through the batch service into the VP run,
* :func:`frontier_from_events` / :func:`render_frontier` — the live fuzz
  coverage-frontier view behind ``GET /v1/fuzz/frontier``,
* :func:`fetch_status` / :func:`render_top` / :func:`run_top` — the
  ``repro top`` terminal dashboard polling a service's ``/metrics`` and
  streaming-status endpoints.
"""

from .frontier import frontier_from_events, render_frontier
from .profiler import Profile, SamplingProfiler
from .top import (ServiceStatus, fetch_status, quantile_from_buckets,
                  render_top, run_top)
from .trace import TraceContext

__all__ = [
    "SamplingProfiler",
    "Profile",
    "TraceContext",
    "frontier_from_events",
    "render_frontier",
    "ServiceStatus",
    "fetch_status",
    "render_top",
    "run_top",
    "quantile_from_buckets",
]
