"""Live coverage-frontier view rendered from ``fuzz.*`` telemetry.

The fuzz engine already emits the full frontier trajectory —
``fuzz.started``, one ``fuzz.coverage`` per corpus add, periodic
``fuzz.progress``, and ``fuzz.finished``.  :func:`frontier_from_events`
folds any event stream (a live service log, a saved JSONL file) into a
JSON-friendly snapshot: per fuzz session, the coverage curve (execs →
coverage elements) plus the latest corpus/finding counts.  The batch
service serves this on ``GET /v1/fuzz/frontier`` and ``repro top``
renders it as the live view ROADMAP item 3 asks for.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["frontier_from_events", "render_frontier"]

_FRONTIER_TYPES = ("fuzz.started", "fuzz.coverage", "fuzz.progress",
                   "fuzz.finished")


def _session_key(event: Dict) -> str:
    """Group events by the job they rode in on (merged worker events are
    tagged with ``job``); untagged events share one anonymous session."""
    return str(event.get("job", event.get("id", "-")))


def frontier_from_events(events: Iterable[Dict],
                         max_points: int = 200) -> Dict:
    """Fold an event stream into the coverage-frontier snapshot.

    Returns ``{"sessions": [...], "active": N}``.  Each session carries
    ``points`` — up to ``max_points`` ``(execs, coverage_elements,
    corpus_size)`` triples, uniformly thinned when the curve is longer —
    and a ``latest`` summary with findings and throughput.
    """
    sessions: Dict[str, Dict] = {}
    for event in events:
        event_type = event.get("type")
        if event_type not in _FRONTIER_TYPES:
            continue
        key = _session_key(event)
        session = sessions.setdefault(key, {
            "session": key,
            "started": None,
            "finished": False,
            "points": [],
            "latest": {},
        })
        if event_type == "fuzz.started":
            session["started"] = {
                "isa": event.get("isa"),
                "seed": event.get("seed"),
                "iterations": event.get("iterations"),
                "jobs": event.get("jobs"),
                "ts_us": event.get("ts_us"),
            }
        elif event_type == "fuzz.coverage":
            session["points"].append({
                "execs": event.get("execs", 0),
                "coverage_elements": event.get("coverage_elements", 0),
                "corpus_size": event.get("corpus_size", 0),
            })
        elif event_type == "fuzz.progress":
            session["latest"] = {
                "execs": event.get("execs", 0),
                "total": event.get("total"),
                "coverage_elements": event.get("coverage_elements", 0),
                "corpus_size": event.get("corpus_size", 0),
                "findings": event.get("findings", 0),
                "execs_per_second": event.get("execs_per_second", 0.0),
            }
        elif event_type == "fuzz.finished":
            session["finished"] = True
            session["latest"] = {
                "execs": event.get("iterations", 0),
                "total": event.get("iterations"),
                "coverage_elements": event.get("coverage_elements", 0),
                "corpus_size": event.get("corpus_size", 0),
                "findings": event.get("findings", 0),
                "execs_per_second": event.get("execs_per_second", 0.0),
            }
    ordered = []
    for session in sessions.values():
        points = session["points"]
        if len(points) > max_points:
            # Uniform thinning, always keeping the final frontier point.
            step = len(points) / max_points
            thinned = [points[int(i * step)] for i in range(max_points - 1)]
            thinned.append(points[-1])
            session["points"] = thinned
        if not session["latest"] and points:
            session["latest"] = dict(points[-1])
        ordered.append(session)
    ordered.sort(key=lambda s: s["session"])
    active = sum(1 for s in ordered if not s["finished"])
    return {"sessions": ordered, "active": active}


def render_frontier(frontier: Dict) -> str:
    """A terminal table of the frontier snapshot (used by ``repro top``)."""
    sessions = frontier.get("sessions", [])
    if not sessions:
        return "(no fuzz sessions observed)"
    header = (f"{'session':<12} {'state':<9} {'execs':>10} {'corpus':>8} "
              f"{'coverage':>9} {'findings':>9} {'execs/s':>9}")
    lines = [header, "-" * len(header)]
    for session in sessions:
        latest = session.get("latest", {})
        state = "finished" if session.get("finished") else "running"
        lines.append(
            f"{session['session']:<12} {state:<9} "
            f"{latest.get('execs', 0):>10,} "
            f"{latest.get('corpus_size', 0):>8,} "
            f"{latest.get('coverage_elements', 0):>9,} "
            f"{latest.get('findings', 0):>9,} "
            f"{latest.get('execs_per_second', 0.0):>9,.0f}")
    return "\n".join(lines)
