"""Guest-level sampling profiler for the virtual prototype.

A :class:`SamplingProfiler` is a VP plugin driven by ``on_block_exec``:
every ``interval``-th block execution lands one sample on that
translation block's start pc.  Because a block's instruction list is
known at translate time, block samples convert directly into estimated
retired-instruction attribution — a flat PC/TB profile of the *guest*
program, the moral equivalent of ``perf`` for code running on the VP.

From the raw samples, :meth:`SamplingProfiler.profile` builds a
:class:`Profile` against the program image:

* **hot-block ranking** — blocks by estimated instructions,
* **per-function aggregation** — each block attributed to the nearest
  preceding symbol in the program's symbol table,
* **annotated disassembly** — the hot path listed instruction by
  instruction with sample weight,
* **collapsed-stack export** — ``function;block_0xPC count`` lines,
  the folded format every flamegraph renderer ingests.

Exposed as ``repro profile`` and the ``--profile-out`` flag on VP,
fault-campaign, and fuzz runs.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, List, Optional, Tuple

from ..vp.plugins import Plugin

__all__ = ["SamplingProfiler", "Profile"]


def _tier_of(block) -> str:
    """Execution-tier label for a block, as last observed.

    Trace heads and members are labelled ``trace`` (their instructions
    retire inside the multi-block trace function), other compiled
    blocks ``compiled``, everything else ``interp``.
    """
    if block.trace is not None or block.trace_member:
        return "trace"
    if block.compiled is not None:
        return "compiled"
    return "interp"


class SamplingProfiler(Plugin):
    """Counts block executions; every ``interval``-th one is a sample.

    ``interval=1`` (the default) profiles every block execution — exact
    attribution.  Because the interpreter already maintains
    ``TranslationBlock.exec_count`` on its hot path, the exact case is
    implemented by harvesting those counters instead of hooking every
    block execution, so the default profiler adds no per-block cost at
    all.  Larger intervals run the countdown sampler in
    ``on_block_exec``; sample weights are scaled back up by the interval
    so estimates stay unbiased.
    """

    name = "profiler"

    def __new__(cls, interval: int = 1):
        if cls is SamplingProfiler and interval == 1:
            cls = _ExactProfiler
        return super().__new__(cls)

    def __init__(self, interval: int = 1) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self._countdown = interval
        #: start_pc -> sample count.
        self.samples: Dict[int, int] = {}
        #: start_pc -> (pcs, decoded list) captured at translate time.
        self._blocks: Dict[int, Tuple[tuple, tuple]] = {}
        #: start_pc -> execution tier ("interp" / "compiled" / "trace"),
        #: as last observed.  A block can graduate mid-run once the
        #: compiled backend's thresholds trip; the final observation
        #: wins.
        self._tiers: Dict[int, str] = {}

    # -- hooks ----------------------------------------------------------

    def on_block_translate(self, cpu, block) -> None:
        self._blocks[block.start_pc] = (tuple(block.pcs),
                                        tuple(block.insns))

    def on_block_exec(self, cpu, block) -> None:
        self._countdown -= 1
        if self._countdown:
            return
        self._countdown = self.interval
        pc = block.start_pc
        self.samples[pc] = self.samples.get(pc, 0) + 1
        self._tiers[pc] = _tier_of(block)

    # -- results --------------------------------------------------------

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def reset(self) -> None:
        self.samples.clear()
        self._countdown = self.interval

    def profile(self, program=None, isa=None) -> "Profile":
        """Build the :class:`Profile` for the samples collected so far.

        ``program`` (a :class:`repro.asm.Program`) supplies the symbol
        table for per-function aggregation; without it, functions fall
        back to hex block addresses.  ``isa`` enables the annotated
        disassembly listing.
        """
        blocks = []
        for pc, count in self.samples.items():
            pcs, insns = self._blocks.get(pc, ((), ()))
            blocks.append({
                "start_pc": pc,
                "samples": count,
                "block_insns": len(pcs),
                "est_instructions": count * self.interval * max(len(pcs), 1),
                "tier": self._tiers.get(pc, "interp"),
            })
        return Profile(blocks=blocks, interval=self.interval,
                       block_details=self._blocks, program=program, isa=isa)


class _ExactProfiler(SamplingProfiler):
    """The ``interval=1`` specialization.

    ``Machine.add_plugin`` flushes the translation cache on attach, so
    every block this profiler can observe is retranslated through
    ``on_block_translate`` — tracking block objects there and folding
    their ``exec_count`` deltas in on demand (and before a cache flush
    discards them) counts every execution without registering the
    per-block ``on_block_exec`` hook.
    """

    # Deliberately un-override the hook so it is never registered.
    on_block_exec = Plugin.on_block_exec

    def __init__(self, interval: int = 1) -> None:
        super().__init__(interval)
        #: start_pc -> [block, exec_count already folded into samples].
        self._tracked: Dict[int, list] = {}

    def on_block_translate(self, cpu, block) -> None:
        super().on_block_translate(cpu, block)
        stale = self._tracked.get(block.start_pc)
        if stale is not None:
            self._harvest(stale)
        self._tracked[block.start_pc] = [block, block.exec_count]

    def on_tb_flush(self, cpu) -> None:
        # Flushed blocks never execute again; bank their counts.
        self._sync()
        self._tracked.clear()

    def _harvest(self, entry) -> None:
        block, folded = entry
        delta = block.exec_count - folded
        if delta:
            pc = block.start_pc
            self.samples[pc] = self.samples.get(pc, 0) + delta
            entry[1] = block.exec_count
            self._tiers[pc] = _tier_of(block)

    def _sync(self) -> None:
        for entry in self._tracked.values():
            self._harvest(entry)

    @property
    def total_samples(self) -> int:
        self._sync()
        return sum(self.samples.values())

    def reset(self) -> None:
        super().reset()
        for entry in self._tracked.values():
            entry[1] = entry[0].exec_count

    def profile(self, program=None, isa=None) -> "Profile":
        self._sync()
        return super().profile(program, isa=isa)


def _symbol_index(program) -> Tuple[List[int], List[str]]:
    if program is None or not getattr(program, "symbols", None):
        return [], []
    pairs = sorted((addr, name) for name, addr in program.symbols.items())
    return [addr for addr, _ in pairs], [name for _, name in pairs]


class Profile:
    """A finished flat profile: ranked blocks, functions, exports."""

    def __init__(self, blocks: List[Dict], interval: int = 1,
                 block_details: Optional[Dict] = None,
                 program=None, isa=None) -> None:
        self.interval = interval
        self.blocks = sorted(blocks, key=lambda b: (-b["est_instructions"],
                                                    b["start_pc"]))
        self._details = block_details or {}
        self._program = program
        self._isa = isa
        self._addrs, self._names = _symbol_index(program)

    # -- attribution ----------------------------------------------------

    def function_of(self, pc: int) -> str:
        """The nearest preceding symbol, or the hex address."""
        index = bisect.bisect_right(self._addrs, pc) - 1
        if index < 0:
            return f"{pc:#x}"
        return self._names[index]

    @property
    def total_samples(self) -> int:
        return sum(b["samples"] for b in self.blocks)

    @property
    def total_est_instructions(self) -> int:
        return sum(b["est_instructions"] for b in self.blocks)

    def tier_totals(self) -> Dict[str, int]:
        """Estimated instructions per execution tier.

        Blocks recorded before the tier field existed (or fed in from an
        external source) count as ``interp``.
        """
        totals: Dict[str, int] = {}
        for block in self.blocks:
            tier = block.get("tier", "interp")
            totals[tier] = totals.get(tier, 0) + block["est_instructions"]
        return totals

    def hot_blocks(self, limit: int = 10) -> List[Dict]:
        """The ranking, each entry annotated with its function."""
        total = self.total_est_instructions or 1
        ranked = []
        for block in self.blocks[:limit]:
            entry = dict(block)
            entry["function"] = self.function_of(block["start_pc"])
            entry["fraction"] = block["est_instructions"] / total
            ranked.append(entry)
        return ranked

    def functions(self) -> List[Dict]:
        """Per-function aggregation, sorted hottest first."""
        table: Dict[str, Dict] = {}
        for block in self.blocks:
            name = self.function_of(block["start_pc"])
            entry = table.setdefault(
                name, {"function": name, "samples": 0,
                       "est_instructions": 0, "blocks": 0})
            entry["samples"] += block["samples"]
            entry["est_instructions"] += block["est_instructions"]
            entry["blocks"] += 1
        total = self.total_est_instructions or 1
        rows = sorted(table.values(),
                      key=lambda r: (-r["est_instructions"], r["function"]))
        for row in rows:
            row["fraction"] = row["est_instructions"] / total
        return rows

    # -- renderings -----------------------------------------------------

    def render(self, limit: int = 10) -> str:
        """The ``repro profile`` report: functions, then hot blocks."""
        lines = [f"samples: {self.total_samples:,}  (interval "
                 f"{self.interval}, est. {self.total_est_instructions:,} "
                 "instructions)"]
        totals = self.tier_totals()
        if totals.get("compiled"):
            grand = self.total_est_instructions or 1
            parts = ", ".join(
                f"{tier} {count:,} ({count / grand:.1%})"
                for tier, count in sorted(totals.items(),
                                          key=lambda item: -item[1]))
            lines.append(f"tiers: {parts}")
        lines.append("")
        header = f"{'function':<24} {'est insns':>12} {'share':>7} {'blocks':>7}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.functions()[:limit]:
            lines.append(f"{row['function']:<24} "
                         f"{row['est_instructions']:>12,} "
                         f"{row['fraction']:>6.1%} {row['blocks']:>7}")
        lines.append("")
        header = (f"{'block':>10} {'function':<20} {'samples':>10} "
                  f"{'est insns':>12} {'share':>7} {'tier':<8}")
        lines.append(header)
        lines.append("-" * len(header))
        for block in self.hot_blocks(limit):
            lines.append(f"{block['start_pc']:>#10x} "
                         f"{block['function']:<20} {block['samples']:>10,} "
                         f"{block['est_instructions']:>12,} "
                         f"{block['fraction']:>6.1%} "
                         f"{block.get('tier', 'interp'):<8}")
        return "\n".join(lines)

    def annotated_disasm(self, limit: int = 3) -> str:
        """The hot path: disassembly of the top blocks, sample-weighted."""
        if self._isa is None:
            return "(no ISA configured — annotated listing unavailable)"
        from ..isa.disasm import disassemble

        sections = []
        for block in self.hot_blocks(limit):
            pc = block["start_pc"]
            pcs, insns = self._details.get(pc, ((), ()))
            lines = [f"block {pc:#010x} <{block['function']}> — "
                     f"{block['samples']:,} samples, "
                     f"{block['fraction']:.1%} of estimated instructions"]
            for insn_pc, decoded in zip(pcs, insns):
                lines.append(f"  {insn_pc:08x}:  "
                             f"{disassemble(decoded, pc=insn_pc)}")
            sections.append("\n".join(lines))
        return "\n\n".join(sections) if sections else "(no samples)"

    def collapsed(self) -> str:
        """Folded-stack lines (``function;block_0xPC weight``), hottest
        first — feed straight into any flamegraph renderer."""
        lines = []
        for block in self.hot_blocks(limit=len(self.blocks)):
            lines.append(f"{block['function']};block_{block['start_pc']:#x} "
                         f"{block['est_instructions']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def save_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format": "repro-profile-v1",
            "interval": self.interval,
            "total_samples": self.total_samples,
            "total_est_instructions": self.total_est_instructions,
            "tiers": self.tier_totals(),
            "functions": self.functions(),
            "blocks": self.hot_blocks(limit=len(self.blocks)),
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
