"""End-to-end trace context: one id that follows a job everywhere.

A :class:`TraceContext` is the W3C-trace-context-shaped triple
``(trace_id, span_id, parent_id)``.  ``repro submit`` mints a root
context, ships it inside the :class:`~repro.serve.jobs.JobSpec`, and the
batch service derives child contexts for the queue wait, the worker
execution, and the VP run phases — including across the spawn-safe
process pool, where the worker returns its collected events and the
parent stitches them onto the same ``trace_id``.  The result: one
Chrome-trace/Perfetto file that shows submit → queue → worker → VP for a
whole campaign.

Contexts are plain JSON-friendly dicts on the wire and tag event records
with ``trace_id`` / ``span_id`` / ``parent_id`` fields, which ride into
Chrome-trace ``args`` untouched.
"""

from __future__ import annotations

import uuid
from typing import Dict, Optional

__all__ = ["TraceContext"]


def _new_id(bytes_: int) -> str:
    return uuid.uuid4().hex[: bytes_ * 2]


class TraceContext:
    """An immutable (trace_id, span_id, parent_id) triple."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str] = None) -> None:
        if not trace_id or not isinstance(trace_id, str):
            raise ValueError("trace_id must be a non-empty string")
        if not span_id or not isinstance(span_id, str):
            raise ValueError("span_id must be a non-empty string")
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (new 16-byte trace id, 8-byte span id)."""
        return cls(trace_id=_new_id(16), span_id=_new_id(8))

    def child(self) -> "TraceContext":
        """A new span under this one (same trace, this span as parent)."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_id(8),
                            parent_id=self.span_id)

    def fields(self) -> Dict[str, str]:
        """The event-record fields this context contributes."""
        fields = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            fields["parent_id"] = self.parent_id
        return fields

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceContext":
        if not isinstance(data, dict):
            raise ValueError("trace context must be a JSON object")
        unknown = set(data) - {"trace_id", "span_id", "parent_id"}
        if unknown:
            raise ValueError(f"unknown trace fields: {sorted(unknown)}")
        return cls(trace_id=data.get("trace_id"),
                   span_id=data.get("span_id"),
                   parent_id=data.get("parent_id"))

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceContext)
                and self.to_dict() == other.to_dict())

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceContext(trace={self.trace_id[:8]}…, "
                f"span={self.span_id}, parent={self.parent_id})")
