"""CLI tests, driven through main(argv) with captured stdout."""

import pytest

from repro.cli import main

LOOP = """
_start:
    li a0, 0
    li t0, 1
loop:              # @loopbound 10
    add a0, a0, t0
    addi t0, t0, 1
    li t1, 11
    blt t0, t1, loop
    li a7, 93
    ecall
"""

SELF_CHECKING = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    li a3, 42
    bne a0, a3, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(LOOP)
    return str(path)


@pytest.fixture
def checked_file(tmp_path):
    path = tmp_path / "checked.s"
    path.write_text(SELF_CHECKING)
    return str(path)


class TestRunCommand:
    def test_run_reports_result(self, program_file, capsys):
        code = main(["run", program_file])
        out = capsys.readouterr().out
        assert code == 55  # guest exit code propagated
        assert "stop: exit" in out
        assert "exit: 55" in out

    def test_run_with_trace(self, program_file, capsys):
        main(["run", program_file, "--trace", "5"])
        out = capsys.readouterr().out
        assert "last 5 instructions" in out
        assert "ecall" in out

    def test_run_prints_uart(self, tmp_path, capsys):
        path = tmp_path / "uart.s"
        path.write_text("""
        _start:
            li t0, 0x10000000
            li t1, 'Y'
            sb t1, 0(t0)
            li a0, 0
            li a7, 93
            ecall
        """)
        assert main(["run", str(path)]) == 0
        assert "Y" in capsys.readouterr().out

    def test_custom_isa(self, tmp_path, capsys):
        path = tmp_path / "bmi.s"
        path.write_text("""
        _start:
            li a1, 0xFF
            cpop a0, a1
            li a7, 93
            ecall
        """)
        code = main(["run", str(path), "--isa", "rv32im_zbb"])
        assert code == 8

    def test_bad_isa_for_source_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("_start: cpop a0, a1")
        assert main(["run", str(path), "--isa", "rv32i"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAnalysisCommands:
    def test_disasm(self, program_file, capsys):
        assert main(["disasm", program_file]) == 0
        out = capsys.readouterr().out
        assert "<_start>:" in out
        assert "blt" in out

    def test_wcet(self, program_file, capsys):
        assert main(["wcet", program_file]) == 0
        out = capsys.readouterr().out
        assert "static bound" in out
        assert "annotated loop header" in out

    def test_wcet_emit_cfg(self, program_file, capsys):
        assert main(["wcet", program_file, "--emit-cfg"]) == 0
        assert "qta-cfg v1" in capsys.readouterr().out

    def test_coverage(self, program_file, capsys):
        assert main(["coverage", program_file, "--missed"]) == 0
        out = capsys.readouterr().out
        assert "instruction types" in out
        assert "missed GPRs" in out

    def test_faults(self, checked_file, capsys):
        assert main(["faults", checked_file, "--mutants", "25"]) == 0
        out = capsys.readouterr().out
        assert "golden: exit 0" in out
        assert "mutants/s" in out

    def test_mutate(self, checked_file, capsys):
        assert main(["mutate", checked_file, "--sample", "30"]) == 0
        assert "score" in capsys.readouterr().out


class TestGenCommand:
    def test_gen_torture_assembles(self, capsys):
        assert main(["gen", "torture", "--seed", "5", "--length", "50"]) == 0
        source = capsys.readouterr().out
        from repro.asm import assemble
        from repro.isa import RV32IMC_ZICSR
        assemble(source, isa=RV32IMC_ZICSR)

    def test_gen_structured_has_checksum_header(self, capsys):
        assert main(["gen", "structured", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# expected checksum:")


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/path.s"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_assembler_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("_start: frobnicate a0")
        assert main(["disasm", str(path)]) == 2
        assert "unknown mnemonic" in capsys.readouterr().err


class TestWcetFlags:
    def test_icache_flag(self, program_file, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["wcet", program_file,
                         "--icache", "1024:16:2:10"]) == 0
        out = capsys.readouterr().out
        assert "static bound" in out

    def test_icache_with_persistence(self, program_file, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["wcet", program_file, "--icache", "1024:16:2:10",
                         "--cache-analysis"]) == 0

    def test_edge_sensitive_flag_tightens_or_equals(self, program_file,
                                                    capsys):
        from repro.cli import main as cli_main
        assert cli_main(["wcet", program_file, "--edge-sensitive"]) == 0

    def test_bad_icache_spec(self, program_file, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["wcet", program_file, "--icache", "10:2"]) == 2
        assert "SIZE:LINE:WAYS:PENALTY" in capsys.readouterr().err

    def test_gen_arch_suite(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["gen", "arch"]) == 0
        out = capsys.readouterr().out
        assert "### arch-arith" in out

    def test_gen_unit_suite(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["gen", "unit", "--seed", "1"]) == 0
        assert "### unit-rr" in capsys.readouterr().out
